//! E17 — Sharded parallel execution, priced (ROADMAP "parallel
//! execution"; paper §3, scale as a first-class goal).
//!
//! **Claim.** The architecture is meant for an internet "at the scale
//! of millions of users", but a one-core event loop caps every
//! experiment in this repo far below that. Conservative-lookahead
//! sharding (`ShardKind::Parallel`) partitions the node set into K
//! contiguous lanes that run windows of virtual time on their own
//! threads, exchanging cross-lane frames at barrier instants — and the
//! whole point of the design is that the speedup costs *nothing* in
//! observability: every dump is byte-identical to the single-lane
//! reference, at every K.
//!
//! **Experiment.** A ring of ≥1000 gateways with a host pair riding
//! every second gateway runs ~10⁴ concurrent local CBR/UDP flows
//! (packet voice, the datagram archetype) through the cold-start
//! routing storm and 30 s of steady state. The same construction runs
//! at K ∈ {1, 2, 4, 8}; per K we record wall clock, events processed,
//! datagrams forwarded, and an FNV-1a digest of each telemetry dump.
//! The digests must agree across every K — cross-K equivalence — and
//! the wall-clock ratio against K=1 is the headline speedup.
//!
//! **Topology discipline.** The partitioner is contiguous-by-NodeId,
//! so the builder interleaves creation — `g₀, src₀, g₁, dst₀, g₂, …` —
//! making the node sequence periodic in cells of four, and the ring
//! size is kept a multiple of 16 so every lane boundary for K ≤ 8
//! lands *between* cells. Hosts therefore always share a lane with
//! their gateway, every cross-lane link is a T1 trunk, and the
//! conservative lookahead window stays at the T1 propagation delay
//! (30 ms) instead of collapsing to a LAN's 100 µs.
//!
//! Results render as a table and `BENCH_e17.json`. In `--check` mode
//! the JSON carries only K-invariant, seed-deterministic fields
//! (counts and dump digests — no shard count, no wall clock, no host
//! cores), so CI can run it at K=1 and K=4, twice each, and diff all
//! four files: run-twice determinism *and* cross-K equivalence in one
//! byte comparison.

use crate::table::Table;
use catenet_core::app::{CbrSink, CbrSource};
use catenet_core::{Endpoint, Network, NodeId, ShardKind};
use catenet_sim::{Duration, Instant, LinkClass};

/// Shard counts the battery sweeps.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Ring size (gateways) in the full battery. A multiple of 16 so lane
/// boundaries stay cell-aligned for every K ≤ 8 (see module docs).
pub const RING_FULL: usize = 1024;
/// Ring size in the CI `--check` battery.
pub const RING_CHECK: usize = 192;
/// CBR flows per host-pair cell in the full battery (one cell per two
/// gateways: 1024 gateways → 512 cells → 10 240 concurrent flows).
pub const FLOWS_PER_CELL_FULL: usize = 20;
/// Flows per cell in the `--check` battery.
pub const FLOWS_PER_CELL_CHECK: usize = 4;
/// Virtual time per run: cold-start storm plus steady-state CBR.
pub const VIRTUAL: Duration = Duration::from_secs(30);
/// Flows start once nearby routes have propagated, like E13.
const FLOW_START: Instant = Instant::from_secs(8);
/// Flows stop 2 s before [`VIRTUAL`] ends so tails drain in-window.
const FLOW_STOP: Instant = Instant::from_secs(28);
/// CBR cadence: one 160-byte datagram per flow per 200 ms (packet
/// voice at report rate, scaled so 10⁴ flows stay tractable).
const CBR_INTERVAL: Duration = Duration::from_millis(200);
const CBR_SIZE: usize = 160;
/// Each cell's flows target the dst host two cells ahead: five ring
/// hops plus two LAN hops, comfortably inside the metric-16 horizon.
const CELL_SKIP: usize = 2;

/// One shard count's run.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Requested shard count K.
    pub shards: usize,
    /// Lanes actually created (K clamped to the node count).
    pub lanes: usize,
    /// Events processed (identical across K).
    pub events: u64,
    /// Datagrams forwarded by gateways (identical across K).
    pub forwarded: u64,
    /// FNV-1a digests of the metrics, series, and flight dumps.
    pub digests: [u64; 3],
    /// Wall clock for the simulation run, milliseconds.
    pub wall_ms: f64,
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct Battery {
    /// Gateways in the ring.
    pub gateways: usize,
    /// Host-pair cells (gateways / 2).
    pub cells: usize,
    /// Concurrent CBR flows (cells × flows-per-cell).
    pub flows: usize,
    /// One run per requested shard count.
    pub runs: Vec<ShardRun>,
    /// Every run produced identical dump digests, event counts, and
    /// forward counts — the cross-K equivalence bit.
    pub all_equal: bool,
    /// Cores the host reported (`std::thread::available_parallelism`);
    /// speedup is bounded by this, so CI numbers from a 4-core runner
    /// and laptop numbers are comparable only through it.
    pub host_cores: usize,
}

/// FNV-1a 64 over a dump — a stable fingerprint two JSON files can be
/// diffed on without embedding megabytes of telemetry.
pub fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Build the interleaved ring and attach every flow. See the module
/// docs for why creation order is load-bearing.
fn build(gateways: usize, flows_per_cell: usize, seed: u64, shard: ShardKind) -> (Network, Vec<NodeId>) {
    assert!(gateways.is_multiple_of(16), "lane boundaries must stay cell-aligned");
    let cells = gateways / 2;
    let mut net = Network::with_shards(seed, shard);
    let mut gs = Vec::with_capacity(gateways);
    let mut srcs = Vec::with_capacity(cells);
    let mut dsts = Vec::with_capacity(cells);
    for i in 0..gateways {
        let g = net.add_gateway(format!("g{i}"));
        if let Some(&prev) = gs.last() {
            net.connect(prev, g, LinkClass::T1Terrestrial);
        }
        gs.push(g);
        if i % 2 == 0 {
            let src = net.add_host(format!("src{}", i / 2));
            net.connect(src, g, LinkClass::EthernetLan);
            srcs.push(src);
        } else {
            let dst = net.add_host(format!("dst{}", i / 2));
            net.connect(dst, g, LinkClass::EthernetLan);
            dsts.push(dst);
        }
    }
    net.connect(gs[gateways - 1], gs[0], LinkClass::T1Terrestrial);
    for cell in 0..cells {
        let target = dsts[(cell + CELL_SKIP) % cells];
        let dst_addr = net.node(target).primary_addr();
        for flow in 0..flows_per_cell {
            let port = 5000 + flow as u16;
            net.attach_app(target, Box::new(CbrSink::new(port)));
            net.attach_app(
                srcs[cell],
                Box::new(CbrSource::new(
                    Endpoint::new(dst_addr, port),
                    CBR_INTERVAL,
                    CBR_SIZE,
                    FLOW_START,
                    FLOW_STOP,
                )),
            );
        }
    }
    (net, gs)
}

/// Run one shard count over the standard workload.
pub fn run_one(gateways: usize, flows_per_cell: usize, seed: u64, shards: usize) -> ShardRun {
    let shard = if shards == 1 {
        ShardKind::Single
    } else {
        ShardKind::Parallel { shards }
    };
    let (mut net, gs) = build(gateways, flows_per_cell, seed, shard);
    let t0 = std::time::Instant::now();
    net.run_for(VIRTUAL);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let forwarded = gs.iter().map(|&g| net.node(g).stats.ip_forwarded).sum();
    ShardRun {
        shards,
        lanes: net.lane_count(),
        events: net.sched_stats().processed,
        forwarded,
        digests: [
            fnv1a(&net.metrics_dump()),
            fnv1a(&net.series_dump()),
            fnv1a(&net.flight_dump()),
        ],
        wall_ms,
    }
}

/// Run the sweep. `fast` selects the CI-sized workload; `shard_counts`
/// lets CI pin a single K (the `--shards N` flag).
pub fn run_battery(fast: bool, seed: u64, shard_counts: &[usize]) -> Battery {
    let (gateways, flows_per_cell) = if fast {
        (RING_CHECK, FLOWS_PER_CELL_CHECK)
    } else {
        (RING_FULL, FLOWS_PER_CELL_FULL)
    };
    let runs: Vec<ShardRun> = shard_counts
        .iter()
        .map(|&k| run_one(gateways, flows_per_cell, seed, k))
        .collect();
    let all_equal = runs.windows(2).all(|w| {
        w[0].digests == w[1].digests
            && w[0].events == w[1].events
            && w[0].forwarded == w[1].forwarded
    });
    Battery {
        gateways,
        cells: gateways / 2,
        flows: (gateways / 2) * flows_per_cell,
        runs,
        all_equal,
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Render the sweep as an experiment table.
pub fn table(battery: &Battery) -> Table {
    let mut table = Table::new(
        format!(
            "E17 — Sharded parallel execution: ring-{} ({} concurrent CBR/UDP \
             flows), {VIRTUAL} of virtual time per run; conservative-lookahead \
             lanes on scoped threads vs the single-lane reference \
             (host reported {} core{})",
            battery.gateways,
            battery.flows,
            battery.host_cores,
            if battery.host_cores == 1 { "" } else { "s" },
        ),
        &[
            "shards",
            "lanes",
            "events",
            "forwarded",
            "dumps equal",
            "wall (ms)",
            "events/s",
            "speedup",
        ],
    );
    let reference = battery.runs.first().map(|r| r.wall_ms).unwrap_or(0.0);
    for r in &battery.runs {
        let equal = r.digests == battery.runs[0].digests;
        table.row(vec![
            format!("{}", r.shards),
            format!("{}", r.lanes),
            format!("{}", r.events),
            format!("{}", r.forwarded),
            if equal { "yes" } else { "NO" }.into(),
            format!("{:.1}", r.wall_ms),
            format!("{:.0}", r.events as f64 / (r.wall_ms / 1e3)),
            format!("{:.2}x", reference / r.wall_ms),
        ]);
    }
    table.note(
        "Expected shape: dumps equal at every K — the lanes are observably \
         indistinguishable from the reference, which is the whole contract. \
         Speedup at K=4 clears 1.5x on a 4-core host and is bounded by the \
         host core count (a 1-core container runs every lane serially and \
         reports ~1.0x). Wall-clock columns vary run to run; event counts, \
         forward counts and digests are seed-deterministic.",
    );
    table
}

/// Serialize as `BENCH_e17.json`. With `timings: false` (CI `--check`)
/// only K-invariant fields survive: no shard counts, no lane counts,
/// no wall clock, no host cores — two check files produced at
/// *different* K must be byte-identical, which is exactly what CI
/// diffs.
pub fn to_json(battery: &Battery, timings: bool) -> String {
    let mut out = String::from("{\n  \"experiment\": \"e17\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n  \"gateways\": {},\n  \"cells\": {},\n  \
         \"flows\": {},\n  \"virtual_secs\": {},\n",
        if timings { "full" } else { "check" },
        battery.gateways,
        battery.cells,
        battery.flows,
        VIRTUAL.total_micros() / 1_000_000,
    ));
    let r0 = battery.runs.first().expect("at least one shard count");
    out.push_str(&format!(
        "  \"events\": {},\n  \"forwarded\": {},\n  \"digest_metrics\": {},\n  \
         \"digest_series\": {},\n  \"digest_flight\": {},\n  \"all_equal\": {}",
        r0.events, r0.forwarded, r0.digests[0], r0.digests[1], r0.digests[2], battery.all_equal,
    ));
    if timings {
        out.push_str(&format!(
            ",\n  \"host_cores\": {},\n  \"runs\": [\n",
            battery.host_cores
        ));
        let reference = r0.wall_ms;
        for (i, r) in battery.runs.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"shards\": {}, \"lanes\": {}, \"wall_ms\": {:.3}, \
                 \"events_per_sec\": {:.0}, \"speedup\": {:.3}}}{}\n",
                r.shards,
                r.lanes,
                r.wall_ms,
                r.events as f64 / (r.wall_ms / 1e3),
                reference / r.wall_ms,
                if i + 1 < battery.runs.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
    } else {
        out.push_str("\n}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_ring_is_byte_identical_across_shard_counts() {
        // A 16-gateway ring (the smallest cell-aligned size) at K = 1,
        // 2, 4: identical digests, event counts, and forward counts —
        // the E17 contract end to end, threads included.
        let runs: Vec<ShardRun> = [1, 2, 4].iter().map(|&k| run_one(16, 2, 11, k)).collect();
        for r in &runs[1..] {
            assert_eq!(r.digests, runs[0].digests, "K={} dumps diverged", r.shards);
            assert_eq!(r.events, runs[0].events, "K={} event count", r.shards);
            assert_eq!(r.forwarded, runs[0].forwarded, "K={} forwards", r.shards);
        }
        assert_eq!(runs[0].lanes, 1);
        assert_eq!(runs[1].lanes, 2);
        assert_eq!(runs[2].lanes, 4);
        assert!(runs[0].events > 10_000, "storm + flows ran: {}", runs[0].events);
        assert!(runs[0].forwarded > 1_000, "datagrams crossed the ring");
    }

    #[test]
    fn json_check_mode_is_shard_invariant() {
        // Small-scale stand-in for the CI diff: one battery per K at a
        // 16-gateway ring, host-dependent fields deliberately skewed so
        // a leak into check mode would show as a diff.
        let battery = |k: usize, cores: usize| Battery {
            gateways: 16,
            cells: 8,
            flows: 16,
            runs: vec![run_one(16, 2, 11, k)],
            all_equal: true,
            host_cores: cores,
        };
        let ja = to_json(&battery(1, 1), false);
        let jb = to_json(&battery(4, 64), false);
        assert_eq!(ja, jb, "check JSON at K=1 and K=4 must diff clean");
        assert!(!ja.contains("wall_ms"), "no wall clock in check mode");
        assert!(!ja.contains("host_cores"), "no host facts in check mode");
        assert!(!ja.contains("shards"), "no shard count in check mode");
        assert!(ja.contains("\"mode\": \"check\""));
        assert!(ja.contains("\"all_equal\": true"));
    }

    #[test]
    fn fnv1a_is_the_standard_vector() {
        // Classic FNV-1a test vectors pin the digest so a refactor
        // can't silently change every recorded fingerprint.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a("foobar"), 0x85944171f73967e8);
    }
}
