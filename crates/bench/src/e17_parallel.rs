//! E17 — Sharded parallel execution, priced (ROADMAP "parallel
//! execution"; paper §3, scale as a first-class goal).
//!
//! **Claim.** The architecture is meant for an internet "at the scale
//! of millions of users", but a one-core event loop caps every
//! experiment in this repo far below that. Conservative-lookahead
//! sharding (`ShardKind::Parallel`) partitions the node set into K
//! contiguous lanes that run windows of virtual time on their own
//! threads, exchanging cross-lane frames at barrier instants — and the
//! whole point of the design is that the speedup costs *nothing* in
//! observability: every dump is byte-identical to the single-lane
//! reference, at every K.
//!
//! **Experiment.** A ring of ≥1000 gateways with a host pair riding
//! every second gateway runs ~10⁴ concurrent local CBR/UDP flows
//! (packet voice, the datagram archetype) through the cold-start
//! routing storm and 30 s of steady state. The same construction runs
//! at K ∈ {1, 2, 4, 8}; per K we record wall clock, events processed,
//! datagrams forwarded, and an FNV-1a digest of each telemetry dump.
//! The digests must agree across every K — cross-K equivalence — and
//! the wall-clock ratio against K=1 is the headline speedup.
//!
//! **Arms.** Three lookahead/partition arms price the window protocol
//! itself, on identical topologies with identical bytes:
//!
//! - `global` — the original protocol: one window bound (minimum
//!   cross-lane base propagation) anchored at the round's earliest
//!   instant, every lane dispatched every round. Kept as the baseline.
//! - `per-pair` — the CMB-style per-lane-pair lookahead matrix: lane i
//!   advances to `min over j of (T_j + reach(j→i)) − 1 µs`, lanes with
//!   nothing due are skipped. The default.
//! - `partitioner` — per-pair plus latency-aware lane boundaries
//!   (`catenet_core::partition`): boundary positions slide (within 25 %
//!   balance slack) to maximize the cheapest cut link.
//!
//! **Topology discipline.** Lanes are contiguous-by-NodeId, so the
//! builder interleaves creation — `g₀, src₀, g₁, dst₀, g₂, …` — making
//! the node sequence periodic in cells of four. On the main ring the
//! gateway count is a multiple of 16, so every equal-chunk boundary
//! for K ≤ 8 lands *between* cells: hosts share a lane with their
//! gateway, every cross-lane link is a T1 trunk, and windows get the
//! full 30 ms trunk propagation. The **misaligned demo** drops that
//! builder convention on purpose — a 66-gateway ring at K=8 puts four
//! equal-chunk boundaries *inside* cells, cutting 100 µs LANs — and
//! shows the partitioner restoring trunk-only cuts automatically
//! (window-span counters tell the story; dumps stay byte-identical
//! throughout, because partition choice is performance-only).
//!
//! Results render as tables and `BENCH_e17.json`. In `--check` mode
//! the JSON carries only K-invariant, seed-deterministic fields
//! (counts and dump digests — no shard count, no wall clock, no host
//! cores, no window counters), so CI can run it at K=1 and K=4 and
//! with the partitioner on and off, twice each, and diff all the
//! files: run-twice determinism, cross-K equivalence, and partition
//! neutrality in one byte comparison. The `--full` tier scales the
//! ring to 5,120 gateways / ~10⁵ flows for the CI timing artifact.

use crate::table::Table;
use catenet_core::app::{CbrSink, CbrSource};
use catenet_core::{Endpoint, Network, NodeId, ShardKind, ShardStats};
use catenet_sim::{Duration, Instant, LinkClass};

/// Shard counts the battery sweeps.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Ring size (gateways) in the full battery. A multiple of 16 so lane
/// boundaries stay cell-aligned for every K ≤ 8 (see module docs).
pub const RING_FULL: usize = 1024;
/// Ring size in the CI `--check` battery.
pub const RING_CHECK: usize = 192;
/// Ring size in the `--full` scale tier: 5,120 gateways → 2,560 cells
/// → 102,400 concurrent flows at [`FLOWS_PER_CELL_HUGE`].
pub const RING_HUGE: usize = 5120;
/// Flows per cell in the `--full` scale tier.
pub const FLOWS_PER_CELL_HUGE: usize = 40;
/// Ring size of the misaligned demo: 66 gateways → 132 nodes, so the
/// K=8 equal chunks land at positions 16, 33, 49, 66, 82, 99, 115 —
/// four of them odd, i.e. inside a cell, cutting a host LAN.
pub const RING_MISALIGNED: usize = 66;
/// CBR flows per host-pair cell in the full battery (one cell per two
/// gateways: 1024 gateways → 512 cells → 10 240 concurrent flows).
pub const FLOWS_PER_CELL_FULL: usize = 20;
/// Flows per cell in the `--check` battery.
pub const FLOWS_PER_CELL_CHECK: usize = 4;
/// Virtual time per run: cold-start storm plus steady-state CBR.
pub const VIRTUAL: Duration = Duration::from_secs(30);
/// Flows start once nearby routes have propagated, like E13.
const FLOW_START: Instant = Instant::from_secs(8);
/// Flows stop 2 s before [`VIRTUAL`] ends so tails drain in-window.
const FLOW_STOP: Instant = Instant::from_secs(28);
/// CBR cadence: one 160-byte datagram per flow per 200 ms (packet
/// voice at report rate, scaled so 10⁴ flows stay tractable).
const CBR_INTERVAL: Duration = Duration::from_millis(200);
const CBR_SIZE: usize = 160;
/// Each cell's flows target the dst host two cells ahead: five ring
/// hops plus two LAN hops, comfortably inside the metric-16 horizon.
const CELL_SKIP: usize = 2;

/// Which lookahead/partition arm a run uses (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arm {
    /// The original single-bound protocol, all lanes every round.
    Global,
    /// Per-lane-pair lookahead matrix with lane skipping (default).
    PerPair,
    /// Per-pair lookahead on latency-aware lane boundaries.
    Partitioner,
}

impl Arm {
    /// Stable name for tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Arm::Global => "global",
            Arm::PerPair => "per-pair",
            Arm::Partitioner => "partitioner",
        }
    }
}

/// Workload tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// CI `--check` size ([`RING_CHECK`]).
    Check,
    /// Standard full battery ([`RING_FULL`]).
    Full,
    /// `--full` scale tier ([`RING_HUGE`], ~10⁵ flows).
    Huge,
}

impl Tier {
    fn shape(self) -> (usize, usize) {
        match self {
            Tier::Check => (RING_CHECK, FLOWS_PER_CELL_CHECK),
            Tier::Full => (RING_FULL, FLOWS_PER_CELL_FULL),
            Tier::Huge => (RING_HUGE, FLOWS_PER_CELL_HUGE),
        }
    }
}

/// One shard count's run.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Requested shard count K.
    pub shards: usize,
    /// Lookahead/partition arm.
    pub arm: Arm,
    /// Lanes actually created (K clamped to the node count).
    pub lanes: usize,
    /// Events processed (identical across K and arms).
    pub events: u64,
    /// Datagrams forwarded by gateways (identical across K and arms).
    pub forwarded: u64,
    /// FNV-1a digests of the metrics, series, and flight dumps.
    pub digests: [u64; 3],
    /// Wall clock for the simulation run, milliseconds.
    pub wall_ms: f64,
    /// Window-protocol counters (zero for the K=1 reference arm).
    pub stats: ShardStats,
}

impl ShardRun {
    /// Mean lane-window span in microseconds — how far a lane runs per
    /// round, the direct observable the per-pair matrix widens.
    pub fn avg_span_us(&self) -> f64 {
        let lane_windows = self.stats.lanes_dispatched + self.stats.lanes_skipped;
        if lane_windows == 0 {
            0.0
        } else {
            self.stats.span_us as f64 / lane_windows as f64
        }
    }
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct Battery {
    /// Gateways in the ring.
    pub gateways: usize,
    /// Host-pair cells (gateways / 2).
    pub cells: usize,
    /// Concurrent CBR flows (cells × flows-per-cell).
    pub flows: usize,
    /// One run per requested shard count / arm.
    pub runs: Vec<ShardRun>,
    /// Every run produced identical dump digests, event counts, and
    /// forward counts — the cross-K, cross-arm equivalence bit.
    pub all_equal: bool,
    /// Cores the host reported (`std::thread::available_parallelism`);
    /// speedup is bounded by this, so CI numbers from a 4-core runner
    /// and laptop numbers are comparable only through it.
    pub host_cores: usize,
}

/// FNV-1a 64 over a dump — a stable fingerprint two JSON files can be
/// diffed on without embedding megabytes of telemetry.
pub fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Build the interleaved ring and attach every flow. See the module
/// docs for why creation order is load-bearing.
fn build(gateways: usize, flows_per_cell: usize, seed: u64, shard: ShardKind) -> (Network, Vec<NodeId>) {
    // Even gateway counts keep cells whole; *alignment* of lane
    // boundaries to cell edges is the main ring's convention (multiple
    // of 16) and deliberately not enforced here — the misaligned demo
    // exists to break it and let the partitioner repair it.
    assert!(gateways.is_multiple_of(2), "cells need gateway pairs");
    let cells = gateways / 2;
    let mut net = Network::with_shards(seed, shard);
    let mut gs = Vec::with_capacity(gateways);
    let mut srcs = Vec::with_capacity(cells);
    let mut dsts = Vec::with_capacity(cells);
    for i in 0..gateways {
        let g = net.add_gateway(format!("g{i}"));
        if let Some(&prev) = gs.last() {
            net.connect(prev, g, LinkClass::T1Terrestrial);
        }
        gs.push(g);
        if i % 2 == 0 {
            let src = net.add_host(format!("src{}", i / 2));
            net.connect(src, g, LinkClass::EthernetLan);
            srcs.push(src);
        } else {
            let dst = net.add_host(format!("dst{}", i / 2));
            net.connect(dst, g, LinkClass::EthernetLan);
            dsts.push(dst);
        }
    }
    net.connect(gs[gateways - 1], gs[0], LinkClass::T1Terrestrial);
    for cell in 0..cells {
        let target = dsts[(cell + CELL_SKIP) % cells];
        let dst_addr = net.node(target).primary_addr();
        for flow in 0..flows_per_cell {
            let port = 5000 + flow as u16;
            net.attach_app(target, Box::new(CbrSink::new(port)));
            net.attach_app(
                srcs[cell],
                Box::new(CbrSource::new(
                    Endpoint::new(dst_addr, port),
                    CBR_INTERVAL,
                    CBR_SIZE,
                    FLOW_START,
                    FLOW_STOP,
                )),
            );
        }
    }
    (net, gs)
}

/// Run one (shard count, arm) over the given workload. K=1 is always
/// the `Single` reference; `threaded` selects `Parallel` vs `Sharded`
/// lanes for K>1 (the misaligned demo runs serial lanes — its windows
/// are protocol-priced by counters, not thread wall-clock).
pub fn run_one_arm(
    gateways: usize,
    flows_per_cell: usize,
    seed: u64,
    shards: usize,
    arm: Arm,
    threaded: bool,
) -> ShardRun {
    let shard = if shards == 1 {
        ShardKind::Single
    } else if threaded {
        ShardKind::Parallel { shards }
    } else {
        ShardKind::Sharded { shards }
    };
    let (mut net, gs) = build(gateways, flows_per_cell, seed, shard);
    match arm {
        Arm::Global => net.set_global_lookahead(true),
        Arm::PerPair => {}
        Arm::Partitioner => net.set_partitioner(true),
    }
    let t0 = std::time::Instant::now();
    net.run_for(VIRTUAL);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let forwarded = gs.iter().map(|&g| net.node(g).stats.ip_forwarded).sum();
    ShardRun {
        shards,
        arm,
        lanes: net.lane_count(),
        events: net.sched_stats().processed,
        forwarded,
        digests: [
            fnv1a(&net.metrics_dump()),
            fnv1a(&net.series_dump()),
            fnv1a(&net.flight_dump()),
        ],
        wall_ms,
        stats: net.shard_stats(),
    }
}

/// Run one shard count on the default (per-pair, threaded) arm.
pub fn run_one(gateways: usize, flows_per_cell: usize, seed: u64, shards: usize) -> ShardRun {
    run_one_arm(gateways, flows_per_cell, seed, shards, Arm::PerPair, true)
}

fn check_equal(runs: &[ShardRun]) -> bool {
    runs.windows(2).all(|w| {
        w[0].digests == w[1].digests
            && w[0].events == w[1].events
            && w[0].forwarded == w[1].forwarded
    })
}

/// Run the sweep. `tier` sizes the workload; `shard_counts` lets CI
/// pin a single K (the `--shards N` flag); `partitioner` switches
/// every K>1 run to the partitioner arm (the CI cross-diff flag). The
/// `Full` tier additionally appends the K=4 global-baseline and
/// partitioner arms, so EXPERIMENTS.md carries the protocol A/B on
/// one topology.
pub fn run_battery_arms(
    tier: Tier,
    seed: u64,
    shard_counts: &[usize],
    partitioner: bool,
) -> Battery {
    let (gateways, flows_per_cell) = tier.shape();
    let arm_for = |k: usize| {
        if partitioner && k > 1 {
            Arm::Partitioner
        } else {
            Arm::PerPair
        }
    };
    let mut runs: Vec<ShardRun> = shard_counts
        .iter()
        .map(|&k| run_one_arm(gateways, flows_per_cell, seed, k, arm_for(k), true))
        .collect();
    if tier == Tier::Full && !partitioner && shard_counts.contains(&4) {
        runs.push(run_one_arm(gateways, flows_per_cell, seed, 4, Arm::Global, true));
        runs.push(run_one_arm(
            gateways,
            flows_per_cell,
            seed,
            4,
            Arm::Partitioner,
            true,
        ));
    }
    let all_equal = check_equal(&runs);
    Battery {
        gateways,
        cells: gateways / 2,
        flows: (gateways / 2) * flows_per_cell,
        runs,
        all_equal,
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Back-compatible entry: `fast` maps to the check tier.
pub fn run_battery(fast: bool, seed: u64, shard_counts: &[usize]) -> Battery {
    run_battery_arms(
        if fast { Tier::Check } else { Tier::Full },
        seed,
        shard_counts,
        false,
    )
}

/// The misaligned demo: a 66-gateway ring at K=8, where equal-chunk
/// lane boundaries cut four host LANs (100 µs windows) and the
/// partitioner slides them back onto trunks (30 ms windows). Serial
/// lanes — the observable is the window counters, not thread scaling —
/// with the K=1 reference pinning byte identity for all three arms.
pub fn run_misaligned(seed: u64) -> Battery {
    let runs = vec![
        run_one_arm(RING_MISALIGNED, FLOWS_PER_CELL_CHECK, seed, 1, Arm::PerPair, false),
        run_one_arm(RING_MISALIGNED, FLOWS_PER_CELL_CHECK, seed, 8, Arm::Global, false),
        run_one_arm(RING_MISALIGNED, FLOWS_PER_CELL_CHECK, seed, 8, Arm::PerPair, false),
        run_one_arm(RING_MISALIGNED, FLOWS_PER_CELL_CHECK, seed, 8, Arm::Partitioner, false),
    ];
    let all_equal = check_equal(&runs);
    Battery {
        gateways: RING_MISALIGNED,
        cells: RING_MISALIGNED / 2,
        flows: (RING_MISALIGNED / 2) * FLOWS_PER_CELL_CHECK,
        runs,
        all_equal,
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Render the sweep as an experiment table.
pub fn table(battery: &Battery) -> Table {
    let mut table = Table::new(
        format!(
            "E17 — Sharded parallel execution: ring-{} ({} concurrent CBR/UDP \
             flows), {VIRTUAL} of virtual time per run; per-pair-lookahead \
             lanes on scoped threads vs the single-lane reference, with the \
             global-lookahead baseline and partitioner arms at K=4 \
             (host reported {} core{})",
            battery.gateways,
            battery.flows,
            battery.host_cores,
            if battery.host_cores == 1 { "" } else { "s" },
        ),
        &[
            "shards",
            "arm",
            "lanes",
            "events",
            "forwarded",
            "dumps equal",
            "windows",
            "avg win (µs)",
            "skipped",
            "wall (ms)",
            "speedup",
        ],
    );
    let reference = battery.runs.first().map(|r| r.wall_ms).unwrap_or(0.0);
    for r in &battery.runs {
        let equal = r.digests == battery.runs[0].digests;
        table.row(vec![
            format!("{}", r.shards),
            r.arm.name().into(),
            format!("{}", r.lanes),
            format!("{}", r.events),
            format!("{}", r.forwarded),
            if equal { "yes" } else { "NO" }.into(),
            format!("{}", r.stats.windows),
            format!("{:.0}", r.avg_span_us()),
            format!("{}", r.stats.lanes_skipped),
            format!("{:.1}", r.wall_ms),
            format!("{:.2}x", reference / r.wall_ms),
        ]);
    }
    table.note(
        "Expected shape: dumps equal on every row — lane count, lookahead \
         protocol and partition choice are all observably indistinguishable \
         from the reference, which is the whole contract. The per-pair arm \
         beats the global baseline at equal K (wider windows where traffic is \
         asymmetric, idle lanes skipped instead of dispatched); speedup at \
         K=4 clears 1.5x on a 4-core host and is bounded by the host core \
         count (a 1-core container runs every lane serially and reports \
         ~1.0x, but the per-pair arm still wins on fewer rounds and fewer \
         thread spawns). Wall-clock columns vary run to run; event counts, \
         forward counts, digests and window counters are seed-deterministic.",
    );
    table
}

/// Render the misaligned demo as its own table.
pub fn misaligned_table(battery: &Battery) -> Table {
    let mut table = Table::new(
        format!(
            "E17b — Latency-aware partitioning, misaligned ring-{} ({} flows, \
             K=8 serial lanes): equal-chunk boundaries cut four host LANs; \
             the partitioner slides them back onto T1 trunks",
            battery.gateways, battery.flows,
        ),
        &[
            "arm",
            "lanes",
            "dumps equal",
            "windows",
            "avg win (µs)",
            "collapsed",
            "skipped",
            "wall (ms)",
        ],
    );
    for r in &battery.runs {
        let equal = r.digests == battery.runs[0].digests;
        table.row(vec![
            if r.shards == 1 {
                "reference".into()
            } else {
                r.arm.name().into()
            },
            format!("{}", r.lanes),
            if equal { "yes" } else { "NO" }.into(),
            format!("{}", r.stats.windows),
            format!("{:.0}", r.avg_span_us()),
            format!("{}", r.stats.collapsed),
            format!("{}", r.stats.lanes_skipped),
            format!("{:.1}", r.wall_ms),
        ]);
    }
    table.note(
        "Expected shape: all four rows byte-identical (partition choice is \
         performance-only), with the global and per-pair arms stuck at \
         ~100 µs windows — the LAN a misplaced boundary cuts — and the \
         partitioner arm back at trunk-width windows, orders of magnitude \
         fewer rounds, and correspondingly less barrier overhead.",
    );
    table
}

/// Serialize as `BENCH_e17.json`. With `timings: false` (CI `--check`)
/// only K-invariant fields survive: no shard counts, no lane counts,
/// no wall clock, no host cores, no window counters — check files
/// produced at *different* K, or with the partitioner on vs off, must
/// be byte-identical, which is exactly what CI diffs. With timings on,
/// `misaligned` (when given) rides along as the partitioner demo.
pub fn to_json(battery: &Battery, timings: bool, misaligned: Option<&Battery>) -> String {
    let mut out = String::from("{\n  \"experiment\": \"e17\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n  \"gateways\": {},\n  \"cells\": {},\n  \
         \"flows\": {},\n  \"virtual_secs\": {},\n",
        if timings { "full" } else { "check" },
        battery.gateways,
        battery.cells,
        battery.flows,
        VIRTUAL.total_micros() / 1_000_000,
    ));
    let r0 = battery.runs.first().expect("at least one shard count");
    out.push_str(&format!(
        "  \"events\": {},\n  \"forwarded\": {},\n  \"digest_metrics\": {},\n  \
         \"digest_series\": {},\n  \"digest_flight\": {},\n  \"all_equal\": {}",
        r0.events, r0.forwarded, r0.digests[0], r0.digests[1], r0.digests[2], battery.all_equal,
    ));
    if timings {
        out.push_str(&format!(
            ",\n  \"host_cores\": {},\n  \"runs\": [\n",
            battery.host_cores
        ));
        let reference = r0.wall_ms;
        out.push_str(&runs_json(&battery.runs, reference, "    "));
        out.push_str("  ]");
        if let Some(demo) = misaligned {
            out.push_str(&format!(
                ",\n  \"misaligned\": {{\n    \"gateways\": {},\n    \
                 \"flows\": {},\n    \"all_equal\": {},\n    \"runs\": [\n",
                demo.gateways, demo.flows, demo.all_equal,
            ));
            let demo_ref = demo.runs.first().map_or(0.0, |r| r.wall_ms);
            out.push_str(&runs_json(&demo.runs, demo_ref, "      "));
            out.push_str("    ]\n  }");
        }
        out.push_str("\n}\n");
    } else {
        out.push_str("\n}\n");
    }
    out
}

fn runs_json(runs: &[ShardRun], reference_wall_ms: f64, indent: &str) -> String {
    let mut out = String::new();
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&format!(
            "{indent}{{\"shards\": {}, \"arm\": \"{}\", \"lanes\": {}, \
             \"wall_ms\": {:.3}, \"events_per_sec\": {:.0}, \"speedup\": {:.3}, \
             \"windows\": {}, \"avg_span_us\": {:.0}, \"collapsed\": {}, \
             \"barrier_stalls\": {}, \"lanes_dispatched\": {}, \
             \"lanes_skipped\": {}}}{}\n",
            r.shards,
            r.arm.name(),
            r.lanes,
            r.wall_ms,
            r.events as f64 / (r.wall_ms / 1e3),
            reference_wall_ms / r.wall_ms,
            r.stats.windows,
            r.avg_span_us(),
            r.stats.collapsed,
            r.stats.barrier_stalls,
            r.stats.lanes_dispatched,
            r.stats.lanes_skipped,
            if i + 1 < runs.len() { "," } else { "" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_ring_is_byte_identical_across_shard_counts() {
        // A 16-gateway ring (the smallest cell-aligned size) at K = 1,
        // 2, 4: identical digests, event counts, and forward counts —
        // the E17 contract end to end, threads included.
        let runs: Vec<ShardRun> = [1, 2, 4].iter().map(|&k| run_one(16, 2, 11, k)).collect();
        for r in &runs[1..] {
            assert_eq!(r.digests, runs[0].digests, "K={} dumps diverged", r.shards);
            assert_eq!(r.events, runs[0].events, "K={} event count", r.shards);
            assert_eq!(r.forwarded, runs[0].forwarded, "K={} forwards", r.shards);
        }
        assert_eq!(runs[0].lanes, 1);
        assert_eq!(runs[1].lanes, 2);
        assert_eq!(runs[2].lanes, 4);
        assert!(runs[0].events > 10_000, "storm + flows ran: {}", runs[0].events);
        assert!(runs[0].forwarded > 1_000, "datagrams crossed the ring");
    }

    #[test]
    fn json_check_mode_is_shard_invariant() {
        // Small-scale stand-in for the CI diff: one battery per K at a
        // 16-gateway ring, host-dependent fields deliberately skewed so
        // a leak into check mode would show as a diff.
        let battery = |k: usize, cores: usize| Battery {
            gateways: 16,
            cells: 8,
            flows: 16,
            runs: vec![run_one(16, 2, 11, k)],
            all_equal: true,
            host_cores: cores,
        };
        let ja = to_json(&battery(1, 1), false, None);
        let jb = to_json(&battery(4, 64), false, None);
        assert_eq!(ja, jb, "check JSON at K=1 and K=4 must diff clean");
        assert!(!ja.contains("wall_ms"), "no wall clock in check mode");
        assert!(!ja.contains("host_cores"), "no host facts in check mode");
        assert!(!ja.contains("shards"), "no shard count in check mode");
        assert!(!ja.contains("windows"), "no window counters in check mode");
        assert!(ja.contains("\"mode\": \"check\""));
        assert!(ja.contains("\"all_equal\": true"));
    }

    #[test]
    fn partitioner_is_byte_neutral() {
        // The CI cross-diff in miniature: the same workload with the
        // partitioner off and on must agree on every K-invariant field
        // — partition choice is performance-only.
        let off = run_one_arm(16, 2, 11, 2, Arm::PerPair, true);
        let on = run_one_arm(16, 2, 11, 2, Arm::Partitioner, true);
        assert_eq!(off.digests, on.digests, "partitioner changed bytes");
        assert_eq!(off.events, on.events);
        assert_eq!(off.forwarded, on.forwarded);
    }

    #[test]
    fn global_baseline_arm_matches_bytes_and_dispatches_every_lane() {
        let per_pair = run_one_arm(16, 2, 11, 4, Arm::PerPair, true);
        let global = run_one_arm(16, 2, 11, 4, Arm::Global, true);
        assert_eq!(per_pair.digests, global.digests, "arms must agree on bytes");
        assert_eq!(
            global.stats.lanes_skipped, 0,
            "the baseline dispatches every lane every round"
        );
        assert!(
            per_pair.stats.lanes_skipped > 0,
            "per-pair skips idle lanes: {:?}",
            per_pair.stats
        );
    }

    #[test]
    fn misaligned_ring_partitioner_widens_windows_and_keeps_bytes() {
        // An 18-gateway ring (36 nodes) at K=4: equal chunks cut at
        // 9/18/27, two of them inside cells (host LANs); the
        // partitioner must slide every boundary onto a trunk, widening
        // the mean window from LAN scale toward trunk scale, with all
        // dumps byte-identical.
        let reference = run_one_arm(18, 2, 11, 1, Arm::PerPair, false);
        let off = run_one_arm(18, 2, 11, 4, Arm::PerPair, false);
        let on = run_one_arm(18, 2, 11, 4, Arm::Partitioner, false);
        assert_eq!(off.digests, reference.digests, "equal-chunk arm diverged");
        assert_eq!(on.digests, reference.digests, "partitioner arm diverged");
        assert!(
            on.avg_span_us() > 4.0 * off.avg_span_us(),
            "trunk-only cuts must widen windows: off {:.0} µs vs on {:.0} µs",
            off.avg_span_us(),
            on.avg_span_us()
        );
        assert!(
            on.stats.windows < off.stats.windows,
            "wider windows mean fewer rounds: {} vs {}",
            on.stats.windows,
            off.stats.windows
        );
    }

    #[test]
    fn fnv1a_is_the_standard_vector() {
        // Classic FNV-1a test vectors pin the digest so a refactor
        // can't silently change every recorded fingerprint.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a("foobar"), 0x85944171f73967e8);
    }
}
