//! E13 — Scheduler scale benchmark (ROADMAP "performance re-anchor").
//!
//! **Claim.** Clark's gateways are cheap, stateless store-and-forward
//! elements; stressing the architecture's claims at realistic size
//! means simulating *hundreds* of them. The event loop must not be the
//! blocker — and a perf rewrite of the measurement substrate is only
//! trustworthy if it is proven observably identical to what it
//! replaced.
//!
//! **Experiment.** Gateway rings of 50–400 nodes (plus a grid-mesh
//! arm) run their cold-start distance-vector convergence storm — the
//! densest event mix the stack produces — once under each scheduler
//! backend. Three things are measured per topology:
//!
//! 1. **Equivalence at scale**: the metrics, time-series, and
//!    flight-recorder dumps of the heap run and the wheel run must be
//!    byte-identical (the differential harness's system-level check,
//!    here at 400 gateways).
//! 2. **End-to-end wall clock** per backend for the full simulation.
//! 3. **Substrate throughput**: the wheel run records its scheduler op
//!    trace (every post-clamp schedule and pop), and the trace is
//!    replayed against both backends in isolation. Replay isolates the
//!    event-queue cost from protocol work, so the heap/wheel speedup
//!    is measured on the *real* event mix, not a synthetic one.
//!
//! Results are rendered as a table and emitted as `BENCH_e13.json`. In
//! `--check` mode the JSON omits wall-clock fields, leaving only
//! seed-deterministic numbers — CI runs it twice and diffs.

use crate::table::Table;
use catenet_core::app::{BulkSender, SinkServer};
use catenet_core::{Endpoint, Network, TcpConfig};
use catenet_sim::{diffsched, Duration, LinkClass, SchedulerKind, TraceOp};

/// Ring sizes (gateway counts) in the full battery.
pub const RING_SIZES: [usize; 4] = [50, 100, 200, 400];
/// Ring sizes in the fast/CI battery. Ring-400 is included so the CI
/// determinism diff exercises the overflow-heavy scheduler path (far
/// timers paging through the wheel's overflow map), not just the
/// in-window fast path the small rings stay inside.
pub const RING_SIZES_FAST: [usize; 3] = [50, 100, 400];
/// Virtual time each topology runs: long enough for the cold-start
/// storm, several periodic update rounds, and the bulk transfers.
pub const VIRTUAL: Duration = Duration::from_secs(30);
/// Replay repetitions per backend; the minimum wall time is reported
/// (the run least perturbed by the host machine).
const REPLAY_REPS: usize = 7;
/// A host pair with a bulk transfer every this many gateways.
const FLOW_SPACING: usize = 2;
/// Bytes per bulk transfer.
const FLOW_BYTES: usize = 500_000;

/// Attach host pairs around the topology: at every [`FLOW_SPACING`]-th
/// gateway, a sender host two gateways away from a sink host, with a
/// [`FLOW_BYTES`] transfer starting once nearby routes have had time to
/// propagate. Local flows (short paths) keep the workload meaningful
/// during the convergence storm, and dozens of concurrent sockets give
/// the scheduler a deep pending queue — the regime where O(log n) heap
/// operations actually cost something.
fn add_flows(net: &mut Network, gateways: &[usize]) {
    for i in (0..gateways.len()).step_by(FLOW_SPACING) {
        let near = gateways[i];
        let far = gateways[(i + 2) % gateways.len()];
        let sender = net.add_host(format!("src{i}"));
        let sink = net.add_host(format!("dst{i}"));
        net.connect(sender, near, LinkClass::EthernetLan);
        net.connect(sink, far, LinkClass::EthernetLan);
        let dst = net.node(sink).primary_addr();
        let config = TcpConfig::default();
        net.attach_app(sink, Box::new(SinkServer::new(80, config.clone())));
        net.attach_app(
            sender,
            Box::new(BulkSender::new(
                Endpoint::new(dst, 80),
                FLOW_BYTES,
                config,
                catenet_sim::Instant::from_secs(8),
            )),
        );
    }
}

/// One topology's measurements.
#[derive(Debug, Clone)]
pub struct TopoResult {
    /// Display name, e.g. `ring-400` or `mesh-10x10`.
    pub name: String,
    /// Gateway count.
    pub gateways: usize,
    /// Events the simulation processed (identical across backends).
    pub events: u64,
    /// Entries that crossed the wheel's overflow map.
    pub overflow_inserts: u64,
    /// Heap and wheel telemetry dumps were byte-identical.
    pub dumps_equal: bool,
    /// Full-simulation wall clock, `[heap, wheel]`, milliseconds.
    pub sim_ms: [f64; 2],
    /// Trace-replay wall clock, `[heap, wheel]`, milliseconds (min of
    /// [`REPLAY_REPS`] reps).
    pub replay_ms: [f64; 2],
    /// Trace-replay throughput, `[heap, wheel]`, events per second.
    pub replay_eps: [f64; 2],
    /// Substrate speedup: heap replay time / wheel replay time.
    pub speedup: f64,
}

/// Build a `gateways`-node ring with a host hanging off either side —
/// the E12 topology scaled up. `trace` must be armed before the first
/// `connect` (topology kicks schedule events; a replayable trace has to
/// start at event zero).
fn build_ring(gateways: usize, seed: u64, kind: SchedulerKind, trace: bool) -> Network {
    let mut net = Network::with_scheduler(seed, kind);
    net.set_sched_trace(trace);
    let h1 = net.add_host("h1");
    let gs: Vec<usize> = (0..gateways)
        .map(|i| net.add_gateway(format!("g{i}")))
        .collect();
    net.connect(h1, gs[0], LinkClass::EthernetLan);
    for i in 0..gateways {
        net.connect(gs[i], gs[(i + 1) % gateways], LinkClass::T1Terrestrial);
    }
    let h2 = net.add_host("h2");
    net.connect(gs[gateways / 2], h2, LinkClass::EthernetLan);
    add_flows(&mut net, &gs);
    net
}

/// Build a `side`×`side` grid mesh of gateways (each connected to its
/// right and down neighbors) with hosts at opposite corners. Meshes
/// have far more redundant paths than rings, so the convergence storm
/// is denser per node.
fn build_mesh(side: usize, seed: u64, kind: SchedulerKind, trace: bool) -> Network {
    let mut net = Network::with_scheduler(seed, kind);
    net.set_sched_trace(trace);
    let gs: Vec<usize> = (0..side * side)
        .map(|i| net.add_gateway(format!("g{i}")))
        .collect();
    for row in 0..side {
        for col in 0..side {
            let here = gs[row * side + col];
            if col + 1 < side {
                net.connect(here, gs[row * side + col + 1], LinkClass::T1Terrestrial);
            }
            if row + 1 < side {
                net.connect(here, gs[(row + 1) * side + col], LinkClass::T1Terrestrial);
            }
        }
    }
    let h1 = net.add_host("h1");
    let h2 = net.add_host("h2");
    net.connect(h1, gs[0], LinkClass::EthernetLan);
    net.connect(h2, gs[side * side - 1], LinkClass::EthernetLan);
    add_flows(&mut net, &gs);
    net
}

fn dumps(net: &Network) -> [String; 3] {
    [net.metrics_dump(), net.series_dump(), net.flight_dump()]
}

/// Measure one topology under both backends. `build` must construct the
/// identical network modulo the scheduler kind, arming the op trace
/// when the second argument is true.
fn measure(
    name: &str,
    gateways: usize,
    build: &dyn Fn(SchedulerKind, bool) -> Network,
) -> TopoResult {
    // Wheel run carries the op-trace recorder (recording is push-only
    // and kind-independent, but one trace suffices).
    let mut wheel_net = build(SchedulerKind::Wheel, true);
    let t0 = std::time::Instant::now();
    wheel_net.run_for(VIRTUAL);
    let wheel_sim_ms = t0.elapsed().as_secs_f64() * 1e3;
    let trace: Vec<TraceOp> = wheel_net.take_sched_trace();
    let wheel_dumps = dumps(&wheel_net);
    let stats = wheel_net.sched_stats();

    let mut heap_net = build(SchedulerKind::Heap, false);
    let t0 = std::time::Instant::now();
    heap_net.run_for(VIRTUAL);
    let heap_sim_ms = t0.elapsed().as_secs_f64() * 1e3;
    let heap_dumps = dumps(&heap_net);
    assert_eq!(
        heap_net.sched_stats().processed,
        stats.processed,
        "{name}: backends processed different event counts"
    );

    let replay_ms = |kind: SchedulerKind| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..REPLAY_REPS {
            let t0 = std::time::Instant::now();
            let processed = diffsched::replay_trace(kind, &trace);
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            assert_eq!(processed, stats.processed, "{name}: replay drift");
        }
        best
    };
    let heap_replay = replay_ms(SchedulerKind::Heap);
    let wheel_replay = replay_ms(SchedulerKind::Wheel);
    let eps = |ms: f64| stats.processed as f64 / (ms / 1e3);

    TopoResult {
        name: name.to_string(),
        gateways,
        events: stats.processed,
        overflow_inserts: stats.wheel.overflow_inserts,
        dumps_equal: wheel_dumps == heap_dumps,
        sim_ms: [heap_sim_ms, wheel_sim_ms],
        replay_ms: [heap_replay, wheel_replay],
        replay_eps: [eps(heap_replay), eps(wheel_replay)],
        speedup: heap_replay / wheel_replay,
    }
}

/// Run the battery. `fast` selects the CI-sized topologies.
pub fn run_battery(fast: bool, seed: u64) -> Vec<TopoResult> {
    let sizes: &[usize] = if fast { &RING_SIZES_FAST } else { &RING_SIZES };
    let mut results = Vec::new();
    for &gateways in sizes {
        results.push(measure(&format!("ring-{gateways}"), gateways, &|kind, trace| {
            build_ring(gateways, seed, kind, trace)
        }));
    }
    let side = if fast { 5 } else { 10 };
    results.push(measure(
        &format!("mesh-{side}x{side}"),
        side * side,
        &|kind, trace| build_mesh(side, seed, kind, trace),
    ));
    results
}

/// Render the battery as an experiment table.
pub fn table(results: &[TopoResult]) -> Table {
    let mut table = Table::new(
        format!(
            "E13 — Scheduler scale benchmark: cold-start DV convergence storm \
             plus concurrent bulk TCP flows, {VIRTUAL} of virtual time per \
             topology; heap vs wheel backend (replay = scheduler op trace \
             re-run through the backend alone)"
        ),
        &[
            "topology",
            "gateways",
            "events",
            "dumps equal",
            "sim heap (ms)",
            "sim wheel (ms)",
            "replay heap (ms)",
            "replay wheel (ms)",
            "substrate speedup",
        ],
    );
    for r in results {
        table.row(vec![
            r.name.clone(),
            format!("{}", r.gateways),
            format!("{}", r.events),
            if r.dumps_equal { "yes" } else { "NO" }.into(),
            format!("{:.1}", r.sim_ms[0]),
            format!("{:.1}", r.sim_ms[1]),
            format!("{:.2}", r.replay_ms[0]),
            format!("{:.2}", r.replay_ms[1]),
            format!("{:.2}x", r.speedup),
        ]);
    }
    table.note(
        "Expected shape: dumps equal everywhere (the backends are observably \
         identical); substrate speedup grows with topology size and clears 2x at \
         the 400-gateway ring. Wall-clock columns vary run to run; event counts \
         and dump equality are seed-deterministic.",
    );
    table
}

/// Serialize results as `BENCH_e13.json`. With `timings: false` (CI
/// `--check` mode) all wall-clock fields are omitted, leaving only
/// seed-deterministic numbers — run twice and diff.
pub fn to_json(results: &[TopoResult], timings: bool) -> String {
    let mut out = String::from("{\n  \"experiment\": \"e13\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n  \"virtual_secs\": {},\n  \"topologies\": [\n",
        if timings { "full" } else { "check" },
        VIRTUAL.total_micros() / 1_000_000
    ));
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"gateways\": {},\n", r.gateways));
        out.push_str(&format!("      \"events\": {},\n", r.events));
        out.push_str(&format!(
            "      \"overflow_inserts\": {},\n",
            r.overflow_inserts
        ));
        out.push_str(&format!("      \"dumps_equal\": {}", r.dumps_equal));
        if timings {
            out.push_str(&format!(
                ",\n      \"heap\": {{\"sim_ms\": {:.3}, \"replay_ms\": {:.3}, \"replay_events_per_sec\": {:.0}}},\n",
                r.sim_ms[0], r.replay_ms[0], r.replay_eps[0]
            ));
            out.push_str(&format!(
                "      \"wheel\": {{\"sim_ms\": {:.3}, \"replay_ms\": {:.3}, \"replay_events_per_sec\": {:.0}}},\n",
                r.sim_ms[1], r.replay_ms[1], r.replay_eps[1]
            ));
            out.push_str(&format!("      \"replay_speedup\": {:.3}\n", r.speedup));
        } else {
            out.push('\n');
        }
        out.push_str(if i + 1 < results.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_ring_backends_agree_and_wheel_overflows() {
        // One small topology end to end: byte-equal dumps, a sane event
        // count, and far timers actually crossing the overflow map (so
        // the benchmark exercises the wheel's paging path, not just the
        // in-window fast path).
        let r = measure("ring-4", 4, &|kind, trace| build_ring(4, 11, kind, trace));
        assert!(r.dumps_equal, "heap and wheel dumps must be identical");
        assert!(r.events > 1_000, "convergence storm happened: {}", r.events);
        assert!(r.overflow_inserts > 0, "3 s DV timers cross windows");
        assert!(r.speedup.is_finite() && r.speedup > 0.0);
    }

    #[test]
    fn json_check_mode_is_deterministic_and_timing_free() {
        let a = measure("ring-3", 3, &|kind, trace| build_ring(3, 11, kind, trace));
        let b = measure("ring-3", 3, &|kind, trace| build_ring(3, 11, kind, trace));
        let ja = to_json(&[a], false);
        let jb = to_json(&[b], false);
        assert_eq!(ja, jb, "check-mode JSON replays bit-for-bit");
        assert!(!ja.contains("_ms"), "no wall-clock fields in check mode");
        assert!(ja.contains("\"mode\": \"check\""));
        assert!(ja.contains("\"dumps_equal\": true"));
    }

    #[test]
    fn mesh_builds_and_agrees() {
        let r = measure("mesh-3x3", 9, &|kind, trace| build_mesh(3, 23, kind, trace));
        assert!(r.dumps_equal);
        assert!(r.events > 1_000);
    }
}

