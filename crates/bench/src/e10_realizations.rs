//! E10 — Realizations: one architecture across three orders of magnitude
//! (paper, "Architecture and Implementation").
//!
//! **Claim.** "The architecture tried very hard not to constrain the
//! range of services which the Internet could be engineered to provide
//! ... realizations \[range\] from campus LANs to transcontinental paths
//! with satellite hops," with wildly different bandwidth-delay products.
//! The endpoint (TCP's window) must absorb that whole range — the
//! architecture gives it nothing else.
//!
//! **Experiment.** The same bulk TCP transfer runs over three
//! realizations — modern LAN, T1 terrestrial, T1 satellite — at several
//! receive-window sizes. Throughput should track
//! `min(link rate, window / RTT)`: the bandwidth-delay-product ceiling.

use crate::table::Table;
use catenet_core::app::{BulkSender, SinkServer};
use catenet_core::{Endpoint, Network, TcpConfig};
use catenet_sim::{Duration, LinkClass};

/// One (realization, window) measurement.
#[derive(Debug, Clone, Copy)]
pub struct RealizationReport {
    /// The trunk class.
    pub trunk: LinkClass,
    /// Receive window in bytes.
    pub window: usize,
    /// Measured goodput in bits/second.
    pub goodput_bps: f64,
    /// The window/RTT ceiling in bits/second.
    pub window_ceiling_bps: f64,
    /// Completed within the limit.
    pub completed: bool,
}

/// Access-link class of a realization: a modern LAN realization is
/// all-LAN; wide-area realizations hang classic Ethernets off the trunk.
fn access_class(trunk: LinkClass) -> LinkClass {
    match trunk {
        LinkClass::ModernLan => LinkClass::ModernLan,
        _ => LinkClass::EthernetLan,
    }
}

fn path_rtt(trunk: LinkClass) -> f64 {
    let access = access_class(trunk).params().propagation.secs_f64();
    let t = trunk.params().propagation.secs_f64();
    2.0 * (2.0 * access + t)
}

/// The path's bottleneck rate in bits/second.
pub fn path_rate(trunk: LinkClass) -> f64 {
    (trunk.params().bandwidth_bps.min(access_class(trunk).params().bandwidth_bps)) as f64
}

/// Run one transfer over one realization.
pub fn run(seed: u64, trunk: LinkClass, window: usize, transfer: usize) -> RealizationReport {
    let mut net = Network::new(seed);
    let h1 = net.add_host("h1");
    let g1 = net.add_gateway("g1");
    let g2 = net.add_gateway("g2");
    let h2 = net.add_host("h2");
    net.connect(h1, g1, access_class(trunk));
    net.connect(g1, g2, trunk);
    net.connect(g2, h2, access_class(trunk));
    net.converge_routing(Duration::from_secs(60));
    let start = net.now();
    let dst = net.node(h2).primary_addr();
    let config = TcpConfig {
        rx_capacity: window,
        tx_capacity: transfer.max(65_535),
        mss: 1460,
        delayed_ack: None,
        ..TcpConfig::default()
    };
    let sink = SinkServer::new(80, config.clone());
    net.attach_app(h2, Box::new(sink));
    let sender = BulkSender::new(
        Endpoint::new(dst, 80),
        transfer,
        config,
        start + Duration::from_millis(10),
    );
    let result = sender.result_handle();
    net.attach_app(h1, Box::new(sender));
    net.run_for(Duration::from_secs(600));
    let result = result.lock().unwrap();
    let goodput = result.goodput_bps(transfer).unwrap_or(0.0);
    RealizationReport {
        trunk,
        window,
        goodput_bps: goodput,
        window_ceiling_bps: window as f64 * 8.0 / path_rtt(trunk),
        completed: result.completed_at.is_some(),
    }
}

/// Render the paper table.
pub fn default_table(seeds: &[u64]) -> Table {
    let mut table = Table::new(
        "E10 — Realizations: TCP goodput vs receive window across 1988's range of networks (1 MB transfer)",
        &[
            "realization",
            "trunk rate",
            "RTT (ms)",
            "window",
            "goodput (kb/s)",
            "min(rate, win/RTT) (kb/s)",
        ],
    );
    let seed = seeds[0];
    for (trunk, label) in [
        (LinkClass::ModernLan, "modern LAN"),
        (LinkClass::T1Terrestrial, "T1 terrestrial"),
        (LinkClass::Satellite, "T1 satellite"),
    ] {
        for window in [4_096usize, 16_384, 65_535] {
            let transfer = match trunk {
                LinkClass::ModernLan => 4_000_000,
                _ => 1_000_000,
            };
            let report = run(seed, trunk, window, transfer);
            let rate = path_rate(trunk);
            let ceiling = rate.min(report.window_ceiling_bps);
            table.row(vec![
                label.into(),
                format!("{:.1} Mb/s", rate / 1e6),
                format!("{:.1}", path_rtt(trunk) * 1000.0),
                format!("{} kB", window / 1024),
                if report.completed {
                    format!("{:.0}", report.goodput_bps / 1000.0)
                } else {
                    "DNF".into()
                },
                format!("{:.0}", ceiling / 1000.0),
            ]);
        }
    }
    table.note(
        "Paper's claim: the same architecture must serve realizations whose \
         bandwidth-delay products differ by orders of magnitude, with the endpoint \
         window as the only adaptation mechanism. Expected shape: goodput tracks \
         min(link rate, window/RTT) — on the satellite path small windows starve the \
         pipe; on the LAN even 4 kB saturates it.",
    );
    table
}

/// Small configuration for criterion.
pub fn quick(seed: u64) -> RealizationReport {
    run(seed, LinkClass::T1Terrestrial, 16_384, 100_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satellite_throughput_window_limited() {
        let small = run(11, LinkClass::Satellite, 4_096, 200_000);
        let large = run(11, LinkClass::Satellite, 65_535, 200_000);
        assert!(small.completed && large.completed);
        assert!(
            large.goodput_bps > small.goodput_bps * 3.0,
            "large {} vs small {}",
            large.goodput_bps,
            small.goodput_bps
        );
        // Small window sits near its BDP ceiling (within 2×, given slow
        // start and delayed effects).
        assert!(
            small.goodput_bps < small.window_ceiling_bps * 1.2,
            "goodput {} vs ceiling {}",
            small.goodput_bps,
            small.window_ceiling_bps
        );
    }

    #[test]
    fn lan_saturates_with_any_window() {
        let report = run(11, LinkClass::ModernLan, 16_384, 1_000_000);
        assert!(report.completed);
        // Window/RTT for 16 kB over ~0.3 ms RTT is ≫ 100 Mb/s.
        assert!(
            report.goodput_bps > 5e7,
            "LAN goodput {} too low",
            report.goodput_bps
        );
    }

    #[test]
    fn terrestrial_between_the_extremes() {
        let report = run(11, LinkClass::T1Terrestrial, 65_535, 300_000);
        assert!(report.completed);
        // Should approach the T1 line rate.
        assert!(
            report.goodput_bps > 0.5 * 1_544_000.0,
            "goodput {}",
            report.goodput_bps
        );
    }
}
