//! Markdown table rendering for experiment output.

/// A rendered experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id and title, e.g. `"E1 — Survivability"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-text notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// A table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append one row. Panics if the arity differs from the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Render as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers));
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", dashes.join("-|-")));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        for note in &self.notes {
            out.push_str(&format!("\n> {note}\n"));
        }
        out
    }
}

impl core::fmt::Display for Table {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut table = Table::new("E0 — Smoke", &["metric", "value"]);
        table.row(vec!["throughput".into(), "42".into()]);
        table.note("all good");
        let md = table.to_markdown();
        assert!(md.contains("### E0 — Smoke"));
        assert!(md.contains("| metric     | value |"));
        assert!(md.contains("| throughput | 42    |"));
        assert!(md.contains("> all good"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut table = Table::new("t", &["a", "b"]);
        table.row(vec!["only-one".into()]);
    }
}
