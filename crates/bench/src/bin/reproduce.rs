//! Regenerate every experiment table in `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run --release --bin reproduce               # all experiments
//! cargo run --release --bin reproduce -- e1 e5      # a subset
//! cargo run --release --bin reproduce -- --fast     # fewer seeds
//! cargo run --release --bin reproduce -- e11 --soak 20   # randomized soak
//! cargo run --release --bin reproduce -- e13 --check     # timing-free JSON
//! cargo run --release --bin reproduce -- e17 --check --shards 4   # one K
//! ```

use catenet_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    // `--check` strips wall-clock fields from BENCH_e13.json so CI can
    // run twice and diff (it also implies the fast topology set).
    let check = args.iter().any(|a| a == "--check");
    let seeds: Vec<u64> = if fast {
        SEEDS[..2].to_vec()
    } else {
        SEEDS.to_vec()
    };
    // `--soak N` swaps the e11 battery table for N randomized runs.
    let soak: Option<usize> = args
        .windows(2)
        .find(|w| w[0] == "--soak")
        .and_then(|w| w[1].parse().ok());
    // `--shards N` pins e17 to a single shard count (CI runs K=1 and
    // K=4 separately and diffs the check-mode JSON across them).
    let shards: Option<usize> = args
        .windows(2)
        .find(|w| w[0] == "--shards")
        .and_then(|w| w[1].parse().ok());
    // `--partitioner` switches every e17 K>1 run to the
    // latency-aware-partitioner arm; CI diffs the check JSON against a
    // partitioner-off run (partition choice must be byte-neutral).
    let partitioner = args.iter().any(|a| a == "--partitioner");
    // `--full` selects the e17 scale tier (5,120 gateways, ~10⁵
    // flows); CI uploads its timing JSON as an artifact.
    let full = args.iter().any(|a| a == "--full");
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| a.parse::<usize>().is_err())
        .map(|a| a.to_lowercase())
        .collect();
    let want = |id: &str| selected.is_empty() || selected.iter().any(|s| s == id);

    println!("# catenet experiment reproduction");
    println!();
    println!(
        "Seeds: {:?}. Every number below is deterministic given the seed set.",
        seeds
    );
    println!();

    let run = |id: &str, name: &str, f: &dyn Fn(&[u64]) -> Table| {
        if want(id) {
            eprintln!("running {id} ({name})...");
            let start = std::time::Instant::now();
            let table = f(&seeds);
            eprintln!("  {id} done in {:.1}s", start.elapsed().as_secs_f64());
            println!("{table}");
        }
    };

    run("e1", "survivability", &|s| {
        e1_survivability::default_table(s)
    });
    run("e2", "types of service", &|s| {
        e2_type_of_service::default_table(s)
    });
    run("e3", "variety of networks", &|s| e3_variety::default_table(s));
    run("e4", "distributed management", &|s| {
        e4_distributed_mgmt::default_table(s)
    });
    if want("e5") {
        eprintln!("running e5 (cost effectiveness)...");
        println!("{}", e5_cost::overhead_table());
        println!("{}", e5_cost::arq_table(&seeds));
    }
    run("e6", "host attachment cost", &|s| {
        e6_host_cost::default_table(s)
    });
    run("e7", "accounting", &|s| e7_accounting::default_table(s));
    run("e8", "soft state", &|s| e8_soft_state::default_table(s));
    run("e9", "byte sequencing", &|s| {
        e9_byte_sequencing::default_table(s)
    });
    run("e10", "realizations", &|s| {
        e10_realizations::default_table(s)
    });
    if want("e11") {
        if let Some(runs) = soak {
            eprintln!("running e11 soak ({runs} randomized runs)...");
            let start = std::time::Instant::now();
            let table = e11_gauntlet::soak_table(runs, seeds[0]);
            eprintln!("  e11 soak done in {:.1}s", start.elapsed().as_secs_f64());
            println!("{table}");
        } else {
            run("e11", "survivability gauntlet", &|s| {
                e11_gauntlet::default_table(s)
            });
        }
    }
    run("e12", "per-heal reconvergence", &|s| {
        e12_reconvergence::default_table(s)
    });
    if want("e13") {
        eprintln!("running e13 (scheduler scale benchmark)...");
        let start = std::time::Instant::now();
        let results = e13_scale::run_battery(fast || check, SEEDS[0]);
        eprintln!("  e13 done in {:.1}s", start.elapsed().as_secs_f64());
        println!("{}", e13_scale::table(&results));
        let json = e13_scale::to_json(&results, !check);
        std::fs::write("BENCH_e13.json", &json).expect("write BENCH_e13.json");
        eprintln!("  wrote BENCH_e13.json");
    }
    run("e14", "route-guard pricing", &|s| {
        e14_routeguard::default_table(s)
    });
    if want("e15") {
        eprintln!("running e15 (forwarding fast-path benchmark)...");
        let start = std::time::Instant::now();
        let results = e15_fastpath::run_battery(fast || check, SEEDS[0]);
        eprintln!("  e15 done in {:.1}s", start.elapsed().as_secs_f64());
        println!("{}", e15_fastpath::table(&results));
        let json = e15_fastpath::to_json(&results, !check);
        std::fs::write("BENCH_e15.json", &json).expect("write BENCH_e15.json");
        eprintln!("  wrote BENCH_e15.json");
    }
    if want("e16") {
        eprintln!("running e16 (accountability: reconciliation, churn, integrity)...");
        let start = std::time::Instant::now();
        let results = e16_accountability::run_battery(fast || check, &seeds);
        eprintln!("  e16 done in {:.1}s", start.elapsed().as_secs_f64());
        println!("{}", e16_accountability::table(&results));
        let json = e16_accountability::to_json(&results, !check);
        std::fs::write("BENCH_e16.json", &json).expect("write BENCH_e16.json");
        eprintln!("  wrote BENCH_e16.json");
    }
    if want("e17") {
        let tier = if full {
            e17_parallel::Tier::Huge
        } else if fast || check {
            e17_parallel::Tier::Check
        } else {
            e17_parallel::Tier::Full
        };
        let counts: Vec<usize> = match shards {
            Some(k) => vec![k],
            // The scale tier defaults to the reference and the CI-core
            // count — K=8 on a 4-core runner doubles the wall clock for
            // no extra signal at 5,120 gateways.
            None if full => vec![1, 4],
            None => e17_parallel::SHARD_COUNTS.to_vec(),
        };
        eprintln!(
            "running e17 (sharded parallel execution) at K={counts:?} \
             tier={tier:?} partitioner={partitioner}..."
        );
        let start = std::time::Instant::now();
        let results = e17_parallel::run_battery_arms(tier, SEEDS[0], &counts, partitioner);
        eprintln!("  e17 done in {:.1}s", start.elapsed().as_secs_f64());
        println!("{}", e17_parallel::table(&results));
        assert!(
            results.all_equal,
            "e17: dumps diverged across shard counts/arms — a real ordering bug"
        );
        // The misaligned partitioner demo rides the standard full
        // battery only (the scale and check tiers have their own jobs).
        let misaligned = (tier == e17_parallel::Tier::Full).then(|| {
            eprintln!("running e17b (misaligned-ring partitioner demo)...");
            let demo = e17_parallel::run_misaligned(SEEDS[0]);
            println!("{}", e17_parallel::misaligned_table(&demo));
            assert!(demo.all_equal, "e17b: partition choice changed bytes");
            demo
        });
        let json = e17_parallel::to_json(&results, !check, misaligned.as_ref());
        std::fs::write("BENCH_e17.json", &json).expect("write BENCH_e17.json");
        eprintln!("  wrote BENCH_e17.json");
    }
    if want("ablations") || selected.is_empty() {
        eprintln!("running ablations A1–A4...");
        println!("{}", ablations::collapse_table(&seeds));
        println!("{}", ablations::count_to_infinity_table());
        println!("{}", ablations::nagle_table(&seeds));
        println!("{}", ablations::quench_table(&seeds));
    }
}
