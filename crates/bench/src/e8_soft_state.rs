//! E8 — Flows and soft state: the paper's proposal for the future
//! (paper §10, "Architecture and Implementation" / closing discussion).
//!
//! **Claim.** "A new building block ... the flow ... it would be
//! necessary for the gateways to have flow state ... but the state
//! information would not be critical ... 'soft state' ... could be lost
//! in a crash ... and reconstructed from the datagrams themselves." In
//! other words: gateways *may* hold per-flow state for resource
//! management without surrendering survivability, as long as the state
//! is derivable from the traffic.
//!
//! **Experiment.** Several CBR flows cross a gateway that maintains a
//! soft-state [`catenet_core::flow::FlowTable`] with rate estimates. We
//! crash and reboot the gateway and measure how long (and how many
//! packets) the table takes to (a) re-discover every flow and (b) bring
//! each rate estimate back within 10% of truth. The hard-state contrast
//! is E1's virtual-circuit table, which never recovers.

use crate::table::Table;
use catenet_core::app::{CbrSink, CbrSource};
use catenet_core::flow::FlowTable;
use catenet_core::{Endpoint, Network};
use catenet_sim::{Duration, Instant, LinkClass};

/// Reconvergence measurements after a gateway reboot.
#[derive(Debug, Clone, Copy)]
pub struct SoftStateReport {
    /// Concurrent flows through the gateway.
    pub flows: usize,
    /// Flows tracked before the crash.
    pub tracked_before: usize,
    /// Virtual time from reboot until every flow reappears in the table.
    pub rediscovery: Option<Duration>,
    /// Virtual time from reboot until every rate estimate is within 10%.
    pub rate_reconvergence: Option<Duration>,
}

/// Run `flows` CBR streams through a soft-state gateway, crash it at
/// t=10 s for `outage`, then measure table recovery.
pub fn run(seed: u64, flows: usize, outage: Duration) -> SoftStateReport {
    let mut net = Network::new(seed);
    let g = net.add_gateway("g");
    let mut sinks = Vec::new();
    let mut true_rates = Vec::new();
    // Each flow gets its own pair of hosts so ports and addresses differ.
    for i in 0..flows {
        let h_src = net.add_host(format!("src{i}"));
        let h_dst = net.add_host(format!("dst{i}"));
        net.connect(h_src, g, LinkClass::T1Terrestrial);
        net.connect(g, h_dst, LinkClass::T1Terrestrial);
        let dst_addr = net.node(h_dst).primary_addr();
        let port = 6000 + i as u16;
        let sink = CbrSink::new(port);
        net.attach_app(h_dst, Box::new(sink));
        sinks.push(h_dst);
        // Stagger intervals so flows have distinct true rates.
        let interval = Duration::from_millis(10 + 5 * i as u64);
        let size = 200usize;
        // IP datagram bytes/sec: (payload+28) / interval.
        true_rates.push((size + 28) as f64 / interval.secs_f64());
        let source = CbrSource::new(
            Endpoint::new(dst_addr, port),
            interval,
            size,
            Instant::from_millis(100),
            Instant::from_secs(600),
        );
        net.attach_app(h_src, Box::new(source));
    }
    net.node_mut(g).flows = Some(FlowTable::with_params(
        Duration::from_secs(30),
        Duration::from_secs(1),
    ));
    net.converge_routing(Duration::from_secs(90));

    // Warm up.
    net.run_for(Duration::from_secs(10));
    let tracked_before = net.node(g).flows.as_ref().expect("enabled").len();

    // Crash and reboot.
    net.crash_node(g);
    net.run_for(outage);
    net.restart_node(g);
    // Flow software restarts with an empty table.
    net.node_mut(g).flows = Some(FlowTable::with_params(
        Duration::from_secs(30),
        Duration::from_secs(1),
    ));
    // Routing must also re-converge before traffic resumes through g.
    let reboot_at = net.now();

    let mut rediscovery = None;
    let mut rate_reconvergence = None;
    let step = Duration::from_millis(250);
    for _ in 0..400 {
        net.run_for(step);
        let table = net.node(g).flows.as_ref().expect("enabled");
        let entries = table.iter_sorted();
        if rediscovery.is_none() && entries.len() >= tracked_before && tracked_before > 0 {
            rediscovery = Some(net.now().duration_since(reboot_at));
        }
        if rediscovery.is_some() && rate_reconvergence.is_none() {
            // Match each tracked flow's rate against its true rate by
            // destination port.
            let mut all_ok = entries.len() >= tracked_before;
            for (id, state) in &entries {
                let index = (id.dst_port as usize).wrapping_sub(6000);
                if let Some(&true_rate) = true_rates.get(index) {
                    if !state.rate_within(true_rate, 0.10) {
                        all_ok = false;
                        break;
                    }
                }
            }
            if all_ok {
                rate_reconvergence = Some(net.now().duration_since(reboot_at));
                break;
            }
        }
    }
    SoftStateReport {
        flows,
        tracked_before,
        rediscovery,
        rate_reconvergence,
    }
}

/// Render the paper table.
pub fn default_table(seeds: &[u64]) -> Table {
    let mut table = Table::new(
        "E8 — Soft state: flow-table recovery after gateway crash (5 s outage)",
        &[
            "flows",
            "tracked pre-crash",
            "rediscovery after reboot (s, mean)",
            "rate re-convergence ≤10% (s, mean)",
            "hard-state (VC) recovery",
        ],
    );
    for flows in [2usize, 4, 8] {
        let reports: Vec<SoftStateReport> = seeds
            .iter()
            .map(|&seed| run(seed, flows, Duration::from_secs(5)))
            .collect();
        let mean =
            |values: Vec<Option<Duration>>| -> String {
                let ok: Vec<f64> = values.iter().flatten().map(|d| d.secs_f64()).collect();
                if ok.len() < values.len() {
                    format!("{}/{} recovered", ok.len(), values.len())
                } else {
                    format!("{:.1}", ok.iter().sum::<f64>() / ok.len() as f64)
                }
            };
        table.row(vec![
            format!("{flows}"),
            format!(
                "{:.1}",
                reports.iter().map(|r| r.tracked_before).sum::<usize>() as f64
                    / reports.len() as f64
            ),
            mean(reports.iter().map(|r| r.rediscovery).collect()),
            mean(reports.iter().map(|r| r.rate_reconvergence).collect()),
            "never (see E1)".into(),
        ]);
    }
    table.note(
        "Paper's claim: per-flow gateway state is compatible with survivability iff it \
         is soft — 'lost in a crash and reconstructed from the datagrams themselves'. \
         Expected shape: rediscovery within a few packet inter-arrivals of routing \
         recovery; rate estimates within 10% a few seconds later; independent of flow \
         count. The hard-state alternative (E1's circuits) never recovers.",
    );
    table
}

/// Small configuration for criterion.
pub fn quick(seed: u64) -> SoftStateReport {
    run(seed, 2, Duration::from_secs(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flows_tracked_then_recovered() {
        let report = run(11, 3, Duration::from_secs(5));
        assert_eq!(report.tracked_before, 3, "all flows tracked pre-crash");
        let rediscovery = report.rediscovery.expect("table rebuilt");
        assert!(
            rediscovery < Duration::from_secs(30),
            "rebuilt from live traffic in {rediscovery}"
        );
        assert!(report.rate_reconvergence.is_some(), "rates re-converged");
    }
}
