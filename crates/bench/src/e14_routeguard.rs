//! E14 — Pricing the route guard: byzantine blast radius, guards off
//! vs on (paper §4's "the network is assumed hostile" taken at its
//! word for the *control* plane).
//!
//! Clark's gateways believe whatever their neighbors advertise — the
//! 1988 design has no admission control on routing state, and the paper
//! itself lists "resistance to malicious attack" among the goals the
//! architecture under-served. This experiment measures exactly what
//! that trust costs, and what the [`catenet_routing::RouteGuard`]
//! defense buys back.
//!
//! One gateway is compromised ([`ByzantineAttack::BlackholeVictim`]):
//! it advertises metric 0 — better than any honest route can be, since
//! a connected network costs 1 — for one victim host's LAN, and
//! silently eats every datagram that arrives for it. The **blast
//! radius** is the fraction of ordered host pairs whose forwarding path
//! fails while the lie is live: eaten at the liar, no route, or caught
//! in a loop. The walk is a deterministic forwarding-table traversal,
//! not a ping sweep, so the number is exact and byte-identical across
//! runs. After a fixed window the node is rehabilitated and the
//! convergence tracer times the network's recovery.
//!
//! Topologies: gateway rings (a host on every gateway, the liar
//! diametrically opposite the victim) and a 10×10 **wrapped** mesh — a
//! torus, because an unwrapped 10×10 grid has diameter 18 and RIP's
//! 15-hop horizon would censor the far corners even with everyone
//! honest. Guards-on runs use [`GuardPolicy::standard`] with the
//! topology radius set from the real diameter.
//!
//! Expected shape: guards off, every source whose lie-distance to the
//! liar is shorter than its honest distance to the victim is captured —
//! roughly half the topology. Guards on, the metric-0 advertisement is
//! sanitized away at the liar's direct neighbors and the blast radius
//! collapses to the one pair the guard cannot save: the liar's own
//! host, whose first hop *is* the compromised forwarding plane.

use catenet_core::{Network, NodeId};
use catenet_routing::{DvConfig, GuardPolicy};
use catenet_sim::{ByzantineAttack, Duration, FaultPlan, LinkClass};
use catenet_telemetry::Reconvergence;

use crate::table::Table;

/// Ring sizes exercised (odd, so "opposite" is unambiguous enough).
pub const RING_SIZES: [usize; 2] = [5, 7];
/// Wrapped-mesh side length.
pub const MESH_SIDE: usize = 10;
/// How long the compromise lasts before rehabilitation.
const COMPROMISE_WINDOW: Duration = Duration::from_secs(40);
/// When, after convergence, the compromise begins.
const LEAD_IN: Duration = Duration::from_secs(5);
/// Post-rehabilitation observation window (settle + quiescence proof).
const RECOVERY_WINDOW: Duration = Duration::from_secs(60);
/// Forwarding-walk hop budget; exceeding it counts as a loop.
const WALK_HOP_LIMIT: usize = 64;

/// One topology under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// A gateway ring with a host on every gateway.
    Ring(usize),
    /// A wrapped (toroidal) mesh of `MESH_SIDE`² gateways with hosts at
    /// six spread-out gateways, the liar's included.
    WrappedMesh,
}

impl Topology {
    /// All topologies in table order.
    pub fn all() -> Vec<Topology> {
        let mut tops: Vec<Topology> = RING_SIZES.iter().map(|&n| Topology::Ring(n)).collect();
        tops.push(Topology::WrappedMesh);
        tops
    }

    /// Display name.
    pub fn name(&self) -> String {
        match self {
            Topology::Ring(n) => format!("ring-{n}"),
            Topology::WrappedMesh => format!("mesh-{MESH_SIDE}x{MESH_SIDE}-wrapped"),
        }
    }

    /// A radius bound for the guard: the largest metric an honest
    /// advertisement can carry here, plus one hop of slack.
    fn radius(&self) -> u8 {
        match self {
            // Farthest gateway is n/2 hops; its LAN costs one more.
            Topology::Ring(n) => (n / 2 + 2) as u8,
            // Torus eccentricity is side/2 + side/2 = 10; LAN +1.
            Topology::WrappedMesh => (MESH_SIDE + 2) as u8,
        }
    }
}

/// How one ordered host pair fared in the forwarding walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PairOutcome {
    Delivered,
    /// Eaten by the compromised node's black-hole forwarding plane.
    Eaten,
    NoRoute,
    Loop,
}

/// Measurements from one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blast {
    /// Ordered host pairs whose walk failed while the lie was live.
    pub failed_pairs: usize,
    /// Total ordered host pairs.
    pub total_pairs: usize,
    /// Hosts in the topology (`total_pairs == hosts * (hosts - 1)`).
    pub hosts: usize,
    /// The convergence tracer's recovery measurements (one expected:
    /// compromise opens the window, rehabilitation heals it).
    pub reconvergences: Vec<Reconvergence>,
    /// Guard verdicts other than plain acceptance, network-wide
    /// (zero when guards are off — nothing is ever even counted).
    pub guard_interventions: u64,
}

impl Blast {
    /// Failed fraction as a percentage string.
    pub fn fraction(&self) -> String {
        format!(
            "{:.1}%",
            100.0 * self.failed_pairs as f64 / self.total_pairs.max(1) as f64
        )
    }
}

struct Built {
    net: Network,
    hosts: Vec<NodeId>,
    liar: NodeId,
    victim_gateway_link: usize,
}

fn build(topology: Topology, seed: u64) -> Built {
    match topology {
        Topology::Ring(n) => {
            let mut net = Network::new(seed);
            let gs: Vec<NodeId> = (0..n).map(|i| net.add_gateway(format!("g{i}"))).collect();
            for &g in &gs {
                net.node_mut(g).set_dv_config(DvConfig::fast());
            }
            for i in 0..n {
                net.connect(gs[i], gs[(i + 1) % n], LinkClass::T1Terrestrial);
            }
            let mut hosts = Vec::new();
            let mut victim_gateway_link = 0;
            let victim_gw = n / 2;
            for (i, &g) in gs.iter().enumerate() {
                let h = net.add_host(format!("h{i}"));
                let link = net.connect(g, h, LinkClass::EthernetLan);
                if i == victim_gw {
                    victim_gateway_link = link;
                }
                hosts.push(h);
            }
            Built {
                net,
                liar: gs[0],
                hosts,
                victim_gateway_link,
            }
        }
        Topology::WrappedMesh => {
            let side = MESH_SIDE;
            let mut net = Network::new(seed);
            let gs: Vec<NodeId> = (0..side * side)
                .map(|i| net.add_gateway(format!("g{}-{}", i / side, i % side)))
                .collect();
            for &g in &gs {
                net.node_mut(g).set_dv_config(DvConfig::fast());
            }
            let at = |r: usize, c: usize| gs[r * side + c];
            for r in 0..side {
                for c in 0..side {
                    net.connect(at(r, c), at(r, (c + 1) % side), LinkClass::T1Terrestrial);
                    net.connect(at(r, c), at((r + 1) % side, c), LinkClass::T1Terrestrial);
                }
            }
            // Victim at one corner, liar antipodal on the torus, other
            // hosts spread so honest and lying distances differ.
            let placements = [(0usize, 0usize), (5, 5), (2, 7), (7, 2), (0, 5), (5, 0)];
            let mut hosts = Vec::new();
            let mut victim_gateway_link = 0;
            for (i, &(r, c)) in placements.iter().enumerate() {
                let h = net.add_host(format!("h{r}-{c}"));
                let link = net.connect(at(r, c), h, LinkClass::EthernetLan);
                if i == 0 {
                    victim_gateway_link = link;
                }
                hosts.push(h);
            }
            Built {
                net,
                liar: at(5, 5),
                hosts,
                victim_gateway_link,
            }
        }
    }
}

/// Deterministic forwarding walk for one ordered pair: follow each
/// node's current table from `src` toward `dst`'s address.
fn walk(net: &Network, src: NodeId, dst_host: NodeId) -> PairOutcome {
    let dst = net.node(dst_host).primary_addr();
    let mut cur = src;
    for _ in 0..WALK_HOP_LIMIT {
        let node = net.node(cur);
        if node.owns_addr(dst) {
            return PairOutcome::Delivered;
        }
        if node.blackhole_prefixes.iter().any(|p| p.contains(dst)) {
            return PairOutcome::Eaten;
        }
        let Some((_iface, via)) = node.route(dst) else {
            return PairOutcome::NoRoute;
        };
        // The next hop (or the destination itself, when `via == dst` on
        // the final LAN) is whichever node owns the next-hop address.
        let Some(next) = (0..net.node_count()).find(|&id| net.node(id).owns_addr(via)) else {
            return PairOutcome::NoRoute;
        };
        cur = next;
    }
    PairOutcome::Loop
}

/// Run one topology × guard setting × seed; returns the measurements.
pub fn run(topology: Topology, guard: bool, seed: u64) -> Blast {
    let Built {
        mut net,
        hosts,
        liar,
        victim_gateway_link,
    } = build(topology, seed);
    net.converge_routing(Duration::from_secs(120));
    if guard {
        // Armed on the *converged* network: admission control defends a
        // running control plane. During a cold boot every gateway floods
        // triggered updates, and on a 100-gateway torus that honest storm
        // exceeds any rate limit tight enough to be worth having — the
        // provisioning gap is recorded as an open item in ROADMAP.md.
        net.set_guard_policy(GuardPolicy {
            topology_radius: Some(topology.radius()),
            ..GuardPolicy::standard()
        });
    }

    // The lie targets the victim host's LAN — the auto-assigned subnet
    // of the victim's access link.
    let lan = net.link_subnet(victim_gateway_link);
    let start = net.now();
    let mut plan = FaultPlan::new();
    plan.compromise_window(
        liar,
        ByzantineAttack::BlackholeVictim {
            addr: lan.address().0,
            prefix_len: lan.prefix_len(),
        },
        start + LEAD_IN,
        COMPROMISE_WINDOW,
    );
    net.attach_fault_plan(plan);

    // Mid-window: the lie (or its rejection) has settled — fast-config
    // triggered updates cross any of these topologies in a few seconds.
    net.run_for(LEAD_IN + COMPROMISE_WINDOW / 2);
    let mut failed_pairs = 0;
    let mut total_pairs = 0;
    for &src in &hosts {
        for &dst in &hosts {
            if src == dst {
                continue;
            }
            total_pairs += 1;
            if walk(&net, src, dst) != PairOutcome::Delivered {
                failed_pairs += 1;
            }
        }
    }

    // Through rehabilitation and the recovery window.
    net.run_for(COMPROMISE_WINDOW / 2 + RECOVERY_WINDOW);
    let reconvergences = net.telemetry().convergence.reconvergences(net.now());
    let registry = &net.telemetry().registry;
    let guard_interventions = registry.total("guard_sanitized")
        + registry.total("guard_damped")
        + registry.total("guard_quarantined");
    Blast {
        failed_pairs,
        total_pairs,
        hosts: hosts.len(),
        reconvergences,
        guard_interventions,
    }
}

/// Run the full matrix over the seed set and render the table.
pub fn default_table(seeds: &[u64]) -> Table {
    let mut table = Table::new(
        format!(
            "E14 — Route-guard pricing: one compromised gateway advertises a \
             metric-0 black hole for a victim LAN over a {COMPROMISE_WINDOW} window; \
             blast radius = ordered host pairs whose forwarding walk fails \
             mid-window, guards off vs on"
        ),
        &[
            "topology",
            "hosts",
            "guard",
            "failed pairs",
            "blast radius",
            "guard interventions",
            "median recovery (s)",
            "settled",
        ],
    );
    for topology in Topology::all() {
        for guard in [false, true] {
            let mut failed = 0;
            let mut total = 0;
            let mut interventions = 0;
            let mut recs: Vec<Reconvergence> = Vec::new();
            let mut hosts = 0;
            for &seed in seeds {
                let blast = run(topology, guard, seed);
                failed += blast.failed_pairs;
                total += blast.total_pairs;
                interventions += blast.guard_interventions;
                hosts = blast.hosts;
                recs.extend(blast.reconvergences);
            }
            let mut tooks: Vec<u64> = recs.iter().map(|r| r.took.total_micros()).collect();
            tooks.sort_unstable();
            let median = tooks
                .get(tooks.len() / 2)
                .map(|&us| format!("{:.1}", us as f64 / 1e6))
                .unwrap_or_else(|| "—".into());
            let settled = recs.iter().filter(|r| r.settled).count();
            table.row(vec![
                topology.name(),
                format!("{hosts}"),
                if guard { "on" } else { "off" }.into(),
                format!("{failed}/{total}"),
                format!("{:.1}%", 100.0 * failed as f64 / total.max(1) as f64),
                format!("{interventions}"),
                median,
                format!("{settled}/{}", recs.len()),
            ]);
        }
    }
    table.note(
        "Guards off: every source whose lie-distance to the liar undercuts its \
         honest distance to the victim is captured — the 1988 trusting control \
         plane lets one metric-0 advertisement black-hole a large fraction of \
         the network. Guards on (per-entry sanitization, rate limit, flap \
         damping, radius clamp): the lie dies at the liar's direct neighbors \
         and only the liar's own host — whose first hop is the compromised \
         forwarding plane itself — still loses traffic. Recovery is timed from \
         rehabilitation to table quiescence; guarded runs recover near-instantly \
         because their tables never absorbed the lie.",
    );
    table.note(
        "The mesh is wrapped into a torus: an unwrapped 10×10 grid has diameter \
         18, past RIP's 15-hop horizon, which would censor far-corner pairs even \
         with every gateway honest. The residual guards-on blast radius is the \
         documented limit of admission control without cryptographic attestation.",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_strictly_shrink_the_blast_radius_on_rings() {
        for &n in &RING_SIZES {
            let off = run(Topology::Ring(n), false, 11);
            let on = run(Topology::Ring(n), true, 11);
            assert!(
                off.failed_pairs > on.failed_pairs,
                "ring-{n}: off {}/{} must strictly exceed on {}/{}",
                off.failed_pairs,
                off.total_pairs,
                on.failed_pairs,
                on.total_pairs
            );
            assert!(
                on.failed_pairs <= 1,
                "ring-{n}: guards leave at most the liar's own host exposed"
            );
            assert_eq!(off.guard_interventions, 0, "guards off: nothing counted");
            assert!(on.guard_interventions > 0, "guards on: sanitization visible");
        }
    }

    #[test]
    fn recovery_is_measured_and_settles() {
        let off = run(Topology::Ring(5), false, 23);
        assert_eq!(off.reconvergences.len(), 1, "one compromise, one recovery");
        assert!(off.reconvergences[0].settled, "{:?}", off.reconvergences);
    }

    #[test]
    fn blast_measurements_replay_bit_for_bit() {
        let a = run(Topology::Ring(5), false, 37);
        let b = run(Topology::Ring(5), false, 37);
        assert_eq!(a, b);
        let ga = run(Topology::Ring(5), true, 37);
        let gb = run(Topology::Ring(5), true, 37);
        assert_eq!(ga, gb);
    }

    #[test]
    fn walk_hop_limit_brands_loops() {
        // Sanity on the walk itself: a converged honest ring delivers
        // every pair.
        let built = build(Topology::Ring(5), 41);
        let mut net = built.net;
        net.converge_routing(Duration::from_secs(120));
        for &src in &built.hosts {
            for &dst in &built.hosts {
                if src != dst {
                    assert_eq!(walk(&net, src, dst), PairOutcome::Delivered);
                }
            }
        }
    }
}
