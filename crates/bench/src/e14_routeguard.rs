//! E14 — Pricing the route guard and origin attestation: byzantine
//! blast radius across three defense arms (paper §4's "the network is
//! assumed hostile" taken at its word for the *control* plane).
//!
//! Clark's gateways believe whatever their neighbors advertise — the
//! 1988 design has no admission control on routing state, and the paper
//! itself lists "resistance to malicious attack" among the goals the
//! architecture under-served. This experiment measures what that trust
//! costs and what each layer of defense buys back:
//!
//! - **off** — the trusting 1988 reference.
//! - **guard** — [`GuardPolicy::boot_armed`]: per-entry sanitization,
//!   rate limiting, flap damping, radius clamp. Armed from **t = 0**
//!   (cold boot): a boot learning window absorbs the honest triggered-
//!   update storm of initial convergence, closing the provisioning gap
//!   earlier revisions of this experiment recorded as an open item.
//! - **guard+attest** — [`GuardPolicy::attested`] plus a distributed
//!   [`catenet_routing::OriginRegistry`]: every finite announcement for
//!   a registered prefix must carry a valid, fresh MAC from the
//!   prefix's owner.
//!
//! Three attacks price the arms:
//!
//! - **blackhole** ([`ByzantineAttack::BlackholeVictim`]) — metric 0
//!   for the victim LAN; wire-illegal, so plain sanitization kills it.
//! - **hijack** ([`ByzantineAttack::HijackPrefix`]) — metric *1* with
//!   the owner's attestation stripped; wire-legal, walks straight past
//!   the plain guard, dies at attestation verification.
//! - **hijack-attested** ([`ByzantineAttack::HijackAttested`]) — metric
//!   1 while relaying the genuine attestation the liar legitimately
//!   holds. The MAC verifies; the lie survives even the attested arm.
//!   This is the designed residual: origin attestation proves prefix
//!   *ownership*, not path or metric honesty (BGPsec's open problem).
//!
//! The **blast radius** is the fraction of ordered host pairs whose
//! forwarding path fails while the lie is live: eaten at the liar, no
//! route, or caught in a loop. The walk is a deterministic
//! forwarding-table traversal, not a ping sweep, so the number is exact
//! and byte-identical across runs. After a fixed window the node is
//! rehabilitated and the convergence tracer times the recovery. The
//! cold-boot convergence time is reported per arm — the price of
//! admission control measured where it is paid.
//!
//! Topologies: gateway rings (a host on every gateway, the liar
//! diametrically opposite the victim) and a 10×10 **wrapped** mesh — a
//! torus, because an unwrapped 10×10 grid has diameter 18 and RIP's
//! 15-hop horizon would censor the far corners even with everyone
//! honest. Guard policies are provisioned to the topology: radius from
//! the real diameter, rate limit and boot window scaled up on the torus
//! where a full table paginates into many more messages per round.

use catenet_core::{Network, NodeId};
use catenet_routing::{DvConfig, GuardPolicy};
use catenet_sim::{ByzantineAttack, Duration, FaultPlan, LinkClass};
use catenet_telemetry::Reconvergence;

use crate::table::Table;

/// Ring sizes exercised (odd, so "opposite" is unambiguous enough).
pub const RING_SIZES: [usize; 2] = [5, 7];
/// Wrapped-mesh side length.
pub const MESH_SIDE: usize = 10;
/// How long the compromise lasts before rehabilitation.
const COMPROMISE_WINDOW: Duration = Duration::from_secs(40);
/// When, after convergence, the compromise begins.
const LEAD_IN: Duration = Duration::from_secs(5);
/// Post-rehabilitation observation window (settle + quiescence proof).
const RECOVERY_WINDOW: Duration = Duration::from_secs(60);
/// Forwarding-walk hop budget; exceeding it counts as a loop.
const WALK_HOP_LIMIT: usize = 64;

/// One topology under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// A gateway ring with a host on every gateway.
    Ring(usize),
    /// A wrapped (toroidal) mesh of `MESH_SIDE`² gateways with hosts at
    /// six spread-out gateways, the liar's included.
    WrappedMesh,
}

impl Topology {
    /// All topologies in table order.
    pub fn all() -> Vec<Topology> {
        let mut tops: Vec<Topology> = RING_SIZES.iter().map(|&n| Topology::Ring(n)).collect();
        tops.push(Topology::WrappedMesh);
        tops
    }

    /// Display name.
    pub fn name(&self) -> String {
        match self {
            Topology::Ring(n) => format!("ring-{n}"),
            Topology::WrappedMesh => format!("mesh-{MESH_SIDE}x{MESH_SIDE}-wrapped"),
        }
    }

    /// A radius bound for the guard: the largest metric an honest
    /// advertisement can carry here, plus one hop of slack.
    fn radius(&self) -> u8 {
        match self {
            // Farthest gateway is n/2 hops; its LAN costs one more.
            Topology::Ring(n) => (n / 2 + 2) as u8,
            // Torus eccentricity is side/2 + side/2 = 10; LAN +1.
            Topology::WrappedMesh => (MESH_SIDE + 2) as u8,
        }
    }
}

/// The defense arm a run prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arm {
    /// No admission control — the trusting 1988 reference.
    Off,
    /// Cold-boot-armed route guard, no attestation.
    Guard,
    /// Cold-boot-armed route guard verifying origin attestations.
    GuardAttest,
}

impl Arm {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Arm::Off => "off",
            Arm::Guard => "guard",
            Arm::GuardAttest => "guard+attest",
        }
    }
}

/// The lie a run prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attack {
    /// Metric 0 for the victim LAN — wire-illegal.
    Blackhole,
    /// Metric 1 with the owner's attestation stripped — wire-legal.
    Hijack,
    /// Metric 1 relaying the genuine attestation — verifies everywhere.
    HijackAttested,
}

impl Attack {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Attack::Blackhole => "blackhole",
            Attack::Hijack => "hijack",
            Attack::HijackAttested => "hijack-attested",
        }
    }

    fn byzantine(&self, lan: catenet_wire::Ipv4Cidr) -> ByzantineAttack {
        let (addr, prefix_len) = (lan.address().0, lan.prefix_len());
        match self {
            Attack::Blackhole => ByzantineAttack::BlackholeVictim { addr, prefix_len },
            Attack::Hijack => ByzantineAttack::HijackPrefix { addr, prefix_len },
            Attack::HijackAttested => ByzantineAttack::HijackAttested { addr, prefix_len },
        }
    }
}

/// The guard policy for one topology × arm: the base preset with the
/// radius, rate limit and boot window provisioned to topology scale.
/// On the torus a full table paginates into ~9 messages per round (206
/// prefixes, 25 attested entries per page), so the ring-sized rate
/// limit would brand honest periodic traffic an attack; and 100
/// gateways take longer to converge than 5, so the boot learning
/// window is longer too.
fn policy_for(topology: Topology, arm: Arm) -> Option<GuardPolicy> {
    let base = match arm {
        Arm::Off => return None,
        Arm::Guard => GuardPolicy::boot_armed(),
        Arm::GuardAttest => GuardPolicy::attested(),
    };
    let (rate_limit, boot_window) = match topology {
        Topology::Ring(_) => (40, Duration::from_secs(30)),
        Topology::WrappedMesh => (80, Duration::from_secs(60)),
    };
    Some(GuardPolicy {
        topology_radius: Some(topology.radius()),
        rate_limit,
        boot_window,
        ..base
    })
}

/// How one ordered host pair fared in the forwarding walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PairOutcome {
    Delivered,
    /// Eaten by the compromised node's black-hole forwarding plane.
    Eaten,
    NoRoute,
    Loop,
}

/// Measurements from one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blast {
    /// Ordered host pairs whose walk failed while the lie was live.
    pub failed_pairs: usize,
    /// Total ordered host pairs.
    pub total_pairs: usize,
    /// Hosts in the topology (`total_pairs == hosts * (hosts - 1)`).
    pub hosts: usize,
    /// How long the cold boot took to converge — guards armed from
    /// t = 0, so this prices admission control where it is paid.
    pub cold_boot: Duration,
    /// The convergence tracer's recovery measurements (one expected:
    /// compromise opens the window, rehabilitation heals it).
    pub reconvergences: Vec<Reconvergence>,
    /// Guard verdicts other than plain acceptance, network-wide
    /// (zero when guards are off — nothing is ever even counted).
    pub guard_interventions: u64,
    /// Entries rejected by attestation verification, network-wide
    /// (zero unless the arm verifies).
    pub attest_rejections: u64,
}

impl Blast {
    /// Failed fraction as a percentage string.
    pub fn fraction(&self) -> String {
        format!(
            "{:.1}%",
            100.0 * self.failed_pairs as f64 / self.total_pairs.max(1) as f64
        )
    }
}

struct Built {
    net: Network,
    hosts: Vec<NodeId>,
    liar: NodeId,
    victim_gateway_link: usize,
}

/// Build one topology. `attested` distributes the origin-attestation
/// trust anchor **before** the first link is connected, so even the
/// build-time triggered announcements go out signed.
fn build(topology: Topology, seed: u64, attested: bool) -> Built {
    match topology {
        Topology::Ring(n) => {
            let mut net = Network::new(seed);
            let gs: Vec<NodeId> = (0..n).map(|i| net.add_gateway(format!("g{i}"))).collect();
            for &g in &gs {
                net.node_mut(g).set_dv_config(DvConfig::fast());
            }
            if attested {
                net.enable_attestation();
            }
            for i in 0..n {
                net.connect(gs[i], gs[(i + 1) % n], LinkClass::T1Terrestrial);
            }
            let mut hosts = Vec::new();
            let mut victim_gateway_link = 0;
            let victim_gw = n / 2;
            for (i, &g) in gs.iter().enumerate() {
                let h = net.add_host(format!("h{i}"));
                let link = net.connect(g, h, LinkClass::EthernetLan);
                if i == victim_gw {
                    victim_gateway_link = link;
                }
                hosts.push(h);
            }
            Built {
                net,
                liar: gs[0],
                hosts,
                victim_gateway_link,
            }
        }
        Topology::WrappedMesh => {
            let side = MESH_SIDE;
            let mut net = Network::new(seed);
            let gs: Vec<NodeId> = (0..side * side)
                .map(|i| net.add_gateway(format!("g{}-{}", i / side, i % side)))
                .collect();
            for &g in &gs {
                net.node_mut(g).set_dv_config(DvConfig::fast());
            }
            if attested {
                net.enable_attestation();
            }
            let at = |r: usize, c: usize| gs[r * side + c];
            for r in 0..side {
                for c in 0..side {
                    net.connect(at(r, c), at(r, (c + 1) % side), LinkClass::T1Terrestrial);
                    net.connect(at(r, c), at((r + 1) % side, c), LinkClass::T1Terrestrial);
                }
            }
            // Victim at one corner, liar antipodal on the torus, other
            // hosts placed so honest and lying distances *differ* —
            // (3,7) and (7,3) sit strictly closer to the liar, (0,5)
            // and (5,0) strictly closer to the victim. (Equidistant
            // placements would leave a metric-1 hijack unable to
            // capture anyone beyond the liar's own host, and the arms
            // would price identically by accident of geometry.)
            let placements = [(0usize, 0usize), (5, 5), (3, 7), (7, 3), (0, 5), (5, 0)];
            let mut hosts = Vec::new();
            let mut victim_gateway_link = 0;
            for (i, &(r, c)) in placements.iter().enumerate() {
                let h = net.add_host(format!("h{r}-{c}"));
                let link = net.connect(at(r, c), h, LinkClass::EthernetLan);
                if i == 0 {
                    victim_gateway_link = link;
                }
                hosts.push(h);
            }
            Built {
                net,
                liar: at(5, 5),
                hosts,
                victim_gateway_link,
            }
        }
    }
}

/// Deterministic forwarding walk for one ordered pair: follow each
/// node's current table from `src` toward `dst`'s address.
fn walk(net: &Network, src: NodeId, dst_host: NodeId) -> PairOutcome {
    let dst = net.node(dst_host).primary_addr();
    let mut cur = src;
    for _ in 0..WALK_HOP_LIMIT {
        let node = net.node(cur);
        if node.owns_addr(dst) {
            return PairOutcome::Delivered;
        }
        if node.blackhole_prefixes.iter().any(|p| p.contains(dst)) {
            return PairOutcome::Eaten;
        }
        let Some((_iface, via)) = node.route(dst) else {
            return PairOutcome::NoRoute;
        };
        // The next hop (or the destination itself, when `via == dst` on
        // the final LAN) is whichever node owns the next-hop address.
        let Some(next) = (0..net.node_count()).find(|&id| net.node(id).owns_addr(via)) else {
            return PairOutcome::NoRoute;
        };
        cur = next;
    }
    PairOutcome::Loop
}

/// Run one topology × arm × attack × seed; returns the measurements.
pub fn run(topology: Topology, arm: Arm, attack: Attack, seed: u64) -> Blast {
    let Built {
        mut net,
        hosts,
        liar,
        victim_gateway_link,
    } = build(topology, seed, arm == Arm::GuardAttest);
    // Defenses are configuration, so they are armed *before* the first
    // advertisement ever flows — a cold boot, not a retrofit onto a
    // converged network. The boot learning window inside the policy is
    // what makes this survivable; nothing here waits for convergence.
    if let Some(policy) = policy_for(topology, arm) {
        net.set_guard_policy(policy);
    }
    let cold_boot = net.converge_routing(Duration::from_secs(120));

    // The lie targets the victim host's LAN — the auto-assigned subnet
    // of the victim's access link.
    let lan = net.link_subnet(victim_gateway_link);
    let start = net.now();
    let mut plan = FaultPlan::new();
    plan.compromise_window(
        liar,
        attack.byzantine(lan),
        start + LEAD_IN,
        COMPROMISE_WINDOW,
    );
    net.attach_fault_plan(plan);

    // Mid-window: the lie (or its rejection) has settled — fast-config
    // triggered updates cross any of these topologies in a few seconds.
    net.run_for(LEAD_IN + COMPROMISE_WINDOW / 2);
    let mut failed_pairs = 0;
    let mut total_pairs = 0;
    for &src in &hosts {
        for &dst in &hosts {
            if src == dst {
                continue;
            }
            total_pairs += 1;
            if walk(&net, src, dst) != PairOutcome::Delivered {
                failed_pairs += 1;
            }
        }
    }

    // Through rehabilitation and the recovery window.
    net.run_for(COMPROMISE_WINDOW / 2 + RECOVERY_WINDOW);
    let reconvergences = net.telemetry().convergence.reconvergences(net.now());
    let registry = &net.telemetry().registry;
    let attest_rejections = registry.total("guard_attest_rejected");
    let guard_interventions = registry.total("guard_sanitized")
        + registry.total("guard_damped")
        + registry.total("guard_quarantined");
    Blast {
        failed_pairs,
        total_pairs,
        hosts: hosts.len(),
        cold_boot,
        reconvergences,
        guard_interventions,
        attest_rejections,
    }
}

/// The combinations the table prices. Blackhole runs under every arm
/// (the original E14 matrix, now cold-boot-armed); the wire-legal
/// hijack is priced guard vs guard+attest — against `off` it is simply
/// the blackhole row with a one-hop-worse lie; and the attested hijack
/// only means anything under the arm it is designed to survive.
pub fn combos() -> Vec<(Attack, Arm)> {
    vec![
        (Attack::Blackhole, Arm::Off),
        (Attack::Blackhole, Arm::Guard),
        (Attack::Blackhole, Arm::GuardAttest),
        (Attack::Hijack, Arm::Guard),
        (Attack::Hijack, Arm::GuardAttest),
        (Attack::HijackAttested, Arm::GuardAttest),
    ]
}

/// Run the full matrix over the seed set and render the table.
pub fn default_table(seeds: &[u64]) -> Table {
    let mut table = Table::new(
        format!(
            "E14 — Pricing admission control and origin attestation: one \
             compromised gateway lies about a victim LAN over a \
             {COMPROMISE_WINDOW} window; blast radius = ordered host pairs \
             whose forwarding walk fails mid-window. Guards are armed from \
             cold boot (t=0) in every defended arm"
        ),
        &[
            "topology",
            "hosts",
            "attack",
            "arm",
            "failed pairs",
            "blast radius",
            "interventions",
            "attest rejections",
            "cold boot (s)",
            "median recovery (s)",
            "settled",
        ],
    );
    for topology in Topology::all() {
        for (attack, arm) in combos() {
            let mut failed = 0;
            let mut total = 0;
            let mut interventions = 0;
            let mut rejections = 0;
            let mut recs: Vec<Reconvergence> = Vec::new();
            let mut hosts = 0;
            let mut boots: Vec<u64> = Vec::new();
            for &seed in seeds {
                let blast = run(topology, arm, attack, seed);
                failed += blast.failed_pairs;
                total += blast.total_pairs;
                interventions += blast.guard_interventions;
                rejections += blast.attest_rejections;
                hosts = blast.hosts;
                boots.push(blast.cold_boot.total_micros());
                recs.extend(blast.reconvergences);
            }
            boots.sort_unstable();
            let boot_median = format!("{:.1}", boots[boots.len() / 2] as f64 / 1e6);
            let mut tooks: Vec<u64> = recs.iter().map(|r| r.took.total_micros()).collect();
            tooks.sort_unstable();
            let median = tooks
                .get(tooks.len() / 2)
                .map(|&us| format!("{:.1}", us as f64 / 1e6))
                .unwrap_or_else(|| "—".into());
            let settled = recs.iter().filter(|r| r.settled).count();
            table.row(vec![
                topology.name(),
                format!("{hosts}"),
                attack.name().into(),
                arm.name().into(),
                format!("{failed}/{total}"),
                format!("{:.1}%", 100.0 * failed as f64 / total.max(1) as f64),
                format!("{interventions}"),
                format!("{rejections}"),
                boot_median,
                median,
                format!("{settled}/{}", recs.len()),
            ]);
        }
    }
    table.note(
        "Blackhole (metric 0, wire-illegal): off, every source whose \
         lie-distance to the liar undercuts its honest distance to the victim \
         is captured; either guard arm sanitizes the lie at the liar's direct \
         neighbors and only the liar's own host — whose first hop is the \
         compromised forwarding plane itself — still loses traffic. Hijack \
         (metric 1, wire-legal, attestation stripped): the plain guard \
         believes it — sanitization has nothing to object to — and every \
         closer-to-the-liar source is captured; the attested arm rejects the \
         proof-less claim and the blast radius collapses back to the liar's \
         own host. Hijack-attested (metric 1, genuine relayed proof): the MAC \
         verifies, the lie survives the attested arm — the designed residual. \
         Origin attestation proves who owns a prefix, not that the advertised \
         path is honest.",
    );
    table.note(
        "All defended arms are armed from t=0: the boot learning window \
         (rate limiting observed but not enforced, flap damping deferred, \
         sanitization and attestation always live) absorbs the honest \
         triggered-update storm of a cold start, so convergence costs within \
         a second of the unguarded runs and no honest neighbor is ever \
         quarantined. The mesh is wrapped into a torus: an unwrapped 10×10 \
         grid has diameter 18, past RIP's 15-hop horizon, which would censor \
         far-corner pairs even with every gateway honest.",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_strictly_shrink_the_blackhole_blast_radius_on_rings() {
        for &n in &RING_SIZES {
            let off = run(Topology::Ring(n), Arm::Off, Attack::Blackhole, 11);
            let on = run(Topology::Ring(n), Arm::Guard, Attack::Blackhole, 11);
            assert!(
                off.failed_pairs > on.failed_pairs,
                "ring-{n}: off {}/{} must strictly exceed guard {}/{}",
                off.failed_pairs,
                off.total_pairs,
                on.failed_pairs,
                on.total_pairs
            );
            assert!(
                on.failed_pairs <= 1,
                "ring-{n}: guards leave at most the liar's own host exposed"
            );
            assert_eq!(off.guard_interventions, 0, "guards off: nothing counted");
            assert!(on.guard_interventions > 0, "guards on: sanitization visible");
        }
    }

    #[test]
    fn attestation_strictly_shrinks_the_hijack_blast_radius_on_rings() {
        // Hand-computed captures: a metric-1 hijack captures every
        // gateway strictly closer to the liar than to the victim.
        // Ring-5 (liar g0, victim g2): g0's and g4's hosts → 2 pairs.
        // Ring-7 (liar g0, victim g3): g0's, g1's and g6's hosts → 3.
        for (&n, expect_guard) in RING_SIZES.iter().zip([2usize, 3]) {
            let guard = run(Topology::Ring(n), Arm::Guard, Attack::Hijack, 11);
            let attested = run(Topology::Ring(n), Arm::GuardAttest, Attack::Hijack, 11);
            assert_eq!(
                guard.failed_pairs, expect_guard,
                "ring-{n}: wire-legal hijack walks past the plain guard"
            );
            assert_eq!(
                attested.failed_pairs, 1,
                "ring-{n}: attestation strands the lie at the liar's own host"
            );
            assert!(attested.failed_pairs < guard.failed_pairs);
            assert_eq!(guard.attest_rejections, 0, "plain guard never verifies");
            assert!(
                attested.attest_rejections > 0,
                "rejections visible in telemetry"
            );
        }
    }

    #[test]
    fn attested_hijack_is_the_designed_residual() {
        // The genuine relayed proof verifies, so the attested arm fares
        // exactly as badly as the plain guard against the bare hijack.
        let residual = run(
            Topology::Ring(5),
            Arm::GuardAttest,
            Attack::HijackAttested,
            11,
        );
        let plain = run(Topology::Ring(5), Arm::Guard, Attack::Hijack, 11);
        assert_eq!(residual.failed_pairs, plain.failed_pairs);
        assert_eq!(
            residual.attest_rejections, 0,
            "nothing to reject: every MAC in the network verifies"
        );
    }

    #[test]
    fn cold_boot_arming_quarantines_no_honest_neighbor() {
        // The regression the boot window exists for: guards armed at
        // t=0 must survive the initial DV storm without branding any
        // honest neighbor an attacker. An honest run (no compromise
        // planned) must deliver every pair with zero quarantines.
        for &n in &RING_SIZES {
            for arm in [Arm::Guard, Arm::GuardAttest] {
                let mut built = build(Topology::Ring(n), 11, arm == Arm::GuardAttest);
                built
                    .net
                    .set_guard_policy(policy_for(Topology::Ring(n), arm).unwrap());
                built.net.converge_routing(Duration::from_secs(120));
                built.net.run_for(Duration::from_secs(30));
                assert_eq!(
                    built.net.telemetry().registry.total("guard_quarantined"),
                    0,
                    "ring-{n} {}: honest cold boot must not quarantine",
                    arm.name()
                );
                assert_eq!(
                    built.net.telemetry().registry.total("guard_attest_rejected"),
                    0,
                    "ring-{n} {}: honest proofs all verify",
                    arm.name()
                );
                for &src in &built.hosts {
                    for &dst in &built.hosts {
                        if src != dst {
                            assert_eq!(walk(&built.net, src, dst), PairOutcome::Delivered);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn recovery_is_measured_and_settles() {
        let off = run(Topology::Ring(5), Arm::Off, Attack::Blackhole, 23);
        assert_eq!(off.reconvergences.len(), 1, "one compromise, one recovery");
        assert!(off.reconvergences[0].settled, "{:?}", off.reconvergences);
    }

    #[test]
    fn blast_measurements_replay_bit_for_bit() {
        let a = run(Topology::Ring(5), Arm::Off, Attack::Blackhole, 37);
        let b = run(Topology::Ring(5), Arm::Off, Attack::Blackhole, 37);
        assert_eq!(a, b);
        let ga = run(Topology::Ring(5), Arm::GuardAttest, Attack::Hijack, 37);
        let gb = run(Topology::Ring(5), Arm::GuardAttest, Attack::Hijack, 37);
        assert_eq!(ga, gb);
    }

    #[test]
    fn walk_hop_limit_brands_loops() {
        // Sanity on the walk itself: a converged honest ring delivers
        // every pair.
        let built = build(Topology::Ring(5), 41, false);
        let mut net = built.net;
        net.converge_routing(Duration::from_secs(120));
        for &src in &built.hosts {
            for &dst in &built.hosts {
                if src != dst {
                    assert_eq!(walk(&net, src, dst), PairOutcome::Delivered);
                }
            }
        }
    }

    /// The torus is the expensive topology; this is the full
    /// strictly-lower assertion on it. ~100 gateways × three runs, so
    /// it is ignored by default and exercised by the E14 reproduction
    /// (and can be run explicitly with `--ignored`).
    #[test]
    #[ignore = "expensive: three full torus runs"]
    fn attestation_strictly_shrinks_the_hijack_blast_radius_on_the_torus() {
        let guard = run(Topology::WrappedMesh, Arm::Guard, Attack::Hijack, 11);
        let attested = run(Topology::WrappedMesh, Arm::GuardAttest, Attack::Hijack, 11);
        // Captures: the liar's own host plus (3,7) and (7,3), which sit
        // strictly closer to the liar at (5,5) than to the victim (0,0).
        assert_eq!(guard.failed_pairs, 3);
        assert_eq!(attested.failed_pairs, 1);
        let honest = run(Topology::WrappedMesh, Arm::GuardAttest, Attack::Blackhole, 11);
        assert!(
            honest.failed_pairs <= 1,
            "cold-boot-armed attested torus: blackhole dies at the neighbors"
        );
    }
}
