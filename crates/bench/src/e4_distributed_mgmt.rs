//! E4 — Distributed management of resources (paper §6, goal 4).
//!
//! **Claim.** "The Internet architecture ... must permit distributed
//! management ... gateways ... implemented and managed by different
//! \[organizations\] exchange routing tables, even though they do not
//! completely trust each other." The mechanism is a routing protocol
//! that crosses administrative boundaries under each side's export
//! policy, and the cost is convergence time and routing chatter.
//!
//! **Experiment.** Chained administrative regions of distance-vector
//! gateways. We measure (a) cold-start convergence time, (b)
//! reconvergence after a border-link failure, and (c) routing-message
//! overhead — all as the internetwork grows.

use crate::table::Table;
use catenet_core::realization::{multi_as, MultiAs};
use catenet_sim::{Duration, LinkClass};

/// One topology's measurements.
#[derive(Debug, Clone, Copy)]
pub struct ConvergenceReport {
    /// Total gateways in the internetwork.
    pub gateways: usize,
    /// Cold-start convergence time.
    pub cold_start: Duration,
    /// Reconvergence after a mid-path border failure.
    pub after_failure: Duration,
    /// Routing messages processed per gateway per minute (steady state).
    pub updates_per_gw_min: f64,
    /// End-to-end reachability verified after healing.
    pub healed: bool,
}

/// Build a `regions × size` internetwork, time its convergence, break a
/// border, time the reconvergence, then verify reachability.
///
/// With `triggered` false the protocol falls back to pure periodic
/// advertisement (the pre-RFC-1058 behavior): convergence is then paced
/// by the update interval × internetwork diameter — the ablation that
/// shows why triggered updates matter.
pub fn run(seed: u64, regions: usize, size: usize, triggered: bool) -> ConvergenceReport {
    let mut m: MultiAs = multi_as(seed, regions, size, LinkClass::T1Terrestrial);
    let gateways: Vec<_> = m.regions.iter().flatten().copied().collect();
    if !triggered {
        let mut config = catenet_routing::DvConfig::fast();
        config.triggered_updates = false;
        for &gw in &gateways {
            m.net.node_mut(gw).set_dv_config(config.clone());
        }
    }
    // multi_as() already converged the cold start; measure it again from
    // a full routing flush (equivalent to simultaneous reboot).
    for &gw in &gateways {
        m.net.crash_node(gw);
    }
    for &gw in &gateways {
        m.net.restart_node(gw);
        if !triggered {
            let mut config = catenet_routing::DvConfig::fast();
            config.triggered_updates = false;
            m.net.node_mut(gw).set_dv_config(config.clone());
        }
    }
    let cold_start = m.net.converge_routing(Duration::from_secs(600));

    // Steady-state chatter over one minute.
    let before: u64 = gateways
        .iter()
        .map(|&g| m.net.node(g).dv.as_ref().expect("gateway").updates_received)
        .sum();
    m.net.run_for(Duration::from_secs(60));
    let after: u64 = gateways
        .iter()
        .map(|&g| m.net.node(g).dv.as_ref().expect("gateway").updates_received)
        .sum();
    let updates_per_gw_min = (after - before) as f64 / gateways.len() as f64;

    // Break the middle border link and time reconvergence. (With chained
    // regions there is no alternate path, so "reconvergence" means every
    // gateway learning the far side is unreachable — the DV worst case,
    // bounded by counting-to-infinity protections.)
    let border = m.borders[m.borders.len() / 2];
    m.net.set_link_up(border, false);
    let after_failure = m.net.converge_routing(Duration::from_secs(600));
    // Heal it and verify end-to-end reachability returns.
    m.net.set_link_up(border, true);
    m.net.converge_routing(Duration::from_secs(600));
    let src = m.hosts[0];
    let dst_addr = m.net.node(*m.hosts.last().expect("hosts")).primary_addr();
    let now = m.net.now();
    m.net.node_mut(src).send_ping(dst_addr, 7, 1, 32, now);
    m.net.kick(src);
    m.net.run_for(Duration::from_secs(10));
    let healed = !m.net.node_mut(src).take_icmp_events().is_empty();

    ConvergenceReport {
        gateways: gateways.len(),
        cold_start,
        after_failure,
        updates_per_gw_min,
        healed,
    }
}

/// Render the paper table.
pub fn default_table(seeds: &[u64]) -> Table {
    let mut table = Table::new(
        "E4 — Distributed management: DV routing across chained administrative regions (T1 trunks, 3 s update interval)",
        &[
            "regions × gateways",
            "total gw",
            "updates",
            "cold-start converge (s)",
            "reconverge after border cut (s)",
            "updates/gw/min",
            "healed",
        ],
    );
    for (regions, size) in [(2usize, 2usize), (3, 2), (3, 4), (4, 4)] {
        for (mode, triggered) in [("periodic-only", false), ("triggered", true)] {
            let report = run(seeds[0], regions, size, triggered);
            table.row(vec![
                format!("{regions} × {size}"),
                format!("{}", report.gateways),
                mode.into(),
                format!("{:.1}", report.cold_start.secs_f64()),
                format!("{:.1}", report.after_failure.secs_f64()),
                format!("{:.1}", report.updates_per_gw_min),
                if report.healed { "yes".into() } else { "NO".into() },
            ]);
        }
    }
    table.note(
        "Paper's claim: routing across organizations is feasible with gateways \
         'exchanging routing tables' under local policy; the architecture pays in \
         convergence time. Expected shape: with periodic-only advertisement \
         convergence grows with internetwork diameter (≈ interval × diameter); \
         triggered updates flatten it to propagation time; reachability always heals.",
    );
    table
}

/// Small configuration for criterion.
pub fn quick(seed: u64) -> ConvergenceReport {
    run(seed, 2, 2, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_internetwork_converges_and_heals() {
        let report = run(11, 2, 2, true);
        assert!(report.healed);
        assert!(report.cold_start < Duration::from_secs(120));
        assert!(report.updates_per_gw_min > 0.0);
    }

    #[test]
    fn periodic_convergence_grows_with_diameter() {
        let small = run(11, 2, 2, false);
        let large = run(11, 4, 4, false);
        assert!(large.gateways > small.gateways);
        assert!(
            large.cold_start > small.cold_start,
            "large {:?} vs small {:?}",
            large.cold_start,
            small.cold_start
        );
        assert!(large.healed && small.healed);
    }

    #[test]
    fn triggered_updates_beat_periodic() {
        let periodic = run(11, 3, 4, false);
        let triggered = run(11, 3, 4, true);
        assert!(
            triggered.cold_start < periodic.cold_start,
            "triggered {:?} vs periodic {:?}",
            triggered.cold_start,
            periodic.cold_start
        );
    }
}
