//! E12 — Measured per-heal reconvergence (paper §3, the recovery half
//! of survivability).
//!
//! **Claim.** Surviving a failure is only half the promise; the other
//! half is *recovering* from it in bounded time. After a cut link comes
//! back, a partition heals, or a crashed gateway reboots, the routing
//! system must return to quiescence quickly — survivability is hollow
//! if recovery takes unboundedly long (the "mask transient failures"
//! language of §3 implies a bound on the transient).
//!
//! **Experiment.** Gateway rings of increasing size run one
//! disruption-then-heal cycle per fault type — link cut, partition,
//! gateway crash — and the telemetry subsystem's convergence tracer
//! pairs each heal with the instant every gateway's routing table went
//! quiescent (no version change for a full quiescence gap). Every heal
//! is checked against a [`ReconvergenceBound`]; a censored measurement
//! (the run ended before routing provably settled) also counts as a
//! violation, so slow convergence cannot hide behind a short window.
//!
//! The bound is derived from the DV configuration in use
//! ([`catenet_routing::DvConfig::fast`]): triggered updates propagate a
//! heal in a few 3 s periodic rounds, but routes killed by the
//! disruption can keep timing out (18 s) and being garbage-collected
//! (12 s) well into the post-heal window. 30 s covers the worst case
//! with margin; exceeding it means recovery regressed.

use crate::table::Table;
use catenet_core::{Network, ReconvergenceBound};
use catenet_sim::{Duration, FaultAction, FaultPlan, LinkClass, SchedulerKind, ShardKind};
use catenet_telemetry::Reconvergence;

/// The reconvergence bound every heal is checked against.
pub const BOUND: Duration = Duration::from_secs(30);

/// The fault types whose heals are measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// One ring link is cut, then brought back up.
    LinkCut,
    /// The first gateway (and its host) is partitioned off, then healed.
    Partition,
    /// A gateway crashes, then reboots (the reboot is the heal: the
    /// rebuilt node must be re-integrated into everyone's tables).
    Crash,
}

impl FaultKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::LinkCut => "link-cut",
            FaultKind::Partition => "partition",
            FaultKind::Crash => "crash",
        }
    }

    /// All fault types, in reporting order.
    pub fn all() -> [FaultKind; 3] {
        [FaultKind::LinkCut, FaultKind::Partition, FaultKind::Crash]
    }
}

/// The gateway-ring sizes measured.
pub const RING_SIZES: [usize; 3] = [3, 5, 7];

/// Run one disruption-then-heal cycle on a `gateways`-node ring and
/// return the tracer's per-heal measurements.
pub fn run(gateways: usize, fault: FaultKind, seed: u64) -> Vec<Reconvergence> {
    run_with(gateways, fault, seed, SchedulerKind::default()).0
}

/// [`run`] on an explicit scheduler backend, additionally returning the
/// full telemetry dumps (metrics, series, flight) so the differential
/// harness can compare heap against wheel byte for byte.
pub fn run_with(
    gateways: usize,
    fault: FaultKind,
    seed: u64,
    kind: SchedulerKind,
) -> (Vec<Reconvergence>, [String; 3]) {
    run_config(gateways, fault, seed, kind, ShardKind::Single)
}

/// [`run`] on an explicit shard mode — the shard-equivalence harness
/// compares the measurements and dumps across K ∈ {1, 2, 4, 8}.
pub fn run_with_shards(
    gateways: usize,
    fault: FaultKind,
    seed: u64,
    shard: ShardKind,
) -> (Vec<Reconvergence>, [String; 3]) {
    run_config(gateways, fault, seed, SchedulerKind::default(), shard)
}

fn run_config(
    gateways: usize,
    fault: FaultKind,
    seed: u64,
    kind: SchedulerKind,
    shard: ShardKind,
) -> (Vec<Reconvergence>, [String; 3]) {
    assert!(gateways >= 3, "a ring needs a backup path");
    let mut net = Network::with_config(seed, kind, shard);
    let h1 = net.add_host("h1");
    let gs: Vec<usize> = (0..gateways)
        .map(|i| net.add_gateway(format!("g{i}")))
        .collect();
    net.connect(h1, gs[0], LinkClass::EthernetLan);
    let mut ring_links = Vec::new();
    for i in 0..gateways {
        let next = (i + 1) % gateways;
        ring_links.push(net.connect(gs[i], gs[next], LinkClass::T1Terrestrial));
    }
    let h2 = net.add_host("h2");
    net.connect(gs[gateways / 2], h2, LinkClass::EthernetLan);
    net.converge_routing(Duration::from_secs(120));

    let start = net.now();
    let at = start + Duration::from_secs(5);
    let heal_after = Duration::from_secs(20);
    let mut plan = FaultPlan::new();
    match fault {
        FaultKind::LinkCut => {
            plan.push(at, FaultAction::LinkSet { link: ring_links[0], up: false });
            plan.push(at + heal_after, FaultAction::LinkSet { link: ring_links[0], up: true });
        }
        FaultKind::Partition => {
            plan.partition(vec![h1, gs[0]], at, heal_after);
        }
        FaultKind::Crash => {
            plan.push(at, FaultAction::NodeCrash { node: gs[1] });
            plan.push(at + heal_after, FaultAction::NodeRestart { node: gs[1] });
        }
    }
    net.attach_fault_plan(plan);
    // Post-heal window: bound + quiescence gap + slack, so a
    // bound-respecting heal always has room to *prove* it settled.
    net.run_for(Duration::from_secs(5) + heal_after + BOUND + Duration::from_secs(15));
    let recs = net.telemetry().convergence.reconvergences(net.now());
    let dumps = [net.metrics_dump(), net.series_dump(), net.flight_dump()];
    (recs, dumps)
}

/// Check one run's measurements against the bound. Every heal must be
/// both settled (quiescence proven inside the window) and within the
/// bound; anything else is a violation.
pub fn violations(recs: &[Reconvergence]) -> usize {
    let bound = ReconvergenceBound::new(BOUND);
    recs.iter()
        .filter(|r| !r.settled || bound.check(r.took).is_some())
        .count()
}

/// Run the full matrix over the seed set and render the table.
pub fn default_table(seeds: &[u64]) -> Table {
    let mut table = Table::new(
        format!(
            "E12 — Per-heal reconvergence: one disruption+heal cycle per fault type \
             on gateway rings, every heal checked against the {BOUND} bound \
             (settled = quiescence proven inside the run window)"
        ),
        &[
            "gateways",
            "fault",
            "heals",
            "settled",
            "median reconvergence (s)",
            "max (s)",
            "violations",
        ],
    );
    for &size in &RING_SIZES {
        for fault in FaultKind::all() {
            let mut all: Vec<Reconvergence> = Vec::new();
            let mut viol = 0;
            for &seed in seeds {
                let recs = run(size, fault, seed);
                viol += violations(&recs);
                all.extend(recs);
            }
            let mut tooks: Vec<u64> = all.iter().map(|r| r.took.total_micros()).collect();
            tooks.sort_unstable();
            let median = tooks
                .get(tooks.len() / 2)
                .map(|&us| format!("{:.1}", us as f64 / 1e6))
                .unwrap_or_else(|| "—".into());
            let max = tooks
                .last()
                .map(|&us| format!("{:.1}", us as f64 / 1e6))
                .unwrap_or_else(|| "—".into());
            let settled = all.iter().filter(|r| r.settled).count();
            table.row(vec![
                format!("{size}"),
                fault.name().into(),
                format!("{}", all.len()),
                format!("{settled}/{}", all.len()),
                median,
                max,
                format!("{viol}"),
            ]);
        }
    }
    table.note(
        "Expected shape: one measured heal per run (heals = seed count), every heal \
         settled, zero violations. Reconvergence grows with ring size — more \
         gateways, more tables to settle — but stays far inside the bound.",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_heal_is_measured_settled_and_bounded() {
        for &size in &RING_SIZES {
            for fault in FaultKind::all() {
                let recs = run(size, fault, 11);
                assert_eq!(recs.len(), 1, "{size}-ring {fault:?}: one heal, one row");
                assert!(
                    recs[0].settled,
                    "{size}-ring {fault:?}: quiescence proven ({recs:?})"
                );
                assert_eq!(
                    violations(&recs),
                    0,
                    "{size}-ring {fault:?}: within {BOUND} ({recs:?})"
                );
            }
        }
    }

    #[test]
    fn measurements_replay_bit_for_bit() {
        let a = run(5, FaultKind::Partition, 23);
        let b = run(5, FaultKind::Partition, 23);
        assert_eq!(a, b);
    }

    #[test]
    fn censored_or_slow_heals_count_as_violations() {
        use catenet_sim::Instant;
        let fast = Reconvergence {
            healed_at: Instant::from_secs(10),
            settled_at: Instant::from_secs(12),
            took: Duration::from_secs(2),
            settled: true,
        };
        let censored = Reconvergence { settled: false, ..fast };
        let slow = Reconvergence {
            took: BOUND + Duration::from_secs(1),
            ..fast
        };
        assert_eq!(violations(&[fast]), 0);
        assert_eq!(violations(&[censored]), 1);
        assert_eq!(violations(&[slow]), 1);
        assert_eq!(violations(&[fast, censored, slow]), 2);
    }
}
