//! E7 — Accountability, the goal served worst (paper §9, goal 7).
//!
//! **Claim.** "The Internet architecture contains few tools for
//! accounting for packet flows ... \[a gateway\] cannot tell a
//! retransmitted byte from a new one," so billing by carried datagrams
//! systematically overstates the service a customer usefully received —
//! and the error grows with exactly the conditions (loss, congestion)
//! the customer would least like to pay extra for.
//!
//! **Experiment.** A bulk TCP transfer crosses a dumbbell whose trunk
//! loss we sweep. The middle gateway keeps a [`catenet_core::accounting::Ledger`]
//! (carried bytes, as a billing gateway would see them); the receiving
//! application records goodput bytes (the truth). We report the
//! accounting error.

use crate::table::Table;
use catenet_core::accounting::Ledger;
use catenet_core::app::{BulkSender, SinkServer};
use catenet_core::iface::Framing;
use catenet_core::{Endpoint, Network, TcpConfig};
use catenet_sim::{Duration, LinkClass, LinkParams};
use catenet_wire::IpProtocol;
use std::sync::Arc;

/// One operating point's accounting comparison.
#[derive(Debug, Clone, Copy)]
pub struct AccountingReport {
    /// Trunk loss probability.
    pub loss: f64,
    /// Bytes the gateway's ledger attributes to the conversation
    /// (both directions, IP bytes).
    pub billed_bytes: u64,
    /// Application-level bytes usefully delivered.
    pub goodput_bytes: u64,
    /// Transfer completed.
    pub completed: bool,
}

impl AccountingReport {
    /// Billed ÷ useful — the overcharge factor.
    pub fn overcharge(&self) -> f64 {
        if self.goodput_bytes == 0 {
            return f64::INFINITY;
        }
        self.billed_bytes as f64 / self.goodput_bytes as f64
    }
}

/// Run one transfer at one loss rate.
pub fn run(seed: u64, loss: f64, transfer: usize) -> AccountingReport {
    let mut net = Network::new(seed);
    let h1 = net.add_host("h1");
    let g1 = net.add_gateway("g1");
    let g2 = net.add_gateway("g2");
    let h2 = net.add_host("h2");
    net.connect(h1, g1, LinkClass::EthernetLan);
    net.connect_with(
        g1,
        g2,
        LinkParams {
            loss,
            corruption: 0.0,
            ..LinkClass::T1Terrestrial.params()
        },
        Framing::RawIp,
    );
    net.connect(g2, h2, LinkClass::EthernetLan);
    // g1 is the billing gateway.
    net.node_mut(g1).ledger = Some(Ledger::new());
    net.converge_routing(Duration::from_secs(60));
    let start = net.now();

    let dst = net.node(h2).primary_addr();
    let src_addr = net.node(h1).primary_addr();
    let sink = SinkServer::new(80, TcpConfig::default());
    let received = Arc::clone(&sink.received);
    net.attach_app(h2, Box::new(sink));
    let sender = BulkSender::new(
        Endpoint::new(dst, 80),
        transfer,
        TcpConfig::default(),
        start + Duration::from_millis(50),
    );
    let result = sender.result_handle();
    net.attach_app(h1, Box::new(sender));
    net.run_for(Duration::from_secs(600));

    let billed = net
        .node(g1)
        .ledger
        .as_ref()
        .expect("ledger enabled")
        .conversation_bytes(src_addr, dst, IpProtocol::Tcp);
    let goodput_bytes = *received.lock().unwrap();
    let completed = result.lock().unwrap().completed_at.is_some();
    AccountingReport {
        loss,
        billed_bytes: billed,
        goodput_bytes,
        completed,
    }
}

/// Render the paper table.
pub fn default_table(seeds: &[u64]) -> Table {
    let mut table = Table::new(
        "E7 — Accountability: gateway-billed bytes vs application goodput (200 kB transfer)",
        &[
            "trunk loss",
            "billed (kB, mean)",
            "goodput (kB)",
            "overcharge factor",
            "completed",
        ],
    );
    for loss in [0.0, 0.01, 0.02, 0.05, 0.10] {
        let reports: Vec<AccountingReport> = seeds
            .iter()
            .map(|&seed| run(seed, loss, 200_000))
            .collect();
        let billed =
            reports.iter().map(|r| r.billed_bytes).sum::<u64>() as f64 / reports.len() as f64;
        let goodput =
            reports.iter().map(|r| r.goodput_bytes).sum::<u64>() as f64 / reports.len() as f64;
        let overcharge =
            reports.iter().map(|r| r.overcharge()).sum::<f64>() / reports.len() as f64;
        let completed = reports.iter().filter(|r| r.completed).count();
        table.row(vec![
            format!("{:.0}%", loss * 100.0),
            format!("{:.1}", billed / 1000.0),
            format!("{:.1}", goodput / 1000.0),
            format!("{overcharge:.3}×"),
            format!("{completed}/{}", seeds.len()),
        ]);
    }
    table.note(
        "Paper's claim: datagram accounting cannot distinguish retransmitted bytes from \
         new ones — 'a poor tool' for accountability. Expected shape: even at 0% loss \
         the factor exceeds 1 (headers, ACKs, handshake); it grows with loss as \
         end-to-end retransmissions are billed again.",
    );
    table
}

/// Small configuration for criterion.
pub fn quick(seed: u64) -> AccountingReport {
    run(seed, 0.02, 40_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_overcharge_is_headers_only() {
        let report = run(11, 0.0, 100_000);
        assert!(report.completed);
        assert_eq!(report.goodput_bytes, 100_000);
        // Headers + ACK stream: between 1.0× and 1.5×.
        let factor = report.overcharge();
        assert!(factor > 1.0 && factor < 1.5, "factor {factor}");
    }

    #[test]
    fn loss_inflates_the_bill() {
        let clean = run(11, 0.0, 100_000);
        let lossy = run(11, 0.05, 100_000);
        assert!(lossy.completed);
        assert!(
            lossy.overcharge() > clean.overcharge(),
            "lossy {} vs clean {}",
            lossy.overcharge(),
            clean.overcharge()
        );
    }
}
