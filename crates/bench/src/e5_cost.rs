//! E5 — Cost effectiveness: what the datagram architecture pays
//! (paper §7, goal 5).
//!
//! **Claims.** (a) "The headers of Internet packets are fairly large ...
//! for small packets this overhead is apparent." (b) "Lost packets are
//! not recovered at the network level \[but\] from one end of the path to
//! the other ... the retransmission consumes \[upstream\] capacity a
//! second time." The paper accepts both costs; this experiment prices
//! them.
//!
//! **Experiment.** (a) Header overhead as a function of payload size,
//! from the wire formats themselves. (b) Link transmissions per
//! usefully delivered packet for end-to-end vs hop-by-hop ARQ, sweeping
//! per-link loss and path length (via `baseline::linkarq`).

use crate::table::Table;
use catenet_core::baseline::linkarq;
use catenet_wire::{IPV4_HEADER_LEN, TCP_HEADER_LEN, UDP_HEADER_LEN};

/// Header overhead for a TCP segment carrying `payload` bytes.
pub fn tcp_overhead_fraction(payload: usize) -> f64 {
    let headers = IPV4_HEADER_LEN + TCP_HEADER_LEN;
    headers as f64 / (headers + payload) as f64
}

/// Header overhead for a UDP datagram carrying `payload` bytes.
pub fn udp_overhead_fraction(payload: usize) -> f64 {
    let headers = IPV4_HEADER_LEN + UDP_HEADER_LEN;
    headers as f64 / (headers + payload) as f64
}

/// The retransmission-strategy comparison at one operating point.
#[derive(Debug, Clone, Copy)]
pub struct ArqComparison {
    /// Hops on the path.
    pub hops: usize,
    /// Per-link loss probability.
    pub loss: f64,
    /// End-to-end: data transmissions per delivered packet.
    pub e2e_cost: f64,
    /// Hop-by-hop: data transmissions per delivered packet.
    pub hbh_cost: f64,
    /// End-to-end completion time for the batch.
    pub e2e_time: f64,
    /// Hop-by-hop completion time for the batch.
    pub hbh_time: f64,
}

/// Run both strategies at one operating point.
pub fn compare(hops: usize, loss: f64, packets: u64, seed: u64) -> ArqComparison {
    let e2e = linkarq::run_end_to_end(hops, loss, packets, 1000, seed);
    let hbh = linkarq::run_hop_by_hop(hops, loss, packets, 1000, seed ^ 0x5555);
    ArqComparison {
        hops,
        loss,
        e2e_cost: e2e.cost_per_packet(),
        hbh_cost: hbh.cost_per_packet(),
        e2e_time: e2e.finished_at.secs_f64(),
        hbh_time: hbh.finished_at.secs_f64(),
    }
}

/// Table (a): header overhead vs payload size.
pub fn overhead_table() -> Table {
    let mut table = Table::new(
        "E5a — Cost of headers: overhead fraction vs payload size",
        &["payload (B)", "TCP+IP overhead", "UDP+IP overhead"],
    );
    for payload in [1usize, 8, 64, 256, 536, 1024, 1460] {
        table.row(vec![
            format!("{payload}"),
            format!("{:.1}%", tcp_overhead_fraction(payload) * 100.0),
            format!("{:.1}%", udp_overhead_fraction(payload) * 100.0),
        ]);
    }
    table.note(
        "Paper's claim: 40 bytes of header is 'apparent' overhead for small packets — \
         a remote-login keystroke (1 byte) is ~97.6% header. Expected shape: overhead \
         falls hyperbolically with payload size.",
    );
    table
}

/// Table (b): retransmission strategy cost.
pub fn arq_table(seeds: &[u64]) -> Table {
    let mut table = Table::new(
        "E5b — Cost of end-to-end retransmission: link transmissions per delivered packet",
        &[
            "hops",
            "per-link loss",
            "end-to-end (paper)",
            "hop-by-hop (baseline)",
            "e2e/hbh ratio",
            "theory ratio",
        ],
    );
    for hops in [2usize, 4, 8] {
        for loss in [0.01, 0.05, 0.10, 0.20] {
            let mut e2e_sum = 0.0;
            let mut hbh_sum = 0.0;
            for &seed in seeds {
                let c = compare(hops, loss, 150, seed);
                e2e_sum += c.e2e_cost;
                hbh_sum += c.hbh_cost;
            }
            let e2e = e2e_sum / seeds.len() as f64;
            let hbh = hbh_sum / seeds.len() as f64;
            // Theory: hbh ≈ h/(1-p); e2e ≈ Σ_i (1-p)^{i-1} / (1-p)^h
            // (expected transmissions per attempt over success prob.).
            let p = loss;
            let attempts: f64 = (0..hops).map(|i| (1.0 - p).powi(i as i32)).sum();
            let theory_e2e = attempts / (1.0 - p).powi(hops as i32);
            let theory_hbh = hops as f64 / (1.0 - p);
            table.row(vec![
                format!("{hops}"),
                format!("{:.0}%", loss * 100.0),
                format!("{e2e:.2}"),
                format!("{hbh:.2}"),
                format!("{:.2}", e2e / hbh),
                format!("{:.2}", theory_e2e / theory_hbh),
            ]);
        }
    }
    table.note(
        "Paper's claim: end-to-end recovery re-crosses every upstream link, so its cost \
         grows like (1-p)^-h against hop-by-hop's (1-p)^-1. The architecture accepts \
         this because loss 'is not the common case' — the ratio column shows exactly \
         when that bet stops paying (long lossy paths). Expected shape: ratio ≈ 1 at \
         1% loss, diverging as loss × hops grows; measured ratios track theory.",
    );
    table
}

/// Small configuration for criterion.
pub fn quick(seed: u64) -> ArqComparison {
    compare(4, 0.05, 50, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_shapes() {
        assert!(tcp_overhead_fraction(1) > 0.97);
        assert!(tcp_overhead_fraction(1460) < 0.03);
        assert!(udp_overhead_fraction(64) < tcp_overhead_fraction(64));
        // Monotone decreasing.
        assert!(tcp_overhead_fraction(8) > tcp_overhead_fraction(64));
    }

    #[test]
    fn e2e_never_cheaper_and_diverges_with_loss() {
        let mild = compare(4, 0.01, 150, 11);
        assert!(mild.e2e_cost >= mild.hbh_cost * 0.95, "{mild:?}");
        assert!(mild.e2e_cost / mild.hbh_cost < 1.3, "mild loss: near parity");
        let harsh = compare(8, 0.20, 150, 11);
        assert!(
            harsh.e2e_cost / harsh.hbh_cost > 1.5,
            "harsh: e2e {} vs hbh {}",
            harsh.e2e_cost,
            harsh.hbh_cost
        );
    }

    #[test]
    fn lossless_parity() {
        let c = compare(4, 0.0, 50, 1);
        assert!((c.e2e_cost - 4.0).abs() < 1e-9);
        assert!((c.hbh_cost - 4.0).abs() < 1e-9);
    }
}
