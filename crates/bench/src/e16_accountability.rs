//! E16 — The accountability subsystem, priced (ROADMAP "goal 7, grown
//! up"; paper §9–§10).
//!
//! E7 established the *error* of datagram accounting; E8 established
//! that soft flow state *survives* a crash. This experiment prices the
//! full subsystem built on those two results — sharded flow tables,
//! epoch-stamped ledgers, cross-boundary usage reports, and the opt-in
//! CRC32C integrity option — along three axes:
//!
//! 1. **Crash-storm reconciliation.** A bulk transfer crosses a
//!    three-gateway chain while a crash storm repeatedly kills and
//!    reboots the middle gateway. Ledgers flush every 2 s into the
//!    administration's collector; crash instants forfeit the unflushed
//!    tail into an explicit bucket. For every gateway and every seed the
//!    reconciled payload must satisfy the retransmission-inflation
//!    bound `goodput ≤ reconciled ≤ sender-transmitted`, and in a clean
//!    (no-fault, lossless) arm every gateway's books must *agree with
//!    each other to the byte* and sit within one segment of goodput —
//!    the only inflation a lossless network permits is the ARP warm-up
//!    drop on an edge LAN, retransmitted end to end.
//! 2. **Flow churn at 10⁵.** The sharded table absorbs 100 000 distinct
//!    flows plus follow-on traffic, reporting shard occupancy spread,
//!    LRU evictions under a deliberately undersized geometry (bounded
//!    memory is enforced, not hoped for), and per-packet observe cost.
//!    An accounting-on vs accounting-off arm of an E15-style ring then
//!    prices the fast-path overhead end to end.
//! 3. **Corruption sweep.** The three corruption classes the Internet
//!    checksum provably accepts (`wire/tests/checksum_escape.rs`) are
//!    replayed against the CRC32C payload option: the checksum-only arm
//!    misses all of them, the +crc32c arm catches all of them, and the
//!    cost is 8 header bytes per data segment.
//!
//! Results render as a table and `BENCH_e16.json`; in `--check` mode
//! wall-clock fields are omitted and CI diffs two runs.

use crate::table::Table;
use catenet_core::app::{BulkSender, SinkServer};
use catenet_core::flow::{FlowId, FlowTable};
use catenet_core::iface::Framing;
use catenet_core::{Endpoint, Network, NodeId, TcpConfig};
use catenet_sim::{Duration, FaultAction, FaultPlan, Instant, LinkClass, LinkParams, Rng, ShardKind};
use catenet_wire::{checksum, crc32c, IpProtocol, Ipv4Address};
use std::sync::Arc;

/// Ledger flush cadence in the reconciliation runs.
pub const FLUSH_PERIOD: Duration = Duration::from_secs(2);
/// Bytes per bulk transfer in the reconciliation runs.
const TRANSFER: usize = 200_000;
/// Crash-storm shape: crashes of the middle gateway in the window.
const STORM_CRASHES: usize = 3;
/// Concurrent flows the churn benchmark drives through one table.
pub const CHURN_FLOWS: usize = 100_000;

// ---------------------------------------------------------- part 1

/// One seed's crash-storm reconciliation outcome. Every field is
/// integral or boolean, so two runs compare with `==` — the
/// shard-equivalence harness asserts a K-lane run reconciles to the
/// byte-identical books the single-lane reference produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconcileRun {
    /// Seed.
    pub seed: u64,
    /// Crash storm applied (false = the clean control arm).
    pub storm: bool,
    /// Transfer completed.
    pub completed: bool,
    /// Payload bytes the application usefully received.
    pub goodput: u64,
    /// Payload bytes the sender transmitted, retransmissions included.
    pub sent: u64,
    /// Reconciled conversation payload per gateway (g1, g2, g3).
    pub reconciled: [u64; 3],
    /// `goodput ≤ reconciled ≤ sent` held at every gateway.
    pub bounds_hold: bool,
    /// Crash epochs the middle gateway's ledger went through.
    pub mid_epochs: u64,
    /// Periodic reports the collector received.
    pub reports: u64,
    /// Crash-forfeited tails the collector captured.
    pub forfeited: u64,
    /// Fault actions the driver applied.
    pub faults: u64,
}

/// Run one reconciliation arm: h1—g1—g2—g3—h2 chain, bulk transfer,
/// optional crash storm on g2, ledgers flushing every [`FLUSH_PERIOD`].
pub fn run_reconcile(seed: u64, storm: bool) -> ReconcileRun {
    run_reconcile_config(seed, storm, ShardKind::Single, false).0
}

/// [`run_reconcile`] on an explicit shard mode, additionally returning
/// the telemetry dumps (metrics, series, flight) so the
/// shard-equivalence harness can compare K-lane books byte for byte.
pub fn run_reconcile_shards(seed: u64, storm: bool, shard: ShardKind) -> (ReconcileRun, [String; 3]) {
    run_reconcile_config(seed, storm, shard, false)
}

/// The barrier-instant regression arm: instead of the seeded storm, a
/// single crash of the middle gateway is scheduled to land *exactly* on
/// a ledger-flush instant (a multiple of [`FLUSH_PERIOD`], which is
/// also a coordinator barrier in sharded execution). Faults must apply
/// before flushes at the same instant — a crash at T forfeits the tail
/// the flush at T would have reported — and that ordering is exactly
/// what sharded windows are most likely to break.
pub fn run_reconcile_barrier_crash(seed: u64, shard: ShardKind) -> (ReconcileRun, [String; 3]) {
    run_reconcile_config(seed, true, shard, true)
}

fn run_reconcile_config(
    seed: u64,
    storm: bool,
    shard: ShardKind,
    crash_on_flush: bool,
) -> (ReconcileRun, [String; 3]) {
    let mut net = Network::with_shards(seed, shard);
    let h1 = net.add_host("h1");
    let g1 = net.add_gateway("g1");
    let g2 = net.add_gateway("g2");
    let g3 = net.add_gateway("g3");
    let h2 = net.add_host("h2");
    net.connect(h1, g1, LinkClass::EthernetLan);
    for (a, b) in [(g1, g2), (g2, g3)] {
        net.connect_with(
            a,
            b,
            LinkParams {
                loss: 0.0,
                corruption: 0.0,
                // Deeper than the whole 64 KiB receive window (~122
                // MSS-sized segments): slow start probes capacity by
                // filling queues, and the control arm must be genuinely
                // lossless so reconciliation slack is pinned on the
                // endpoints, not on queue geometry.
                queue_limit: 128,
                ..LinkClass::T1Terrestrial.params()
            },
            Framing::RawIp,
        );
    }
    net.connect(g3, h2, LinkClass::EthernetLan);
    net.enable_accounting(FLUSH_PERIOD);
    net.converge_routing(Duration::from_secs(60));
    let start = net.now();

    let dst = net.node(h2).primary_addr();
    let src_addr = net.node(h1).primary_addr();
    let sink = SinkServer::new(80, TcpConfig::default());
    let received = Arc::clone(&sink.received);
    net.attach_app(h2, Box::new(sink));
    let sender = BulkSender::new(
        Endpoint::new(dst, 80),
        TRANSFER,
        TcpConfig::default(),
        start + Duration::from_millis(50),
    );
    let result = sender.result_handle();
    net.attach_app(h1, Box::new(sender));

    if crash_on_flush {
        // Accounting was enabled at t=0, so flushes land at exact
        // multiples of the period. Pick the first multiple at least 2 s
        // into the transfer: the mid-gateway ledger is guaranteed
        // non-empty when the crash and the flush collide.
        let period = FLUSH_PERIOD.total_micros();
        let earliest = (start + Duration::from_secs(2)).total_micros();
        let crash_at = Instant::from_micros(earliest.div_ceil(period) * period);
        let mut plan = FaultPlan::new();
        plan.push(crash_at, FaultAction::NodeCrash { node: g2 });
        plan.push(crash_at + Duration::from_secs(3), FaultAction::NodeRestart { node: g2 });
        net.attach_fault_plan(plan);
    } else if storm {
        let mut plan = FaultPlan::new();
        let mut storm_rng = Rng::from_seed(seed ^ 0xE16);
        plan.crash_storm(
            &[g2],
            start + Duration::from_secs(2),
            start + Duration::from_secs(40),
            STORM_CRASHES,
            (Duration::from_secs(1), Duration::from_secs(3)),
            &mut storm_rng,
        );
        net.attach_fault_plan(plan);
    }
    net.run_for(Duration::from_secs(300));

    let rec = net.reconcile().expect("accounting enabled");
    let reconciled = [g1, g2, g3].map(|g| {
        rec.gateway(&net.node(g).name)
            .map(|t| t.conversation_payload(src_addr, dst, IpProtocol::Tcp))
            .unwrap_or(0)
    });
    let goodput = *received.lock().unwrap();
    let (sent, completed) = {
        let r = result.lock().unwrap();
        (r.bytes_sent, r.completed_at.is_some())
    };
    let bounds_hold = reconciled
        .iter()
        .all(|&carried| goodput <= carried && carried <= sent);
    let collector = net.report_collector().expect("accounting enabled");
    let run = ReconcileRun {
        seed,
        storm,
        completed,
        goodput,
        sent,
        reconciled,
        bounds_hold,
        mid_epochs: rec
            .gateway(&net.node(g2).name)
            .map(|t| t.max_epoch)
            .unwrap_or(0),
        reports: collector.flushed_count() as u64,
        forfeited: collector.forfeited_count() as u64,
        faults: net.faults_applied,
    };
    let dumps = [net.metrics_dump(), net.series_dump(), net.flight_dump()];
    (run, dumps)
}

// ---------------------------------------------------------- part 2

/// Flow-churn measurements over one sharded table.
#[derive(Debug, Clone, Copy)]
pub struct ChurnResult {
    /// Distinct flows offered.
    pub flows: usize,
    /// Observations performed (first sightings + revisits).
    pub observations: u64,
    /// Live flows at the end (bounded geometry evicts the rest).
    pub live: usize,
    /// Capacity-pressure evictions (0 at default geometry).
    pub evicted: u64,
    /// Emptiest shard occupancy at the end.
    pub min_occupancy: usize,
    /// Fullest shard occupancy at the end.
    pub max_occupancy: usize,
    /// Idle expiries from the final sweep.
    pub expired: u64,
    /// Wall-clock nanoseconds per observation.
    pub ns_per_observe: f64,
}

fn churn_flow(i: usize) -> FlowId {
    FlowId {
        src_addr: Ipv4Address::new(10, (i >> 16) as u8, (i >> 8) as u8, i as u8),
        dst_addr: Ipv4Address::new(10, 200, ((i / 7) >> 8) as u8, (i / 7) as u8),
        protocol: 17,
        src_port: (1024 + (i % 50_000)) as u16,
        dst_port: 80,
    }
}

/// Drive [`CHURN_FLOWS`] distinct flows (plus revisit traffic) through
/// a table. `bounded` selects a deliberately undersized geometry
/// (64 × 1024 = 65 536 slots) so LRU eviction must engage; the default
/// geometry (64 × 2048) holds the full set with headroom.
pub fn run_churn(flows: usize, bounded: bool) -> ChurnResult {
    let mut table = if bounded {
        FlowTable::with_geometry(64, 1024, FlowTable::DEFAULT_IDLE, Duration::from_secs(1))
    } else {
        FlowTable::new()
    };
    let mut observations: u64 = 0;
    let t0 = std::time::Instant::now();
    // Round 1: every flow appears once, in index order.
    for i in 0..flows {
        table.observe_flow(churn_flow(i), 600, Instant::from_micros(i as u64));
        observations += 1;
    }
    // Round 2: every 3rd flow revisits — LRU touches, no inserts.
    let base = flows as u64;
    for i in (0..flows).step_by(3) {
        table.observe_flow(churn_flow(i), 600, Instant::from_micros(base + i as u64));
        observations += 1;
    }
    let ns_per_observe = t0.elapsed().as_nanos() as f64 / observations as f64;
    let stats = table.shard_stats();
    let live = table.len();
    let evicted = table.evicted;
    // Final idle sweep far in the future: everything evaporates — the
    // soft-state guarantee that the table never needs a GC pass.
    table.expire_idle(Instant::from_secs(3_600));
    ChurnResult {
        flows,
        observations,
        live,
        evicted,
        min_occupancy: stats.min_occupancy,
        max_occupancy: stats.max_occupancy,
        expired: table.expired,
        ns_per_observe,
    }
}

/// Accounting-on vs accounting-off overhead on an E15-style ring.
#[derive(Debug, Clone, Copy)]
pub struct OverheadResult {
    /// Ring size (gateways).
    pub gateways: usize,
    /// Scheduler events (identical across arms — accounting schedules
    /// nothing).
    pub events: u64,
    /// Datagrams forwarded (identical across arms — observation does
    /// not perturb forwarding).
    pub forwarded: u64,
    /// Both invariants above held.
    pub arms_agree: bool,
    /// Flows the busiest gateway's table learned.
    pub flows_seen: usize,
    /// Accounting-off wall clock, ms.
    pub off_ms: f64,
    /// Accounting-on wall clock, ms.
    pub on_ms: f64,
}

fn build_ring(gateways: usize, seed: u64, accounting: bool) -> (Network, Vec<NodeId>) {
    let mut net = Network::new(seed);
    let gs: Vec<NodeId> = (0..gateways)
        .map(|i| net.add_gateway(format!("g{i}")))
        .collect();
    for i in 0..gateways {
        net.connect(gs[i], gs[(i + 1) % gateways], LinkClass::T1Terrestrial);
    }
    for i in (0..gateways).step_by(2) {
        let near = gs[i];
        let far = gs[(i + 2) % gateways];
        let sender = net.add_host(format!("src{i}"));
        let sink = net.add_host(format!("dst{i}"));
        net.connect(sender, near, LinkClass::EthernetLan);
        net.connect(sink, far, LinkClass::EthernetLan);
        let dst = net.node(sink).primary_addr();
        let config = TcpConfig::default();
        net.attach_app(sink, Box::new(SinkServer::new(80, config.clone())));
        net.attach_app(
            sender,
            Box::new(BulkSender::new(
                Endpoint::new(dst, 80),
                250_000,
                config,
                Instant::from_secs(8),
            )),
        );
    }
    if accounting {
        net.enable_accounting(FLUSH_PERIOD);
    }
    (net, gs)
}

/// Measure the end-to-end cost of full accounting on every gateway.
pub fn run_overhead(gateways: usize, seed: u64) -> OverheadResult {
    let arm = |accounting: bool| {
        let (mut net, gs) = build_ring(gateways, seed, accounting);
        let t0 = std::time::Instant::now();
        net.run_for(Duration::from_secs(30));
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let forwarded: u64 = gs.iter().map(|&g| net.node(g).stats.ip_forwarded).sum();
        let flows_seen = gs
            .iter()
            .filter_map(|&g| net.node(g).flows.as_ref().map(|f| f.len()))
            .max()
            .unwrap_or(0);
        (net.sched_stats().processed, forwarded, flows_seen, ms)
    };
    let (off_events, off_forwarded, _, off_ms) = arm(false);
    let (on_events, on_forwarded, flows_seen, on_ms) = arm(true);
    OverheadResult {
        gateways,
        events: on_events,
        forwarded: on_forwarded,
        arms_agree: off_events == on_events && off_forwarded == on_forwarded,
        flows_seen,
        off_ms,
        on_ms,
    }
}

// ---------------------------------------------------------- part 3

/// One corruption class's sweep outcome across both integrity arms.
#[derive(Debug, Clone)]
pub struct SweepClass {
    /// Class name.
    pub name: &'static str,
    /// Corruptions applied.
    pub trials: u64,
    /// Corruptions the Internet checksum alone detected (by
    /// construction of the classes: zero).
    pub caught_checksum_only: u64,
    /// Corruptions the +crc32c arm detected.
    pub caught_with_crc: u64,
}

/// Sealed 64-byte payload with its Internet checksum stored in-band,
/// the shape the escape-class constructions need (a zero word planted
/// at offset 20, checksum field at offset 6).
fn sealed_payload() -> Vec<u8> {
    let mut msg: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(41) ^ 0xa5).collect();
    msg[20] = 0;
    msg[21] = 0;
    msg[6] = 0;
    msg[7] = 0;
    let ck = checksum::checksum(&msg);
    msg[6..8].copy_from_slice(&ck.to_be_bytes());
    msg
}

fn put_word(msg: &mut [u8], offset: usize, value: u16) {
    msg[offset..offset + 2].copy_from_slice(&value.to_be_bytes());
}

fn get_word(msg: &[u8], offset: usize) -> u16 {
    u16::from_be_bytes([msg[offset], msg[offset + 1]])
}

/// Replay the checksum's provable blind spots against both arms. Every
/// corruption in every class passes `checksum::verify` (the
/// checksum-only arm accepts it as clean); the +crc32c arm recomputes
/// the payload CRC a sender would have stamped into the TCP option and
/// compares.
pub fn run_sweep() -> Vec<SweepClass> {
    let msg = sealed_payload();
    let crc_ref = crc32c(&msg);
    let mut classes = Vec::new();

    let mut grade = |name: &'static str, corruptions: Vec<Vec<u8>>| {
        let mut caught_with_crc = 0;
        for corrupt in &corruptions {
            assert!(
                checksum::verify(corrupt),
                "{name}: constructed corruption must escape the checksum"
            );
            if crc32c(corrupt) != crc_ref {
                caught_with_crc += 1;
            }
        }
        classes.push(SweepClass {
            name,
            trials: corruptions.len() as u64,
            caught_checksum_only: 0,
            caught_with_crc,
        });
    };

    // Class 1: the zero flip (0x0000 ↔ 0xFFFF at the planted word).
    let mut flipped = msg.clone();
    put_word(&mut flipped, 20, 0xffff);
    grade("zero-flip", vec![flipped]);

    // Class 2: cancelling word pairs at offsets (2, 10) — a
    // deterministic sample of the ~2^16-strong escape set.
    let (off_a, off_b) = (2usize, 10);
    let (a, b) = (get_word(&msg, off_a), get_word(&msg, off_b));
    let mut pairs = Vec::new();
    for step in 0..512u32 {
        let new_a = (step * 128 + 7) as u16;
        let need = (u32::from(b) % 0xffff + 0xffff + u32::from(a) % 0xffff
            - u32::from(new_a) % 0xffff)
            % 0xffff;
        let new_b = if need == 0 { 0xffff } else { need as u16 };
        if new_a == a && new_b == b {
            continue;
        }
        let mut corrupt = msg.clone();
        put_word(&mut corrupt, off_a, new_a);
        put_word(&mut corrupt, off_b, new_b);
        pairs.push(corrupt);
    }
    grade("cancelling-pair", pairs);

    // Class 3: word transpositions (every distinct-value aligned pair).
    let mut swaps = Vec::new();
    for i in 0..32usize {
        for j in (i + 1)..32 {
            let (wa, wb) = (get_word(&msg, i * 2), get_word(&msg, j * 2));
            if wa == wb {
                continue;
            }
            let mut swapped = msg.clone();
            put_word(&mut swapped, i * 2, wb);
            put_word(&mut swapped, j * 2, wa);
            swaps.push(swapped);
        }
    }
    grade("transposition", swaps);

    classes
}

/// The CRC32C option's per-packet byte cost: 8 header bytes (NOP, NOP,
/// kind, len, CRC³²) per data segment, as a fraction of segment size at
/// a given payload length.
pub fn crc_overhead_pct(payload: usize) -> f64 {
    8.0 * 100.0 / (20.0 + 20.0 + 8.0 + payload as f64)
}

// ---------------------------------------------------------- battery

/// Everything E16 measures, for one seed list.
#[derive(Debug, Clone)]
pub struct Battery {
    /// Crash-storm arms, one per seed.
    pub storms: Vec<ReconcileRun>,
    /// Clean control arms, one per seed.
    pub cleans: Vec<ReconcileRun>,
    /// Churn at default geometry (no evictions expected).
    pub churn_roomy: ChurnResult,
    /// Churn at undersized geometry (evictions enforced).
    pub churn_bounded: ChurnResult,
    /// Fast-path overhead arms.
    pub overhead: OverheadResult,
    /// Corruption sweep classes.
    pub sweep: Vec<SweepClass>,
}

/// Run the full battery. `fast` shrinks the overhead ring.
pub fn run_battery(fast: bool, seeds: &[u64]) -> Battery {
    Battery {
        storms: seeds.iter().map(|&s| run_reconcile(s, true)).collect(),
        cleans: seeds.iter().map(|&s| run_reconcile(s, false)).collect(),
        churn_roomy: run_churn(CHURN_FLOWS, false),
        churn_bounded: run_churn(CHURN_FLOWS, true),
        overhead: run_overhead(if fast { 16 } else { 50 }, seeds[0]),
        sweep: run_sweep(),
    }
}

/// Render the battery as an experiment table.
pub fn table(battery: &Battery) -> Table {
    let mut table = Table::new(
        format!(
            "E16 — Accountability subsystem: crash-storm reconciliation \
             (ledgers flushed every {FLUSH_PERIOD}, tails forfeited at crash \
             instants), {CHURN_FLOWS}-flow churn through the sharded table, \
             and the CRC32C option vs the Internet checksum's blind spots"
        ),
        &["measure", "value", "detail"],
    );
    let bounds_ok = battery.storms.iter().filter(|r| r.bounds_hold).count();
    let exact = battery
        .cleans
        .iter()
        .filter(|r| {
            r.reconciled.iter().all(|&c| c == r.reconciled[0])
                && r.reconciled[0] - r.goodput <= 2 * 536
        })
        .count();
    let completed = battery.storms.iter().filter(|r| r.completed).count();
    let epochs: u64 = battery.storms.iter().map(|r| r.mid_epochs).sum();
    let forfeited: u64 = battery.storms.iter().map(|r| r.forfeited).sum();
    table.row(vec![
        "storm: bounds hold".into(),
        format!("{bounds_ok}/{}", battery.storms.len()),
        "goodput ≤ reconciled ≤ sent, every gateway, every seed".into(),
    ]);
    table.row(vec![
        "storm: completed".into(),
        format!("{completed}/{}", battery.storms.len()),
        format!(
            "mid-gateway epochs {epochs}, forfeited tails {forfeited} across seeds"
        ),
    ]);
    table.row(vec![
        "clean: books agree".into(),
        format!("{exact}/{}", battery.cleans.len()),
        "all gateways identical, within one MSS of goodput, zero loss".into(),
    ]);
    for (name, churn) in [
        ("churn (64×2048)", &battery.churn_roomy),
        ("churn (64×1024)", &battery.churn_bounded),
    ] {
        table.row(vec![
            name.into(),
            format!("{} live, {} evicted", churn.live, churn.evicted),
            format!(
                "occupancy {}..{} per shard, {:.0} ns/observe, {} expired by final sweep",
                churn.min_occupancy, churn.max_occupancy, churn.ns_per_observe, churn.expired
            ),
        ]);
    }
    let o = &battery.overhead;
    table.row(vec![
        format!("overhead ring-{}", o.gateways),
        format!(
            "{:.1} ms off, {:.1} ms on ({:+.1}%)",
            o.off_ms,
            o.on_ms,
            (o.on_ms / o.off_ms - 1.0) * 100.0
        ),
        format!(
            "arms agree: {}; busiest table learned {} flows",
            if o.arms_agree { "yes" } else { "NO" },
            o.flows_seen
        ),
    ]);
    for class in &battery.sweep {
        table.row(vec![
            format!("sweep: {}", class.name),
            format!(
                "checksum-only caught {}/{}, +crc32c caught {}/{}",
                class.caught_checksum_only, class.trials, class.caught_with_crc, class.trials
            ),
            format!(
                "option cost: {:.2}% at 536 B payload, {:.2}% at 1460 B",
                crc_overhead_pct(536),
                crc_overhead_pct(1460)
            ),
        ]);
    }
    table.note(
        "Expected shape: every storm seed reconciles within the \
         retransmission-inflation bound even though the middle gateway's \
         ledger is wiped by every crash — flushed reports plus forfeited \
         tails conserve every recorded byte. The clean arm's gateways \
         agree to the byte, pinning the bound's slack entirely on \
         retransmissions. The \
         sharded table holds 10^5 flows with single-digit occupancy skew; \
         undersizing it trades flows for memory via exact LRU, never via \
         failure. The CRC32C arm catches 100% of the corruption classes \
         the Internet checksum provably accepts, for 8 bytes per data \
         segment. Wall-clock columns vary run to run; all counters are \
         seed-deterministic.",
    );
    table
}

/// Serialize as `BENCH_e16.json`. With `timings: false` (CI `--check`)
/// wall-clock fields are omitted — run twice and diff.
pub fn to_json(battery: &Battery, timings: bool) -> String {
    let mut out = String::from("{\n  \"experiment\": \"e16\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n  \"flush_period_secs\": {},\n  \"churn_flows\": {},\n",
        if timings { "full" } else { "check" },
        FLUSH_PERIOD.total_micros() / 1_000_000,
        CHURN_FLOWS,
    ));
    for (key, runs) in [("storm", &battery.storms), ("clean", &battery.cleans)] {
        out.push_str(&format!("  \"{key}\": [\n"));
        for (i, r) in runs.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"seed\": {}, \"completed\": {}, \"goodput\": {}, \"sent\": {}, \
                 \"reconciled\": [{}, {}, {}], \"bounds_hold\": {}, \"mid_epochs\": {}, \
                 \"reports\": {}, \"forfeited\": {}, \"faults\": {}}}{}\n",
                r.seed,
                r.completed,
                r.goodput,
                r.sent,
                r.reconciled[0],
                r.reconciled[1],
                r.reconciled[2],
                r.bounds_hold,
                r.mid_epochs,
                r.reports,
                r.forfeited,
                r.faults,
                if i + 1 < runs.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
    }
    for (key, churn) in [
        ("churn_roomy", &battery.churn_roomy),
        ("churn_bounded", &battery.churn_bounded),
    ] {
        out.push_str(&format!(
            "  \"{key}\": {{\"flows\": {}, \"observations\": {}, \"live\": {}, \
             \"evicted\": {}, \"min_occupancy\": {}, \"max_occupancy\": {}, \
             \"expired\": {}",
            churn.flows,
            churn.observations,
            churn.live,
            churn.evicted,
            churn.min_occupancy,
            churn.max_occupancy,
            churn.expired,
        ));
        if timings {
            out.push_str(&format!(", \"ns_per_observe\": {:.1}", churn.ns_per_observe));
        }
        out.push_str("},\n");
    }
    let o = &battery.overhead;
    out.push_str(&format!(
        "  \"overhead\": {{\"gateways\": {}, \"events\": {}, \"forwarded\": {}, \
         \"arms_agree\": {}, \"flows_seen\": {}",
        o.gateways, o.events, o.forwarded, o.arms_agree, o.flows_seen,
    ));
    if timings {
        out.push_str(&format!(
            ", \"off_ms\": {:.3}, \"on_ms\": {:.3}",
            o.off_ms, o.on_ms
        ));
    }
    out.push_str("},\n  \"sweep\": [\n");
    for (i, class) in battery.sweep.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"class\": \"{}\", \"trials\": {}, \"caught_checksum_only\": {}, \
             \"caught_with_crc\": {}}}{}\n",
            class.name,
            class.trials,
            class.caught_checksum_only,
            class.caught_with_crc,
            if i + 1 < battery.sweep.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"crc_option_bytes\": 8,\n  \"crc_overhead_pct_536\": {:.3},\n  \
         \"crc_overhead_pct_1460\": {:.3}\n}}\n",
        crc_overhead_pct(536),
        crc_overhead_pct(1460),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_reconciles_exactly() {
        let r = run_reconcile(11, false);
        assert!(r.completed);
        assert!(r.bounds_hold);
        assert_eq!(r.goodput, TRANSFER as u64);
        // With zero link loss every gateway on the chain sees the same
        // datagrams, so the three ledgers must agree with each other to
        // the byte.
        assert!(
            r.reconciled.iter().all(|&c| c == r.reconciled[0]),
            "lossless chain: all gateways carry identical byte counts: {:?}",
            r.reconciled
        );
        // The only inflation a lossless run permits is ARP warm-up: the
        // first data segment can die on an edge LAN (before the first
        // gateway, or after the last ledger records it) and be
        // retransmitted end to end. That bounds both gaps — carried over
        // goodput and sent over carried — to a segment or two.
        assert!(r.reconciled[0] - r.goodput <= 2 * 536, "{r:?}");
        assert!(r.sent - r.goodput <= 2 * 536, "sent {} vs {}", r.sent, r.goodput);
        assert_eq!(r.forfeited, 0);
        assert!(r.reports > 0, "periodic flushes happened");
    }

    #[test]
    fn crash_storm_stays_within_the_bound() {
        let r = run_reconcile(11, true);
        assert!(r.faults > 0, "storm applied");
        assert!(r.bounds_hold, "{r:?}");
        assert!(r.mid_epochs >= 1, "the middle gateway's ledger saw a crash");
        assert!(r.completed, "TCP survived the storm (fate-sharing)");
    }

    #[test]
    fn churn_holds_1e5_flows_and_bounded_geometry_evicts() {
        let roomy = run_churn(CHURN_FLOWS, false);
        assert_eq!(roomy.live, CHURN_FLOWS);
        assert_eq!(roomy.evicted, 0);
        // FNV spread: occupancy skew stays tight at ~1562/shard mean.
        assert!(roomy.min_occupancy >= 1_300, "{roomy:?}");
        assert!(roomy.max_occupancy <= 1_900, "{roomy:?}");
        assert_eq!(roomy.expired + roomy.evicted, CHURN_FLOWS as u64);

        let bounded = run_churn(CHURN_FLOWS, true);
        assert_eq!(bounded.live, 64 * 1024, "bounded at capacity exactly");
        // At least one eviction per overflowing insert; revisits of
        // already-evicted flows re-insert and evict again (soft state
        // re-learns, memory stays bounded — that is the contract).
        assert!(
            bounded.evicted >= (CHURN_FLOWS - 64 * 1024) as u64,
            "evicted {} below the overflow floor",
            bounded.evicted
        );
    }

    #[test]
    fn accounting_overhead_arms_agree() {
        let o = run_overhead(6, 23);
        assert!(o.arms_agree, "{o:?}");
        assert!(o.flows_seen > 0, "gateways learned flows");
        assert!(o.forwarded > 1_000);
    }

    #[test]
    fn sweep_crc_catches_everything_the_checksum_misses() {
        let classes = run_sweep();
        assert_eq!(classes.len(), 3);
        for class in &classes {
            assert!(class.trials > 0);
            assert_eq!(class.caught_checksum_only, 0);
            assert_eq!(
                class.caught_with_crc, class.trials,
                "{}: CRC32C must catch the full class",
                class.name
            );
        }
    }

    #[test]
    fn json_check_mode_is_deterministic_and_timing_free() {
        let a = run_battery(true, &[11]);
        let b = run_battery(true, &[11]);
        let ja = to_json(&a, false);
        let jb = to_json(&b, false);
        assert_eq!(ja, jb, "check-mode JSON replays bit-for-bit");
        assert!(!ja.contains("_ms"), "no wall-clock fields in check mode");
        assert!(!ja.contains("ns_per_observe"));
        assert!(ja.contains("\"mode\": \"check\""));
    }
}
