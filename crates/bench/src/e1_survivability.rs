//! E1 — Survivability through fate-sharing (paper §3, goal 1).
//!
//! **Claim.** "The state information which describes the on-going
//! conversation must be protected ... if \[it\] is stored in the
//! intermediate packet switching nodes, \[node loss destroys it\]. In the
//! Internet architecture, this state is gathered at the endpoint." A
//! gateway crash must therefore cost a conversation nothing but time.
//!
//! **Experiment.** Topology `h1 — gA — gD — gB — h2` with a *longer*
//! backup path `gA — gC1 — gC2 — gB` (strictly worse metric, so the
//! connection always starts on the primary). A bulk TCP transfer
//! starts; mid-transfer the primary middle gateway `gD` crashes (its
//! links drop carrier) and later reboots empty. Two architectures run
//! the identical scenario:
//!
//! - **datagram** (the paper's): stateless gateways + distance-vector
//!   rerouting — the connection stalls, reroutes, completes;
//! - **virtual-circuit** (the rejected): every gateway forwards TCP only
//!   along circuits installed by the SYN — after the crash no gateway on
//!   any path has the circuit, and the conversation is dead forever.

use crate::table::Table;
use catenet_core::app::{BulkSender, SinkServer};
use catenet_core::baseline::vc;
use catenet_core::{Endpoint, Network, TcpConfig};
use catenet_sim::{Duration, LinkClass};

/// One run's outcome.
#[derive(Debug, Clone, Copy)]
pub struct Outcome {
    /// The transfer finished within the time limit.
    pub completed: bool,
    /// Completion time (transfer start → all data acked + FIN acked).
    pub duration: Option<Duration>,
    /// Retransmitted segments.
    pub retransmits: u64,
    /// RTO expirations.
    pub timeouts: u64,
}

/// Scenario parameters.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Bytes to transfer.
    pub transfer_bytes: usize,
    /// When the middle gateway dies.
    pub crash_at: Duration,
    /// How long it stays down.
    pub outage: Duration,
    /// Virtual-circuit mode on all gateways (the baseline arm).
    pub virtual_circuits: bool,
    /// Give up after this much virtual time.
    pub limit: Duration,
}

impl Default for Scenario {
    fn default() -> Scenario {
        Scenario {
            transfer_bytes: 400_000,
            crash_at: Duration::from_secs(2),
            outage: Duration::from_secs(20),
            virtual_circuits: false,
            limit: Duration::from_secs(180),
        }
    }
}

/// Run one scenario with one seed.
pub fn run(scenario: Scenario, seed: u64) -> Outcome {
    let mut net = Network::new(seed);
    let h1 = net.add_host("h1");
    let ga = net.add_gateway("gA");
    let gd = net.add_gateway("gD");
    let gb = net.add_gateway("gB");
    let gc1 = net.add_gateway("gC1");
    let gc2 = net.add_gateway("gC2");
    let h2 = net.add_host("h2");
    net.connect(h1, ga, LinkClass::EthernetLan);
    let l_ad = net.connect(ga, gd, LinkClass::T1Terrestrial);
    let l_db = net.connect(gd, gb, LinkClass::T1Terrestrial);
    // Backup: one hop longer, so DV always prefers the primary first.
    net.connect(ga, gc1, LinkClass::T1Terrestrial);
    net.connect(gc1, gc2, LinkClass::T1Terrestrial);
    net.connect(gc2, gb, LinkClass::T1Terrestrial);
    net.connect(gb, h2, LinkClass::EthernetLan);
    if scenario.virtual_circuits {
        for gw in [ga, gd, gb, gc1, gc2] {
            vc::enable(&mut net, gw);
        }
    }
    net.converge_routing(Duration::from_secs(90));
    let start = net.now();

    let dst = net.node(h2).primary_addr();
    let sink = SinkServer::new(80, TcpConfig::default());
    net.attach_app(h2, Box::new(sink));
    let sender = BulkSender::new(
        Endpoint::new(dst, 80),
        scenario.transfer_bytes,
        TcpConfig::default(),
        start + Duration::from_millis(100),
    );
    let result = sender.result_handle();
    net.attach_app(h1, Box::new(sender));

    // The crash: node dies and its links lose carrier.
    net.run_until(start + scenario.crash_at);
    net.crash_node(gd);
    net.set_link_up(l_ad, false);
    net.set_link_up(l_db, false);

    // The reboot.
    net.run_until(start + scenario.crash_at + scenario.outage);
    net.restart_node(gd);
    net.set_link_up(l_ad, true);
    net.set_link_up(l_db, true);

    net.run_until(start + scenario.limit);

    let result = result.lock().unwrap();
    Outcome {
        completed: result.completed_at.is_some(),
        duration: result.duration(),
        retransmits: result.retransmits,
        timeouts: result.timeouts,
    }
}

/// Run both arms over the seed set and render the paper table.
pub fn default_table(seeds: &[u64]) -> Table {
    let mut table = Table::new(
        "E1 — Survivability: gateway crash mid-transfer (400 kB, 20 s outage, backup path available)",
        &[
            "architecture",
            "completed",
            "median completion (s)",
            "mean retransmits",
            "mean RTO events",
        ],
    );
    for (name, virtual_circuits) in [("datagram + DV (paper)", false), ("virtual-circuit (baseline)", true)] {
        let outcomes: Vec<Outcome> = seeds
            .iter()
            .map(|&seed| {
                run(
                    Scenario {
                        virtual_circuits,
                        ..Scenario::default()
                    },
                    seed,
                )
            })
            .collect();
        let completed = outcomes.iter().filter(|o| o.completed).count();
        let mut durations: Vec<f64> = outcomes
            .iter()
            .filter_map(|o| o.duration.map(|d| d.secs_f64()))
            .collect();
        durations.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = durations
            .get(durations.len() / 2)
            .map(|d| format!("{d:.1}"))
            .unwrap_or_else(|| "—".into());
        let mean_retx =
            outcomes.iter().map(|o| o.retransmits).sum::<u64>() as f64 / outcomes.len() as f64;
        let mean_rto =
            outcomes.iter().map(|o| o.timeouts).sum::<u64>() as f64 / outcomes.len() as f64;
        table.row(vec![
            name.into(),
            format!("{completed}/{}", seeds.len()),
            median,
            format!("{mean_retx:.1}"),
            format!("{mean_rto:.1}"),
        ]);
    }
    table.note(
        "Paper's claim: endpoint state (fate-sharing) survives any gateway loss; \
         in-network connection state does not. Expected shape: datagram arm completes \
         on every seed, virtual-circuit arm never does.",
    );
    table
}

/// A small, fast configuration for criterion.
pub fn quick(seed: u64) -> Outcome {
    run(
        Scenario {
            transfer_bytes: 60_000,
            crash_at: Duration::from_secs(1),
            outage: Duration::from_secs(5),
            limit: Duration::from_secs(90),
            ..Scenario::default()
        },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datagram_architecture_survives() {
        let outcome = run(Scenario::default(), 11);
        assert!(outcome.completed, "rerouted and completed: {outcome:?}");
        assert!(outcome.retransmits > 0, "the outage cost retransmissions");
    }

    #[test]
    fn virtual_circuits_die_with_the_gateway() {
        let outcome = run(
            Scenario {
                virtual_circuits: true,
                ..Scenario::default()
            },
            11,
        );
        assert!(!outcome.completed, "circuit state died with gD: {outcome:?}");
    }

    #[test]
    fn without_crash_both_arms_complete() {
        for virtual_circuits in [false, true] {
            let outcome = run(
                Scenario {
                    crash_at: Duration::from_secs(1_000), // never
                    limit: Duration::from_secs(60),
                    virtual_circuits,
                    ..Scenario::default()
                },
                23,
            );
            assert!(outcome.completed, "vc={virtual_circuits}: {outcome:?}");
        }
    }

    #[test]
    fn quick_outcome_sane() {
        let _ = quick(1);
    }
}
