//! The convergence tracer: per-heal reconvergence measurement.
//!
//! ROADMAP's promise — "routing reconverged within N seconds of each
//! individual heal" — needs three timestamps the stack previously never
//! kept: when topology-affecting faults strike, when heals fire, and
//! when any gateway's routing table last changed. The tracer collects
//! them (fed by the network event loop) and derives, for each heal, the
//! instant the routing system went quiescent afterwards.
//!
//! A heal's *observation window* runs from the heal to the next
//! disruption (or the end of measurement). Reconvergence is the time
//! from the heal to the *last* route change inside that window — but
//! only counts as settled if a quiescence gap followed that change
//! within the window; otherwise the measurement is censored (the window
//! closed before routing provably settled) and is reported as such
//! rather than silently counted as fast.

use catenet_sim::{Duration, Instant};

/// One heal's measured reconvergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reconvergence {
    /// When the heal fired.
    pub healed_at: Instant,
    /// The last route change observed in the heal's window (equals
    /// `healed_at` if routing never changed — it was already converged).
    pub settled_at: Instant,
    /// `settled_at - healed_at`.
    pub took: Duration,
    /// Whether a full quiescence gap followed `settled_at` inside the
    /// window. `false` means the measurement is censored: the next
    /// disruption (or end of run) arrived before routing provably
    /// settled.
    pub settled: bool,
}

/// The tracer: raw timestamps in, per-heal measurements out.
#[derive(Debug)]
pub struct ConvergenceTracer {
    quiescence_gap: Duration,
    disruptions: Vec<Instant>,
    heals: Vec<Instant>,
    route_changes: Vec<Instant>,
}

impl ConvergenceTracer {
    /// Default quiescence gap: twice the fast DV update interval (3 s),
    /// so two full periodic rounds without a table change count as
    /// settled.
    pub const DEFAULT_QUIESCENCE_GAP: Duration = Duration::from_secs(6);

    /// A tracer that declares quiescence after `quiescence_gap` without
    /// a route change.
    pub fn new(quiescence_gap: Duration) -> ConvergenceTracer {
        ConvergenceTracer {
            quiescence_gap,
            disruptions: Vec::new(),
            heals: Vec::new(),
            route_changes: Vec::new(),
        }
    }

    /// The configured quiescence gap.
    pub fn quiescence_gap(&self) -> Duration {
        self.quiescence_gap
    }

    /// Record a topology-affecting disruption (link down, crash,
    /// partition cut).
    pub fn disruption(&mut self, at: Instant) {
        self.disruptions.push(at);
    }

    /// Record a heal (link up, restart, partition healed).
    pub fn heal(&mut self, at: Instant) {
        self.heals.push(at);
    }

    /// Record that some gateway's routing table changed.
    pub fn route_changed(&mut self, at: Instant) {
        self.route_changes.push(at);
    }

    /// Heals recorded so far.
    pub fn heal_count(&self) -> usize {
        self.heals.len()
    }

    /// Route changes recorded so far.
    pub fn route_change_count(&self) -> usize {
        self.route_changes.len()
    }

    /// Derive one [`Reconvergence`] per recorded heal, given that
    /// observation ended at `end`. Feed timestamps in time order (the
    /// event loop does); the derivation sorts defensively anyway.
    pub fn reconvergences(&self, end: Instant) -> Vec<Reconvergence> {
        let mut disruptions = self.disruptions.clone();
        disruptions.sort_unstable();
        let mut changes = self.route_changes.clone();
        changes.sort_unstable();
        let mut heals = self.heals.clone();
        heals.sort_unstable();

        heals
            .iter()
            .map(|&healed_at| {
                // Window: (heal, next disruption strictly after it] ∩ [.., end].
                let window_end = disruptions
                    .iter()
                    .copied()
                    .find(|&d| d > healed_at)
                    .map_or(end, |d| d.min(end));
                let settled_at = changes
                    .iter()
                    .copied()
                    .rfind(|&c| c > healed_at && c <= window_end)
                    .unwrap_or(healed_at);
                let settled =
                    window_end.duration_since(settled_at) >= self.quiescence_gap;
                Reconvergence {
                    healed_at,
                    settled_at,
                    took: settled_at.duration_since(healed_at),
                    settled,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u64) -> Instant {
        Instant::from_secs(n)
    }

    #[test]
    fn each_heal_pairs_with_its_own_settle_point() {
        let mut tr = ConvergenceTracer::new(Duration::from_secs(6));
        // Disruption at 10, heal at 20; churn until 26. Second cycle:
        // disruption at 60, heal at 70, churn until 73.
        tr.disruption(s(10));
        tr.heal(s(20));
        for t in [21, 23, 26] {
            tr.route_changed(s(t));
        }
        tr.disruption(s(60));
        tr.heal(s(70));
        tr.route_changed(s(73));
        let recs = tr.reconvergences(s(120));
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].took, Duration::from_secs(6));
        assert!(recs[0].settled, "34 s quiet before the next disruption");
        assert_eq!(recs[1].took, Duration::from_secs(3));
        assert!(recs[1].settled, "quiet until end of run");
    }

    #[test]
    fn already_converged_heal_measures_zero() {
        let mut tr = ConvergenceTracer::new(Duration::from_secs(6));
        tr.heal(s(5));
        let recs = tr.reconvergences(s(60));
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].took, Duration::ZERO);
        assert!(recs[0].settled);
    }

    #[test]
    fn next_disruption_censors_an_unsettled_measurement() {
        let mut tr = ConvergenceTracer::new(Duration::from_secs(6));
        tr.heal(s(10));
        tr.route_changed(s(12));
        // Disruption lands 3 s after the last change: no full gap.
        tr.disruption(s(15));
        let recs = tr.reconvergences(s(100));
        assert_eq!(recs.len(), 1);
        assert!(!recs[0].settled, "window closed before quiescence");
        assert_eq!(recs[0].took, Duration::from_secs(2));
    }

    #[test]
    fn end_of_run_censors_too() {
        let mut tr = ConvergenceTracer::new(Duration::from_secs(6));
        tr.heal(s(10));
        tr.route_changed(s(12));
        let recs = tr.reconvergences(s(14));
        assert!(!recs[0].settled, "run ended 2 s after the last change");
    }

    #[test]
    fn changes_outside_the_window_do_not_leak_in() {
        let mut tr = ConvergenceTracer::new(Duration::from_secs(6));
        tr.disruption(s(5));
        tr.route_changed(s(6)); // pre-heal churn
        tr.heal(s(10));
        tr.disruption(s(30));
        tr.route_changed(s(31)); // next cycle's churn
        let recs = tr.reconvergences(s(60));
        assert_eq!(recs[0].took, Duration::ZERO, "no change inside (10, 30]");
        assert!(recs[0].settled);
    }
}
