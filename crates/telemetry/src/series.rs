//! The time-series sampler: rows at a fixed virtual-time cadence.
//!
//! The sampler does not drive itself — the network's event loop merges
//! [`Sampler::next_sample_at`] into its own timeline and calls back when
//! the cadence comes due, exactly as it interleaves fault-plan events.
//! At an instant shared with a fault the loop applies the fault first,
//! so the sample records post-fault state (tested from the network side).

use crate::registry::Scope;
use catenet_sim::{Duration, Instant};

/// One recorded time-series row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Virtual time the sample was taken.
    pub at: Instant,
    /// Metric name (static: the set of sampled series is fixed at
    /// compile time).
    pub metric: &'static str,
    /// What the row describes.
    pub scope: Scope,
    /// The sampled value.
    pub value: u64,
}

/// The sampler: cadence state plus the recorded rows.
#[derive(Debug)]
pub struct Sampler {
    cadence: Duration,
    next: Instant,
    rows: Vec<Sample>,
}

impl Sampler {
    /// A sampler with the given cadence, first due one cadence after the
    /// epoch. A zero cadence disables sampling entirely.
    pub fn new(cadence: Duration) -> Sampler {
        Sampler {
            cadence,
            next: if cadence.is_zero() {
                Instant::FAR_FUTURE
            } else {
                Instant::ZERO + cadence
            },
            rows: Vec::new(),
        }
    }

    /// Change the cadence; the next sample is re-anchored to one cadence
    /// after `now`. Zero disables sampling.
    pub fn set_cadence(&mut self, cadence: Duration, now: Instant) {
        self.cadence = cadence;
        self.next = if cadence.is_zero() {
            Instant::FAR_FUTURE
        } else {
            now + cadence
        };
    }

    /// The configured cadence.
    pub fn cadence(&self) -> Duration {
        self.cadence
    }

    /// When the next sample is due, if sampling is enabled.
    pub fn next_sample_at(&self) -> Option<Instant> {
        (self.next != Instant::FAR_FUTURE).then_some(self.next)
    }

    /// Tell the sampler a sample is being taken at `now`; advances the
    /// cadence clock past `now`. The caller records rows with
    /// [`Sampler::record`] after this.
    pub fn begin_sample(&mut self, now: Instant) {
        if self.cadence.is_zero() {
            return;
        }
        // Skip whole missed periods (the loop may have been idle), but
        // always move strictly past `now`.
        while self.next <= now {
            self.next += self.cadence;
        }
    }

    /// Record one row.
    pub fn record(&mut self, at: Instant, metric: &'static str, scope: Scope, value: u64) {
        self.rows.push(Sample {
            at,
            metric,
            scope,
            value,
        });
    }

    /// All recorded rows, in recording order (which is time order: the
    /// event loop only moves forward).
    pub fn rows(&self) -> &[Sample] {
        &self.rows
    }

    /// Rows of one metric.
    pub fn series<'a>(&'a self, metric: &'a str) -> impl Iterator<Item = &'a Sample> + 'a {
        self.rows.iter().filter(move |s| s.metric == metric)
    }

    /// Deterministic text dump: one `time metric{scope} value` line per
    /// row, in recording order.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for s in &self.rows {
            out.push_str(&format!(
                "{:>12}us {}{{{}}} {}\n",
                s.at.total_micros(),
                s.metric,
                s.scope,
                s.value
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_advances_and_skips_missed_periods() {
        let mut s = Sampler::new(Duration::from_millis(500));
        assert_eq!(s.next_sample_at(), Some(Instant::from_millis(500)));
        s.begin_sample(Instant::from_millis(500));
        assert_eq!(s.next_sample_at(), Some(Instant::from_millis(1_000)));
        // The loop idled for 2.3 s; the sampler does not replay missed
        // periods, it re-arms strictly past now.
        s.begin_sample(Instant::from_millis(3_300));
        assert_eq!(s.next_sample_at(), Some(Instant::from_millis(3_500)));
    }

    #[test]
    fn zero_cadence_disables() {
        let mut s = Sampler::new(Duration::ZERO);
        assert_eq!(s.next_sample_at(), None);
        s.begin_sample(Instant::from_secs(1)); // harmless
        assert_eq!(s.next_sample_at(), None);
        let mut on = Sampler::new(Duration::from_secs(1));
        on.set_cadence(Duration::ZERO, Instant::from_secs(5));
        assert_eq!(on.next_sample_at(), None);
    }

    #[test]
    fn rows_and_dump_are_faithful() {
        let mut s = Sampler::new(Duration::from_secs(1));
        s.record(Instant::from_secs(1), "queue_depth", Scope::Link(0), 3);
        s.record(Instant::from_secs(2), "queue_depth", Scope::Link(0), 0);
        s.record(Instant::from_secs(2), "route_version", Scope::Node(1), 7);
        assert_eq!(s.rows().len(), 3);
        assert_eq!(s.series("queue_depth").count(), 2);
        assert_eq!(
            s.dump(),
            "     1000000us queue_depth{link0} 3\n     2000000us queue_depth{link0} 0\n     2000000us route_version{node1} 7\n"
        );
    }
}
