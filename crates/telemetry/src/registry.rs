//! The metrics registry: typed counters and gauges interned by name and
//! scope.
//!
//! The design splits the cost asymmetrically. Registration and interning
//! pay hash lookups once; after that a metric instance is an index into a
//! dense `Vec<u64>`, so the hot path — a gateway bumping a drop counter
//! per datagram — is one bounds-checked add. The sorted, deterministic
//! text dump walks everything and is only paid for when an experiment
//! asks for output.

use std::collections::HashMap;

/// What a metric instance is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scope {
    /// The whole network.
    Global,
    /// One node (host or gateway), by id.
    Node(usize),
    /// One duplex link, by id.
    Link(usize),
    /// One TCP socket: owning node and socket handle.
    Socket {
        /// Owning node id.
        node: usize,
        /// Socket handle within the node.
        handle: usize,
    },
    /// One routing neighbor of one node: owning node id plus the
    /// neighbor's IPv4 address in big-endian bytes (kept as raw bytes so
    /// telemetry stays dependency-free). Used for route-guard verdict
    /// counters.
    Neighbor {
        /// Owning node id.
        node: usize,
        /// Neighbor address, big-endian bytes.
        addr: [u8; 4],
    },
}

impl core::fmt::Display for Scope {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Scope::Global => write!(f, "global"),
            Scope::Node(id) => write!(f, "node{id}"),
            Scope::Link(id) => write!(f, "link{id}"),
            Scope::Socket { node, handle } => write!(f, "node{node}/sock{handle}"),
            Scope::Neighbor { node, addr } => write!(
                f,
                "node{node}/nbr{}.{}.{}.{}",
                addr[0], addr[1], addr[2], addr[3]
            ),
        }
    }
}

/// Counter (monotone) or gauge (set to the latest value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value, overwritten on each set.
    Gauge,
}

/// A pre-interned (metric, scope) pair: the hot-path handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrumentId(usize);

#[derive(Debug)]
struct Metric {
    name: &'static str,
    kind: MetricKind,
}

/// The registry itself.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Vec<Metric>,
    by_name: HashMap<&'static str, usize>,
    /// (metric index, scope) → slot in `values`.
    instruments: HashMap<(usize, Scope), usize>,
    /// Parallel to `values`: which (metric, scope) each slot is.
    keys: Vec<(usize, Scope)>,
    values: Vec<u64>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn metric_index(&mut self, name: &'static str, kind: MetricKind) -> usize {
        if let Some(&index) = self.by_name.get(name) {
            assert_eq!(
                self.metrics[index].kind, kind,
                "metric {name:?} registered with two kinds"
            );
            return index;
        }
        let index = self.metrics.len();
        self.metrics.push(Metric { name, kind });
        self.by_name.insert(name, index);
        index
    }

    /// Intern a counter instance, creating it at zero if new.
    pub fn counter(&mut self, name: &'static str, scope: Scope) -> InstrumentId {
        let metric = self.metric_index(name, MetricKind::Counter);
        self.instrument(metric, scope)
    }

    /// Intern a gauge instance, creating it at zero if new.
    pub fn gauge(&mut self, name: &'static str, scope: Scope) -> InstrumentId {
        let metric = self.metric_index(name, MetricKind::Gauge);
        self.instrument(metric, scope)
    }

    fn instrument(&mut self, metric: usize, scope: Scope) -> InstrumentId {
        if let Some(&slot) = self.instruments.get(&(metric, scope)) {
            return InstrumentId(slot);
        }
        let slot = self.values.len();
        self.values.push(0);
        self.keys.push((metric, scope));
        self.instruments.insert((metric, scope), slot);
        InstrumentId(slot)
    }

    /// Add to a counter (or gauge) slot. O(1).
    pub fn add(&mut self, id: InstrumentId, delta: u64) {
        self.values[id.0] = self.values[id.0].saturating_add(delta);
    }

    /// Overwrite a gauge (or counter) slot. O(1).
    pub fn set(&mut self, id: InstrumentId, value: u64) {
        self.values[id.0] = value;
    }

    /// Read a slot. O(1).
    pub fn value(&self, id: InstrumentId) -> u64 {
        self.values[id.0]
    }

    /// Read by name and scope; zero if never interned.
    pub fn get(&self, name: &str, scope: Scope) -> u64 {
        self.by_name
            .get(name)
            .and_then(|&metric| self.instruments.get(&(metric, scope)))
            .map_or(0, |&slot| self.values[slot])
    }

    /// Sum of a metric across all scopes it was interned for.
    pub fn total(&self, name: &str) -> u64 {
        let Some(&metric) = self.by_name.get(name) else {
            return 0;
        };
        self.keys
            .iter()
            .zip(&self.values)
            .filter(|((m, _), _)| *m == metric)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Number of interned instances.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Deterministic text dump: one `name{scope} value` line per
    /// instance, sorted by metric name then scope. Byte-identical across
    /// runs that performed the same recording.
    pub fn dump(&self) -> String {
        let mut rows: Vec<(&'static str, Scope, u64)> = self
            .keys
            .iter()
            .zip(&self.values)
            .map(|(&(metric, scope), &value)| (self.metrics[metric].name, scope, value))
            .collect();
        rows.sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        let mut out = String::new();
        for (name, scope, value) in rows {
            out.push_str(&format!("{name}{{{scope}}} {value}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_cheap_to_reuse() {
        let mut reg = Registry::new();
        let a = reg.counter("drops", Scope::Node(3));
        let b = reg.counter("drops", Scope::Node(3));
        assert_eq!(a, b, "same instance");
        reg.add(a, 2);
        reg.add(b, 3);
        assert_eq!(reg.value(a), 5);
        assert_eq!(reg.get("drops", Scope::Node(3)), 5);
        assert_eq!(reg.get("drops", Scope::Node(4)), 0, "never interned");
    }

    #[test]
    fn scopes_keep_instances_apart_and_total_sums_them() {
        let mut reg = Registry::new();
        let n0 = reg.counter("frags", Scope::Node(0));
        let n1 = reg.counter("frags", Scope::Node(1));
        let g = reg.counter("frags", Scope::Global);
        reg.add(n0, 10);
        reg.add(n1, 4);
        reg.add(g, 1);
        assert_eq!(reg.total("frags"), 15);
        assert_eq!(reg.total("unknown"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut reg = Registry::new();
        let g = reg.gauge("queue_depth", Scope::Link(2));
        reg.set(g, 7);
        reg.set(g, 3);
        assert_eq!(reg.value(g), 3);
    }

    #[test]
    #[should_panic(expected = "two kinds")]
    fn kind_conflicts_are_refused() {
        let mut reg = Registry::new();
        reg.counter("x", Scope::Global);
        reg.gauge("x", Scope::Global);
    }

    #[test]
    fn neighbor_scope_renders_dotted_quad_and_sorts() {
        let mut reg = Registry::new();
        let a = reg.counter("guard_accepted", Scope::Neighbor { node: 3, addr: [10, 0, 0, 2] });
        reg.add(a, 7);
        assert_eq!(
            reg.dump(),
            "guard_accepted{node3/nbr10.0.0.2} 7\n"
        );
    }

    #[test]
    fn dump_is_sorted_and_stable_regardless_of_insertion_order() {
        let build = |reverse: bool| {
            let mut reg = Registry::new();
            let mut ops: Vec<(&'static str, Scope, u64)> = vec![
                ("zeta", Scope::Global, 1),
                ("alpha", Scope::Node(2), 2),
                ("alpha", Scope::Node(1), 3),
                ("mid", Scope::Socket { node: 0, handle: 1 }, 4),
                ("mid", Scope::Link(0), 5),
            ];
            if reverse {
                ops.reverse();
            }
            for (name, scope, v) in ops {
                let id = reg.counter(name, scope);
                reg.add(id, v);
            }
            reg.dump()
        };
        let dump = build(false);
        assert_eq!(dump, build(true), "insertion order is invisible");
        assert_eq!(
            dump,
            "alpha{node1} 3\nalpha{node2} 2\nmid{link0} 5\nmid{node0/sock1} 4\nzeta{global} 1\n"
        );
    }
}
