//! The flight recorder: a bounded ring of structured events.
//!
//! When an end-to-end invariant trips, "violations: 1" is useless for
//! diagnosis; what matters is the causal neighborhood — which fault
//! fired, which routes moved, which retransmission timers expired, in
//! what order. The recorder keeps the last N such events with virtual
//! timestamps; the dump is the black-box readout.

use catenet_sim::Instant;
use std::collections::VecDeque;

/// A structured event worth remembering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A fault-plan action was applied.
    FaultInjected {
        /// Human-readable description of the action.
        description: String,
    },
    /// A node's routing table changed (version advanced).
    RouteChanged {
        /// The node whose table changed.
        node: usize,
        /// Its new table version.
        version: u64,
    },
    /// A TCP retransmission timeout fired on some socket of a node.
    RtoFired {
        /// The node owning the socket.
        node: usize,
        /// The node's cumulative RTO count after this firing.
        total_timeouts: u64,
    },
    /// An invariant was evaluated.
    InvariantChecked {
        /// Which invariant.
        name: &'static str,
        /// Whether it held.
        ok: bool,
    },
    /// An invariant tripped; the recorder dump at this moment is the
    /// causal trace.
    InvariantTripped {
        /// The violation, rendered.
        description: String,
    },
    /// The route guard on a node acted on a neighbor's announcement
    /// (sanitized, damped, rate-limited, quarantined, paroled). Per the
    /// measurability principle, a rejected announcement is a
    /// first-class event, not a silent drop.
    GuardAction {
        /// The node whose guard acted.
        node: usize,
        /// The incident, rendered by the routing layer (which knows the
        /// addresses and prefixes involved).
        detail: String,
    },
    /// Free-form annotation from the harness.
    Note {
        /// The annotation.
        text: String,
    },
}

impl core::fmt::Display for EventKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EventKind::FaultInjected { description } => write!(f, "fault: {description}"),
            EventKind::RouteChanged { node, version } => {
                write!(f, "route-changed: node{node} table v{version}")
            }
            EventKind::RtoFired { node, total_timeouts } => {
                write!(f, "rto-fired: node{node} (total {total_timeouts})")
            }
            EventKind::InvariantChecked { name, ok } => {
                write!(f, "invariant-checked: {name} {}", if *ok { "ok" } else { "VIOLATED" })
            }
            EventKind::InvariantTripped { description } => {
                write!(f, "INVARIANT TRIPPED: {description}")
            }
            EventKind::GuardAction { node, detail } => {
                write!(f, "guard: node{node} {detail}")
            }
            EventKind::Note { text } => write!(f, "note: {text}"),
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Virtual time of the event.
    pub at: Instant,
    /// Monotone sequence number (never reused, survives ring eviction;
    /// gaps reveal how much history was lost).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The bounded ring buffer.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    buf: VecDeque<FlightEvent>,
    next_seq: u64,
    evicted: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (at least 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            buf: VecDeque::new(),
            next_seq: 0,
            evicted: 0,
        }
    }

    /// Record an event, evicting the oldest if the ring is full.
    pub fn record(&mut self, at: Instant, kind: EventKind) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(FlightEvent {
            at,
            seq: self.next_seq,
            kind,
        });
        self.next_seq += 1;
    }

    /// Events currently held, oldest first (and therefore in virtual-time
    /// order: recording only moves forward).
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.buf.iter()
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events recorded over the recorder's lifetime (held + evicted).
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// Events lost to ring eviction.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The black-box readout: every held event, one line each, oldest
    /// first with virtual timestamps. Deterministic.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        if self.evicted > 0 {
            out.push_str(&format!(
                "... {} earlier event(s) evicted from the ring ...\n",
                self.evicted
            ));
        }
        for event in &self.buf {
            out.push_str(&format!(
                "{:>12}us #{:<5} {}\n",
                event.at.total_micros(),
                event.seq,
                event.kind
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn note(text: &str) -> EventKind {
        EventKind::Note {
            text: text.to_string(),
        }
    }

    #[test]
    fn records_in_order_until_capacity() {
        let mut rec = FlightRecorder::new(8);
        for i in 0..5u64 {
            rec.record(Instant::from_secs(i), note("x"));
        }
        assert_eq!(rec.len(), 5);
        assert_eq!(rec.evicted(), 0);
        let seqs: Vec<u64> = rec.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wraparound_keeps_only_the_newest_and_counts_evictions() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..10u64 {
            rec.record(Instant::from_secs(i), note("e"));
        }
        assert_eq!(rec.len(), 3, "bounded");
        assert_eq!(rec.evicted(), 7);
        assert_eq!(rec.total_recorded(), 10);
        let seqs: Vec<u64> = rec.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9], "oldest evicted first");
        let times: Vec<Instant> = rec.events().map(|e| e.at).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "time order");
        assert!(rec.dump().starts_with("... 7 earlier event(s) evicted"));
    }

    #[test]
    fn capacity_of_zero_is_clamped_to_one() {
        let mut rec = FlightRecorder::new(0);
        rec.record(Instant::ZERO, note("a"));
        rec.record(Instant::from_secs(1), note("b"));
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.events().next().unwrap().seq, 1, "newest survives");
    }

    #[test]
    fn dump_renders_kinds_readably() {
        let mut rec = FlightRecorder::new(8);
        rec.record(
            Instant::from_millis(1_500),
            EventKind::FaultInjected {
                description: "link 2 down".to_string(),
            },
        );
        rec.record(
            Instant::from_millis(2_000),
            EventKind::RouteChanged { node: 1, version: 4 },
        );
        rec.record(
            Instant::from_millis(2_500),
            EventKind::RtoFired {
                node: 0,
                total_timeouts: 3,
            },
        );
        rec.record(
            Instant::from_millis(3_000),
            EventKind::InvariantTripped {
                description: "stall".to_string(),
            },
        );
        rec.record(
            Instant::from_millis(3_500),
            EventKind::GuardAction {
                node: 2,
                detail: "quarantined 10.0.0.2 until t=60.0s".to_string(),
            },
        );
        let dump = rec.dump();
        assert!(dump.contains("guard: node2 quarantined 10.0.0.2 until t=60.0s"));
        assert!(dump.contains("fault: link 2 down"));
        assert!(dump.contains("route-changed: node1 table v4"));
        assert!(dump.contains("rto-fired: node0 (total 3)"));
        assert!(dump.contains("INVARIANT TRIPPED: stall"));
    }
}
