//! # catenet-telemetry
//!
//! Virtual-time observability for the catenet stack.
//!
//! Clark's 1988 paper lists *distributed management* and *accountability*
//! among the architecture's goals, and later work (Allman et al.,
//! "Principles for Measurability in Protocol Design") argues that
//! measurement hooks must be designed into a stack rather than bolted on.
//! This crate is that design: every piece runs on virtual time from
//! [`catenet_sim::Instant`], never the wall clock, so telemetry output is
//! exactly as deterministic as the simulation it observes — two runs with
//! the same seed produce byte-identical dumps.
//!
//! Four pieces:
//!
//! - [`Registry`] — typed counters/gauges interned by name and
//!   [`Scope`] (global, node, link, socket). Hot paths pre-intern a
//!   [`InstrumentId`] once and bump a plain `Vec` slot thereafter; the
//!   deterministic sorted dump is only paid for when asked.
//! - [`Sampler`] — a time-series recorder taking rows at a fixed
//!   virtual-time cadence (goodput, queue depth, cwnd/RTT, routing-table
//!   versions). The event loop merges the sampler's next due time into
//!   its own timeline; at an instant shared with a fault the sample is
//!   taken *after* the fault, so it reflects post-fault state.
//! - [`FlightRecorder`] — a bounded ring buffer of structured events
//!   (fault injected, route changed, RTO fired, invariant checked) whose
//!   dump turns an invariant violation from "violations: 1" into a
//!   readable causal trace.
//! - [`ConvergenceTracer`] — pairs each heal event with the instant the
//!   routing system last changed before going quiescent, making
//!   "reconvergence ≤ bound per heal" a first-class measured quantity
//!   (experiment E12).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod convergence;
pub mod recorder;
pub mod registry;
pub mod series;

pub use convergence::{ConvergenceTracer, Reconvergence};
pub use recorder::{EventKind, FlightEvent, FlightRecorder};
pub use registry::{InstrumentId, MetricKind, Registry, Scope};
pub use series::{Sample, Sampler};

use catenet_sim::Duration;

/// The observability bundle a network carries: one of each piece, on a
/// shared virtual clock.
#[derive(Debug)]
pub struct Telemetry {
    /// Named counters and gauges.
    pub registry: Registry,
    /// Cadence-driven time series.
    pub sampler: Sampler,
    /// Ring buffer of structured events.
    pub recorder: FlightRecorder,
    /// Per-heal reconvergence measurement.
    pub convergence: ConvergenceTracer,
}

impl Telemetry {
    /// Default sampling cadence: two samples per virtual second.
    pub const DEFAULT_CADENCE: Duration = Duration::from_millis(500);
    /// Default flight-recorder depth.
    pub const DEFAULT_RECORDER_DEPTH: usize = 256;

    /// A bundle with default cadence, recorder depth, and quiescence gap.
    pub fn new() -> Telemetry {
        Telemetry {
            registry: Registry::new(),
            sampler: Sampler::new(Self::DEFAULT_CADENCE),
            recorder: FlightRecorder::new(Self::DEFAULT_RECORDER_DEPTH),
            convergence: ConvergenceTracer::new(ConvergenceTracer::DEFAULT_QUIESCENCE_GAP),
        }
    }
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new()
    }
}
