//! Property tests for the simulator substrate: total event ordering,
//! link conservation laws, and statistics consistency. Inputs are drawn
//! from the simulator's own seeded `Rng`, so every case is reproducible
//! from its case number.

use catenet_sim::{Duration, Instant, Link, LinkOutcome, LinkParams, Rng, Scheduler, Summary};

fn case_rng(name: &str, case: u64) -> Rng {
    let tag: u64 = name.bytes().fold(0xcbf2_9ce4_8422_2325, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    });
    Rng::from_seed(tag ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

#[test]
fn scheduler_pops_in_nondecreasing_time_order() {
    for case in 0..128 {
        let mut rng = case_rng("sched_order", case);
        let count = rng.range(1, 128) as usize;
        let times: Vec<u64> = (0..count).map(|_| rng.below(1_000_000)).collect();
        let mut sched = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            sched.schedule_at(Instant::from_micros(t), i);
        }
        let mut last = Instant::ZERO;
        let mut seen = Vec::new();
        while let Some((at, id)) = sched.pop() {
            assert!(at >= last, "time went backwards");
            last = at;
            seen.push(id);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
    }
}

#[test]
fn scheduler_equal_times_preserve_insertion_order() {
    for case in 0..64 {
        let mut rng = case_rng("sched_fifo", case);
        let count = rng.range(1, 64) as usize;
        let t = rng.below(1000);
        let mut sched = Scheduler::new();
        for i in 0..count {
            sched.schedule_at(Instant::from_micros(t), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| sched.pop()).map(|(_, i)| i).collect();
        assert_eq!(order, (0..count).collect::<Vec<_>>());
    }
}

#[test]
fn link_conserves_frames() {
    for case in 0..128 {
        let mut meta = case_rng("link_conserve", case);
        let loss = meta.unit() * 0.5;
        let frames = meta.range(1, 200);
        let seed = u64::from(meta.next_u32()) << 32 | u64::from(meta.next_u32());
        let mut link = Link::new(LinkParams {
            name: "prop",
            bandwidth_bps: 1_000_000,
            propagation: Duration::from_millis(1),
            jitter: Duration::from_micros(100),
            loss,
            corruption: 0.0,
            mtu: 1500,
            queue_limit: 10_000,
        });
        let mut rng = Rng::from_seed(seed);
        let mut delivered = 0u64;
        let mut dropped = 0u64;
        let mut now = Instant::ZERO;
        let mut last_arrival = Instant::ZERO;
        for _ in 0..frames {
            let mut frame = vec![0u8; 100];
            match link.transmit(now, &mut frame, &mut rng) {
                LinkOutcome::Delivered { at, .. } => {
                    delivered += 1;
                    assert!(at > now, "arrival not after send");
                    // FIFO serialization: arrivals modulo jitter are
                    // nondecreasing within jitter bounds.
                    assert!(at + Duration::from_micros(100) >= last_arrival);
                    last_arrival = at;
                }
                LinkOutcome::Dropped(_) => dropped += 1,
            }
            now += Duration::from_millis(1);
        }
        let stats = link.stats();
        assert_eq!(stats.delivered, delivered);
        assert_eq!(delivered + dropped, frames);
        // Conservation: every accepted frame is delivered or lost.
        assert_eq!(stats.tx_frames, stats.delivered + stats.lost);
    }
}

#[test]
fn summary_percentiles_are_monotone() {
    for case in 0..128 {
        let mut rng = case_rng("summary_monotone", case);
        let count = rng.range(1, 200) as usize;
        let values: Vec<f64> = (0..count).map(|_| (rng.unit() - 0.5) * 2e6).collect();
        let summary = Summary::from_iter(values.iter().copied());
        let mut last = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = summary.percentile(q);
            assert!(v >= last, "percentile({q}) = {v} < {last}");
            last = v;
        }
        assert!(summary.min() <= summary.mean() + 1e-9);
        assert!(summary.mean() <= summary.max() + 1e-9);
        assert_eq!(summary.percentile(1.0), summary.max());
    }
}

#[test]
fn rng_chance_is_deterministic_per_seed() {
    for case in 0..64 {
        let mut meta = case_rng("rng_chance_det", case);
        let seed = u64::from(meta.next_u32()) << 32 | u64::from(meta.next_u32());
        let p = meta.unit();
        let mut a = Rng::from_seed(seed);
        let mut b = Rng::from_seed(seed);
        for _ in 0..64 {
            assert_eq!(a.chance(p), b.chance(p));
        }
    }
}
