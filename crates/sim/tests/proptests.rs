//! Property tests for the simulator substrate: total event ordering,
//! link conservation laws, and statistics consistency.

use catenet_sim::{Duration, Instant, Link, LinkOutcome, LinkParams, Rng, Scheduler, Summary};
use proptest::prelude::*;

proptest! {
    #[test]
    fn scheduler_pops_in_nondecreasing_time_order(
        times in proptest::collection::vec(0u64..1_000_000, 1..128),
    ) {
        let mut sched = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            sched.schedule_at(Instant::from_micros(t), i);
        }
        let mut last = Instant::ZERO;
        let mut seen = Vec::new();
        while let Some((at, id)) = sched.pop() {
            prop_assert!(at >= last, "time went backwards");
            last = at;
            seen.push(id);
        }
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
    }

    #[test]
    fn scheduler_equal_times_preserve_insertion_order(
        count in 1usize..64,
        t in 0u64..1000,
    ) {
        let mut sched = Scheduler::new();
        for i in 0..count {
            sched.schedule_at(Instant::from_micros(t), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| sched.pop()).map(|(_, i)| i).collect();
        prop_assert_eq!(order, (0..count).collect::<Vec<_>>());
    }

    #[test]
    fn link_conserves_frames(
        loss in 0.0f64..0.5,
        frames in 1usize..200,
        seed in any::<u64>(),
    ) {
        let mut link = Link::new(LinkParams {
            name: "prop",
            bandwidth_bps: 1_000_000,
            propagation: Duration::from_millis(1),
            jitter: Duration::from_micros(100),
            loss,
            corruption: 0.0,
            mtu: 1500,
            queue_limit: 10_000,
            });
        let mut rng = Rng::from_seed(seed);
        let mut delivered = 0u64;
        let mut dropped = 0u64;
        let mut now = Instant::ZERO;
        let mut last_arrival = Instant::ZERO;
        for _ in 0..frames {
            let mut frame = vec![0u8; 100];
            match link.transmit(now, &mut frame, &mut rng) {
                LinkOutcome::Delivered { at, .. } => {
                    delivered += 1;
                    prop_assert!(at > now, "arrival not after send");
                    // FIFO serialization: arrivals modulo jitter are
                    // nondecreasing within jitter bounds.
                    prop_assert!(at + Duration::from_micros(100) >= last_arrival);
                    last_arrival = at;
                }
                LinkOutcome::Dropped(_) => dropped += 1,
            }
            now += Duration::from_millis(1);
        }
        let stats = link.stats();
        prop_assert_eq!(stats.delivered, delivered);
        prop_assert_eq!(delivered + dropped, frames as u64);
        // Conservation: every accepted frame is delivered or lost.
        prop_assert_eq!(stats.tx_frames, stats.delivered + stats.lost);
    }

    #[test]
    fn summary_percentiles_are_monotone(
        values in proptest::collection::vec(-1e6f64..1e6, 1..200),
    ) {
        let summary = Summary::from_iter(values.iter().copied());
        let mut last = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = summary.percentile(q);
            prop_assert!(v >= last, "percentile({q}) = {v} < {last}");
            last = v;
        }
        prop_assert!(summary.min() <= summary.mean() + 1e-9);
        prop_assert!(summary.mean() <= summary.max() + 1e-9);
        prop_assert_eq!(summary.percentile(1.0), summary.max());
    }

    #[test]
    fn rng_chance_is_deterministic_per_seed(seed in any::<u64>(), p in 0.0f64..1.0) {
        let mut a = Rng::from_seed(seed);
        let mut b = Rng::from_seed(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.chance(p), b.chance(p));
        }
    }
}
