//! Link models: the "variety of networks" made concrete.
//!
//! The internet architecture makes very few assumptions about a network
//! (Clark §5): it can carry a datagram of reasonable minimum size, with
//! some bandwidth and latency, and may lose, corrupt, delay or reorder it.
//! A [`Link`] is exactly that contract and nothing more: a unidirectional
//! channel with
//!
//! - a serialization rate (bandwidth) and a drop-tail output queue,
//! - a propagation delay plus optional uniform jitter (which yields
//!   natural reordering),
//! - independent per-packet loss and corruption probabilities, and
//! - an MTU (oversized frames are refused — fragmentation is the IP
//!   layer's job, not the link's),
//! - an up/down state (for survivability experiments).
//!
//! [`LinkClass`] provides presets for the network classes that made up the
//! 1988 DARPA internet, with parameters drawn from their published
//! characteristics, plus a modern LAN for the "realizations" experiment.

use crate::rng::Rng;
use crate::time::{Duration, Instant};
use std::collections::VecDeque;

/// Why a link refused or lost a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Random transmission loss.
    Loss,
    /// The drop-tail queue was full (congestion).
    QueueFull,
    /// The frame exceeded the link MTU.
    TooBig,
    /// The link is administratively or physically down.
    LinkDown,
}

impl core::fmt::Display for DropReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DropReason::Loss => write!(f, "random loss"),
            DropReason::QueueFull => write!(f, "queue overflow"),
            DropReason::TooBig => write!(f, "exceeds MTU"),
            DropReason::LinkDown => write!(f, "link down"),
        }
    }
}

/// The outcome of handing a frame to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkOutcome {
    /// The frame will arrive at the far end at `at`. If `corrupted`, a
    /// byte was flipped in flight (checksums downstream must catch it).
    Delivered {
        /// Arrival time at the receiver.
        at: Instant,
        /// Whether the payload was corrupted in flight.
        corrupted: bool,
    },
    /// The frame was lost; the sender is *not* told (datagram service).
    Dropped(DropReason),
}

/// The externally visible parameters of a network, per the paper's
/// minimal-assumptions list.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkParams {
    /// Human-readable class name (for traces and experiment tables).
    pub name: &'static str,
    /// Serialization rate in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub propagation: Duration,
    /// Maximum extra uniform delay per packet (models path variance and
    /// produces reordering when it exceeds packet spacing).
    pub jitter: Duration,
    /// Independent per-packet loss probability.
    pub loss: f64,
    /// Independent per-packet corruption probability.
    pub corruption: f64,
    /// Maximum frame size the network will carry.
    pub mtu: usize,
    /// Drop-tail queue capacity, in packets (including the one in service).
    pub queue_limit: usize,
}

impl LinkParams {
    /// Time to serialize `bytes` onto this link (rounded up to 1 µs).
    pub fn tx_time(&self, bytes: usize) -> Duration {
        let micros = (bytes as u128 * 8 * 1_000_000).div_ceil(self.bandwidth_bps as u128);
        Duration::from_micros((micros as u64).max(1))
    }
}

/// Preset network classes of the 1988 DARPA internet (plus a modern LAN).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// 10 Mb/s Ethernet LAN segment: fast, short, nearly lossless.
    EthernetLan,
    /// 56 kb/s ARPANET-style terrestrial trunk.
    ArpanetTrunk,
    /// T1 (1.544 Mb/s) terrestrial leased line.
    T1Terrestrial,
    /// SATNET-style satellite hop: T1 rate but ~250 ms propagation.
    Satellite,
    /// Packet-radio network: modest rate, small MTU, high loss.
    PacketRadio,
    /// 9.6 kb/s serial line (SLIP), MTU 296.
    SlipLine,
    /// A modern 1 Gb/s LAN (for the "realizations" experiment E10).
    ModernLan,
}

impl LinkClass {
    /// The parameters of this network class.
    pub fn params(self) -> LinkParams {
        match self {
            LinkClass::EthernetLan => LinkParams {
                name: "ethernet-lan",
                bandwidth_bps: 10_000_000,
                propagation: Duration::from_micros(100),
                jitter: Duration::from_micros(50),
                loss: 0.0001,
                corruption: 0.0001,
                mtu: 1500,
                queue_limit: 50,
            },
            LinkClass::ArpanetTrunk => LinkParams {
                name: "arpanet-trunk",
                bandwidth_bps: 56_000,
                propagation: Duration::from_millis(20),
                jitter: Duration::from_millis(2),
                loss: 0.001,
                corruption: 0.0005,
                mtu: 1006,
                queue_limit: 20,
            },
            LinkClass::T1Terrestrial => LinkParams {
                name: "t1-terrestrial",
                bandwidth_bps: 1_544_000,
                propagation: Duration::from_millis(30),
                jitter: Duration::from_millis(1),
                loss: 0.0005,
                corruption: 0.0002,
                mtu: 1500,
                queue_limit: 30,
            },
            LinkClass::Satellite => LinkParams {
                name: "satellite",
                bandwidth_bps: 1_544_000,
                propagation: Duration::from_millis(250),
                jitter: Duration::from_millis(5),
                loss: 0.002,
                corruption: 0.001,
                mtu: 1500,
                queue_limit: 40,
            },
            LinkClass::PacketRadio => LinkParams {
                name: "packet-radio",
                bandwidth_bps: 100_000,
                propagation: Duration::from_millis(10),
                jitter: Duration::from_millis(8),
                loss: 0.05,
                corruption: 0.01,
                mtu: 254,
                queue_limit: 10,
            },
            LinkClass::SlipLine => LinkParams {
                name: "slip-line",
                bandwidth_bps: 9_600,
                propagation: Duration::from_millis(5),
                jitter: Duration::from_millis(1),
                loss: 0.001,
                corruption: 0.001,
                mtu: 296,
                queue_limit: 8,
            },
            LinkClass::ModernLan => LinkParams {
                name: "modern-lan",
                bandwidth_bps: 1_000_000_000,
                propagation: Duration::from_micros(50),
                jitter: Duration::from_micros(5),
                loss: 0.0,
                corruption: 0.0,
                mtu: 1500,
                queue_limit: 200,
            },
        }
    }
}

/// Per-link counters, exposed to the accounting experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames accepted for transmission.
    pub tx_frames: u64,
    /// Bytes accepted for transmission.
    pub tx_bytes: u64,
    /// Frames that will arrive (possibly corrupted).
    pub delivered: u64,
    /// Frames dropped to random loss.
    pub lost: u64,
    /// Frames dropped to queue overflow.
    pub overflowed: u64,
    /// Frames refused for exceeding the MTU.
    pub oversized: u64,
    /// Frames dropped because the link was down.
    pub down_drops: u64,
    /// Frames corrupted in flight (subset of `delivered`).
    pub corrupted: u64,
}

/// A unidirectional link.
#[derive(Debug, Clone)]
pub struct Link {
    params: LinkParams,
    up: bool,
    /// Baseline (loss, corruption) saved while a fault window overrides
    /// them; `None` when the link is at its configured quality.
    base_quality: Option<(f64, f64)>,
    /// Baseline (propagation, jitter) saved while a delay spike
    /// overrides them; `None` when the link is at its configured delay.
    base_delay: Option<(Duration, Duration)>,
    /// Completion times of frames still in the queue or in service.
    in_flight: VecDeque<Instant>,
    busy_until: Instant,
    stats: LinkStats,
}

impl Link {
    /// Build a link from explicit parameters.
    pub fn new(params: LinkParams) -> Link {
        assert!(params.bandwidth_bps > 0, "zero-bandwidth link");
        assert!(params.mtu >= crate::link::MIN_LINK_MTU, "MTU below architecture minimum");
        assert!(params.queue_limit >= 1, "queue must hold at least one frame");
        Link {
            params,
            up: true,
            base_quality: None,
            base_delay: None,
            in_flight: VecDeque::new(),
            busy_until: Instant::ZERO,
            stats: LinkStats::default(),
        }
    }

    /// Build a link of a preset class.
    pub fn of_class(class: LinkClass) -> Link {
        Link::new(class.params())
    }

    /// The link parameters.
    pub fn params(&self) -> &LinkParams {
        &self.params
    }

    /// The link MTU.
    pub fn mtu(&self) -> usize {
        self.params.mtu
    }

    /// Whether the link is up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Bring the link up or down. Taking a link down empties its queue
    /// (frames in flight on a severed line do not arrive).
    pub fn set_up(&mut self, up: bool) {
        self.up = up;
        if !up {
            self.in_flight.clear();
            self.busy_until = Instant::ZERO;
        }
    }

    /// Override loss and/or corruption for a fault window, remembering
    /// the baseline. Unlike [`Link::set_up`], the link *looks* healthy:
    /// interfaces stay up and routing notices nothing — the silent
    /// failure mode end-to-end checks exist for. Repeated degradations
    /// stack on the same saved baseline.
    pub fn degrade(&mut self, loss: Option<f64>, corruption: Option<f64>) {
        if self.base_quality.is_none() {
            self.base_quality = Some((self.params.loss, self.params.corruption));
        }
        if let Some(p) = loss {
            self.params.loss = p.clamp(0.0, 1.0);
        }
        if let Some(p) = corruption {
            self.params.corruption = p.clamp(0.0, 1.0);
        }
    }

    /// Restore the baseline quality after a fault window. No-op if the
    /// link was never degraded.
    pub fn restore(&mut self) {
        if let Some((loss, corruption)) = self.base_quality.take() {
            self.params.loss = loss;
            self.params.corruption = corruption;
        }
    }

    /// Whether a fault window currently overrides the link quality.
    pub fn is_degraded(&self) -> bool {
        self.base_quality.is_some()
    }

    /// Override the link's delay for a fault window: propagation grows
    /// by `extra` (over the configured baseline, not cumulatively) and
    /// jitter is replaced by `jitter`. Like [`Link::degrade`] this is
    /// silent — interfaces stay up and routing notices nothing. When
    /// `jitter` exceeds the inter-packet spacing the link reorders,
    /// which is the point of a reordering burst. Repeated spikes rebase
    /// on the same saved baseline.
    pub fn delay_spike(&mut self, extra: Duration, jitter: Duration) {
        if self.base_delay.is_none() {
            self.base_delay = Some((self.params.propagation, self.params.jitter));
        }
        let (base_propagation, _) = self.base_delay.expect("just saved");
        self.params.propagation = base_propagation + extra;
        self.params.jitter = jitter;
    }

    /// Restore the baseline delay after a spike window. No-op if the
    /// link was never spiked.
    pub fn restore_delay(&mut self) {
        if let Some((propagation, jitter)) = self.base_delay.take() {
            self.params.propagation = propagation;
            self.params.jitter = jitter;
        }
    }

    /// Whether a delay spike currently overrides the link delay.
    pub fn is_delay_spiked(&self) -> bool {
        self.base_delay.is_some()
    }

    /// The configured (pre-spike) propagation delay. Shard lanes use
    /// this as the conservative lookahead bound: a delay spike only
    /// *raises* the live propagation above this baseline, so a window
    /// sized by the baseline stays safe through every fault plan.
    pub fn base_propagation(&self) -> Duration {
        self.base_delay
            .map(|(propagation, _)| propagation)
            .unwrap_or(self.params.propagation)
    }

    /// Counters so far.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Current queue occupancy (frames queued or in service at `now`).
    pub fn queue_depth(&self, now: Instant) -> usize {
        self.in_flight.iter().filter(|&&done| done > now).count()
    }

    /// Offer a frame to the link at time `now`. On delivery the frame may
    /// be corrupted in place (one flipped byte) — exactly the failure the
    /// end-to-end checksums exist to catch.
    pub fn transmit(&mut self, now: Instant, frame: &mut [u8], rng: &mut Rng) -> LinkOutcome {
        if !self.up {
            self.stats.down_drops += 1;
            return LinkOutcome::Dropped(DropReason::LinkDown);
        }
        if frame.len() > self.params.mtu {
            self.stats.oversized += 1;
            return LinkOutcome::Dropped(DropReason::TooBig);
        }
        // Age out frames that have finished serializing.
        while let Some(&done) = self.in_flight.front() {
            if done <= now {
                self.in_flight.pop_front();
            } else {
                break;
            }
        }
        if self.in_flight.len() >= self.params.queue_limit {
            self.stats.overflowed += 1;
            return LinkOutcome::Dropped(DropReason::QueueFull);
        }

        self.stats.tx_frames += 1;
        self.stats.tx_bytes += frame.len() as u64;

        let start = self.busy_until.max(now);
        let done = start + self.params.tx_time(frame.len());
        self.busy_until = done;
        self.in_flight.push_back(done);

        if rng.chance(self.params.loss) {
            self.stats.lost += 1;
            return LinkOutcome::Dropped(DropReason::Loss);
        }

        let mut corrupted = false;
        if rng.chance(self.params.corruption) && !frame.is_empty() {
            let index = rng.below(frame.len() as u64) as usize;
            let bit = rng.below(8) as u8;
            frame[index] ^= 1 << bit;
            corrupted = true;
            self.stats.corrupted += 1;
        }

        let jitter = if self.params.jitter.is_zero() {
            Duration::ZERO
        } else {
            Duration::from_micros(rng.below(self.params.jitter.total_micros().max(1)))
        };

        self.stats.delivered += 1;
        LinkOutcome::Delivered {
            at: done + self.params.propagation + jitter,
            corrupted,
        }
    }
}

/// The smallest MTU any catenet link may have: the architecture's
/// "reasonable minimum size" (RFC 791's 68-octet rule).
pub const MIN_LINK_MTU: usize = 68;

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_params() -> LinkParams {
        LinkParams {
            name: "test",
            bandwidth_bps: 8_000_000, // 1 byte/µs
            propagation: Duration::from_millis(1),
            jitter: Duration::ZERO,
            loss: 0.0,
            corruption: 0.0,
            mtu: 1500,
            queue_limit: 4,
        }
    }

    #[test]
    fn tx_time_scales_with_size_and_rate() {
        let params = quiet_params();
        assert_eq!(params.tx_time(1000), Duration::from_micros(1000));
        let slow = LinkParams {
            bandwidth_bps: 8_000,
            ..params
        };
        assert_eq!(slow.tx_time(1000), Duration::from_secs(1));
        // Rounds up, never zero.
        assert_eq!(params.tx_time(0), Duration::from_micros(1));
    }

    #[test]
    fn delivery_includes_serialization_and_propagation() {
        let mut link = Link::new(quiet_params());
        let mut rng = Rng::from_seed(1);
        let mut frame = vec![0u8; 1000];
        match link.transmit(Instant::ZERO, &mut frame, &mut rng) {
            LinkOutcome::Delivered { at, corrupted } => {
                assert_eq!(at, Instant::from_micros(1000) + Duration::from_millis(1));
                assert!(!corrupted);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn back_to_back_frames_queue_behind_each_other() {
        let mut link = Link::new(quiet_params());
        let mut rng = Rng::from_seed(1);
        let mut first = vec![0u8; 1000];
        let mut second = vec![0u8; 1000];
        let t1 = match link.transmit(Instant::ZERO, &mut first, &mut rng) {
            LinkOutcome::Delivered { at, .. } => at,
            other => panic!("{other:?}"),
        };
        let t2 = match link.transmit(Instant::ZERO, &mut second, &mut rng) {
            LinkOutcome::Delivered { at, .. } => at,
            other => panic!("{other:?}"),
        };
        assert_eq!(t2 - t1, Duration::from_micros(1000));
    }

    #[test]
    fn queue_overflow_drops_tail() {
        let mut link = Link::new(quiet_params()); // queue_limit 4
        let mut rng = Rng::from_seed(1);
        let mut outcomes = Vec::new();
        for _ in 0..6 {
            let mut frame = vec![0u8; 1000];
            outcomes.push(link.transmit(Instant::ZERO, &mut frame, &mut rng));
        }
        let drops = outcomes
            .iter()
            .filter(|o| matches!(o, LinkOutcome::Dropped(DropReason::QueueFull)))
            .count();
        assert_eq!(drops, 2);
        assert_eq!(link.stats().overflowed, 2);
        assert_eq!(link.queue_depth(Instant::ZERO), 4);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut link = Link::new(quiet_params());
        let mut rng = Rng::from_seed(1);
        for _ in 0..4 {
            let mut frame = vec![0u8; 1000];
            link.transmit(Instant::ZERO, &mut frame, &mut rng);
        }
        // After all four serialize (4 ms), the queue is empty again.
        let later = Instant::from_millis(5);
        let mut frame = vec![0u8; 1000];
        assert!(matches!(
            link.transmit(later, &mut frame, &mut rng),
            LinkOutcome::Delivered { .. }
        ));
        assert_eq!(link.queue_depth(Instant::from_millis(100)), 0);
    }

    #[test]
    fn oversized_frame_refused() {
        let mut link = Link::new(quiet_params());
        let mut rng = Rng::from_seed(1);
        let mut frame = vec![0u8; 1501];
        assert_eq!(
            link.transmit(Instant::ZERO, &mut frame, &mut rng),
            LinkOutcome::Dropped(DropReason::TooBig)
        );
        assert_eq!(link.stats().oversized, 1);
    }

    #[test]
    fn down_link_drops_everything() {
        let mut link = Link::new(quiet_params());
        let mut rng = Rng::from_seed(1);
        link.set_up(false);
        assert!(!link.is_up());
        let mut frame = vec![0u8; 100];
        assert_eq!(
            link.transmit(Instant::ZERO, &mut frame, &mut rng),
            LinkOutcome::Dropped(DropReason::LinkDown)
        );
        link.set_up(true);
        assert!(matches!(
            link.transmit(Instant::ZERO, &mut frame, &mut rng),
            LinkOutcome::Delivered { .. }
        ));
    }

    #[test]
    fn lossy_link_loses_roughly_p() {
        let mut link = Link::new(LinkParams {
            loss: 0.2,
            queue_limit: 100_000,
            ..quiet_params()
        });
        let mut rng = Rng::from_seed(99);
        let mut now = Instant::ZERO;
        let mut lost = 0;
        for _ in 0..10_000 {
            let mut frame = vec![0u8; 100];
            if matches!(
                link.transmit(now, &mut frame, &mut rng),
                LinkOutcome::Dropped(DropReason::Loss)
            ) {
                lost += 1;
            }
            now += Duration::from_millis(1);
        }
        assert!((1_800..2_200).contains(&lost), "lost {lost}");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut link = Link::new(LinkParams {
            corruption: 1.0,
            ..quiet_params()
        });
        let mut rng = Rng::from_seed(5);
        let original = vec![0xAAu8; 64];
        let mut frame = original.clone();
        match link.transmit(Instant::ZERO, &mut frame, &mut rng) {
            LinkOutcome::Delivered { corrupted, .. } => assert!(corrupted),
            other => panic!("{other:?}"),
        }
        let differing_bits: u32 = original
            .iter()
            .zip(&frame)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(differing_bits, 1);
        assert_eq!(link.stats().corrupted, 1);
    }

    #[test]
    fn taking_link_down_clears_queue() {
        let mut link = Link::new(quiet_params());
        let mut rng = Rng::from_seed(1);
        for _ in 0..3 {
            let mut frame = vec![0u8; 1000];
            link.transmit(Instant::ZERO, &mut frame, &mut rng);
        }
        link.set_up(false);
        assert_eq!(link.queue_depth(Instant::ZERO), 0);
    }

    #[test]
    fn preset_classes_have_sane_params() {
        for class in [
            LinkClass::EthernetLan,
            LinkClass::ArpanetTrunk,
            LinkClass::T1Terrestrial,
            LinkClass::Satellite,
            LinkClass::PacketRadio,
            LinkClass::SlipLine,
            LinkClass::ModernLan,
        ] {
            let params = class.params();
            assert!(params.bandwidth_bps > 0);
            assert!(params.mtu >= MIN_LINK_MTU, "{:?}", class);
            assert!(params.queue_limit >= 1);
            assert!((0.0..1.0).contains(&params.loss));
            // Building a link must not panic.
            let _ = Link::of_class(class);
        }
        // The architecture's "variety": MTUs genuinely differ.
        assert_ne!(
            LinkClass::EthernetLan.params().mtu,
            LinkClass::SlipLine.params().mtu
        );
        // Satellite has order-of-magnitude larger delay than LAN.
        assert!(
            LinkClass::Satellite.params().propagation
                > LinkClass::EthernetLan.params().propagation * 100
        );
    }

    #[test]
    fn degrade_overrides_and_restore_recovers_baseline() {
        let mut link = Link::new(LinkParams {
            loss: 0.001,
            corruption: 0.002,
            ..quiet_params()
        });
        assert!(!link.is_degraded());
        link.degrade(Some(1.0), None);
        assert!(link.is_degraded());
        assert_eq!(link.params().loss, 1.0);
        assert_eq!(link.params().corruption, 0.002, "untouched field kept");
        // Stacked degradation still restores to the original baseline.
        link.degrade(None, Some(0.5));
        link.restore();
        assert!(!link.is_degraded());
        assert_eq!(link.params().loss, 0.001);
        assert_eq!(link.params().corruption, 0.002);
        // Restore without degrade is a no-op.
        link.restore();
        assert_eq!(link.params().loss, 0.001);
    }

    #[test]
    fn delay_spike_slows_delivery_and_restore_recovers() {
        let mut link = Link::new(quiet_params()); // 1 ms propagation
        let mut rng = Rng::from_seed(1);
        link.delay_spike(Duration::from_millis(150), Duration::ZERO);
        assert!(link.is_delay_spiked());
        let mut frame = vec![0u8; 1000];
        match link.transmit(Instant::ZERO, &mut frame, &mut rng) {
            LinkOutcome::Delivered { at, .. } => {
                // 1 ms serialization + (1 + 150) ms propagation.
                assert_eq!(at, Instant::from_millis(152));
            }
            other => panic!("{other:?}"),
        }
        // A second spike rebases on the original 1 ms, not 151 ms.
        link.delay_spike(Duration::from_millis(10), Duration::ZERO);
        assert_eq!(link.params().propagation, Duration::from_millis(11));
        link.restore_delay();
        assert!(!link.is_delay_spiked());
        assert_eq!(link.params().propagation, Duration::from_millis(1));
        // Restore without a spike is a no-op.
        link.restore_delay();
        assert_eq!(link.params().propagation, Duration::from_millis(1));
    }

    #[test]
    fn spiked_jitter_reorders_back_to_back_frames() {
        // Jitter (80 ms) far exceeds packet spacing (1 ms serialization):
        // some later frame must arrive before an earlier one.
        let mut link = Link::new(quiet_params());
        link.delay_spike(Duration::ZERO, Duration::from_millis(80));
        let mut rng = Rng::from_seed(7);
        let mut arrivals = Vec::new();
        for i in 0..16u64 {
            let mut frame = vec![0u8; 1000];
            match link.transmit(Instant::from_millis(i * 2), &mut frame, &mut rng) {
                LinkOutcome::Delivered { at, .. } => arrivals.push(at),
                LinkOutcome::Dropped(_) => {}
            }
        }
        assert!(
            arrivals.windows(2).any(|w| w[1] < w[0]),
            "no reordering observed: {arrivals:?}"
        );
    }

    #[test]
    fn blackholed_link_eats_everything_silently() {
        let mut link = Link::new(quiet_params());
        link.degrade(Some(1.0), None);
        let mut rng = Rng::from_seed(3);
        let mut now = Instant::ZERO;
        for _ in 0..32 {
            let mut frame = vec![0u8; 100];
            assert_eq!(
                link.transmit(now, &mut frame, &mut rng),
                LinkOutcome::Dropped(DropReason::Loss)
            );
            now += Duration::from_millis(1);
        }
        // The link still *looks* up — that is the point.
        assert!(link.is_up());
    }

    #[test]
    #[should_panic(expected = "MTU below architecture minimum")]
    fn tiny_mtu_refused() {
        let _ = Link::new(LinkParams {
            mtu: 40,
            ..quiet_params()
        });
    }
}
