//! libpcap capture files (the classic 24-byte-header format).
//!
//! Every node in a catenet simulation can attach a `PcapWriter` to its
//! interface, producing traces readable by Wireshark/tcpdump — the same
//! observability workflow smoltcp's examples provide.

use crate::time::Instant;
use std::io::{self, Write};

/// The link type recorded in the capture header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkType {
    /// LINKTYPE_ETHERNET (1): frames start with an Ethernet II header.
    Ethernet,
    /// LINKTYPE_RAW (101): frames start with an IPv4 header.
    RawIp,
}

impl LinkType {
    fn code(self) -> u32 {
        match self {
            LinkType::Ethernet => 1,
            LinkType::RawIp => 101,
        }
    }
}

/// A pcap stream writer.
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    sink: W,
    packets: u64,
}

const MAGIC: u32 = 0xa1b2_c3d9; // microsecond-resolution magic (big-endianized below)
const SNAPLEN: u32 = 65_535;

impl<W: Write> PcapWriter<W> {
    /// Create a writer and emit the global header.
    pub fn new(mut sink: W, link_type: LinkType) -> io::Result<PcapWriter<W>> {
        // Standard magic 0xa1b2c3d4; we write little-endian fields.
        sink.write_all(&0xa1b2_c3d4u32.to_le_bytes())?;
        sink.write_all(&2u16.to_le_bytes())?; // major
        sink.write_all(&4u16.to_le_bytes())?; // minor
        sink.write_all(&0i32.to_le_bytes())?; // thiszone
        sink.write_all(&0u32.to_le_bytes())?; // sigfigs
        sink.write_all(&SNAPLEN.to_le_bytes())?;
        sink.write_all(&link_type.code().to_le_bytes())?;
        let _ = MAGIC; // documented above; kept for reference
        Ok(PcapWriter { sink, packets: 0 })
    }

    /// Record one packet observed at virtual time `at`.
    pub fn record(&mut self, at: Instant, data: &[u8]) -> io::Result<()> {
        let micros = at.total_micros();
        let secs = (micros / 1_000_000) as u32;
        let frac = (micros % 1_000_000) as u32;
        let len = data.len().min(SNAPLEN as usize) as u32;
        self.sink.write_all(&secs.to_le_bytes())?;
        self.sink.write_all(&frac.to_le_bytes())?;
        self.sink.write_all(&len.to_le_bytes())?;
        self.sink.write_all(&(data.len() as u32).to_le_bytes())?;
        self.sink.write_all(&data[..len as usize])?;
        self.packets += 1;
        Ok(())
    }

    /// Number of packets recorded.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Flush and return the underlying sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_is_24_bytes_and_well_formed() {
        let writer = PcapWriter::new(Vec::new(), LinkType::RawIp).unwrap();
        let buf = writer.finish().unwrap();
        assert_eq!(buf.len(), 24);
        assert_eq!(&buf[0..4], &0xa1b2_c3d4u32.to_le_bytes());
        assert_eq!(&buf[20..24], &101u32.to_le_bytes());
    }

    #[test]
    fn records_carry_timestamp_and_length() {
        let mut writer = PcapWriter::new(Vec::new(), LinkType::Ethernet).unwrap();
        writer
            .record(Instant::from_micros(1_500_000), &[0xAB; 10])
            .unwrap();
        assert_eq!(writer.packets(), 1);
        let buf = writer.finish().unwrap();
        // Global header (24) + record header (16) + data (10).
        assert_eq!(buf.len(), 24 + 16 + 10);
        assert_eq!(&buf[24..28], &1u32.to_le_bytes()); // 1 second
        assert_eq!(&buf[28..32], &500_000u32.to_le_bytes()); // 0.5 s
        assert_eq!(&buf[32..36], &10u32.to_le_bytes()); // captured length
        assert_eq!(&buf[36..40], &10u32.to_le_bytes()); // original length
        assert_eq!(&buf[40..50], &[0xAB; 10]);
    }

    #[test]
    fn multiple_records_append() {
        let mut writer = PcapWriter::new(Vec::new(), LinkType::RawIp).unwrap();
        for i in 0..5u8 {
            writer
                .record(Instant::from_millis(u64::from(i)), &[i; 4])
                .unwrap();
        }
        assert_eq!(writer.packets(), 5);
        let buf = writer.finish().unwrap();
        assert_eq!(buf.len(), 24 + 5 * (16 + 4));
    }
}
