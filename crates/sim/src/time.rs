//! Virtual time: integer microseconds since simulation start.
//!
//! Modeled on `std::time` and smoltcp's `time` module, but fully virtual —
//! the simulator, not the wall clock, advances it. Integer microseconds
//! make every timestamp exactly representable and every run reproducible.

/// A point in virtual time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instant {
    micros: u64,
}

impl Instant {
    /// The simulation epoch.
    pub const ZERO: Instant = Instant { micros: 0 };
    /// The farthest representable future; used as an "idle" sentinel.
    pub const FAR_FUTURE: Instant = Instant { micros: u64::MAX };

    /// Construct from microseconds.
    pub const fn from_micros(micros: u64) -> Instant {
        Instant { micros }
    }

    /// Construct from milliseconds.
    pub const fn from_millis(millis: u64) -> Instant {
        Instant {
            micros: millis * 1_000,
        }
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Instant {
        Instant {
            micros: secs * 1_000_000,
        }
    }

    /// Microseconds since the epoch.
    pub const fn total_micros(&self) -> u64 {
        self.micros
    }

    /// Milliseconds since the epoch (truncated).
    pub const fn total_millis(&self) -> u64 {
        self.micros / 1_000
    }

    /// Seconds since the epoch, as a float (for display and statistics).
    pub fn secs_f64(&self) -> f64 {
        self.micros as f64 / 1e6
    }

    /// The duration elapsed since an earlier instant. Saturates to zero
    /// if `earlier` is actually later.
    pub fn duration_since(&self, earlier: Instant) -> Duration {
        Duration::from_micros(self.micros.saturating_sub(earlier.micros))
    }

    /// Checked addition of a duration.
    pub fn checked_add(&self, d: Duration) -> Option<Instant> {
        self.micros.checked_add(d.micros).map(Instant::from_micros)
    }
}

impl core::ops::Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant::from_micros(self.micros.saturating_add(rhs.micros))
    }
}

impl core::ops::AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl core::ops::Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, rhs: Duration) -> Instant {
        Instant::from_micros(self.micros.saturating_sub(rhs.micros))
    }
}

impl core::ops::Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        self.duration_since(rhs)
    }
}

impl core::fmt::Display for Instant {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}.{:06}s", self.micros / 1_000_000, self.micros % 1_000_000)
    }
}

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Duration {
    micros: u64,
}

impl Duration {
    /// The zero duration.
    pub const ZERO: Duration = Duration { micros: 0 };

    /// Construct from microseconds.
    pub const fn from_micros(micros: u64) -> Duration {
        Duration { micros }
    }

    /// Construct from milliseconds.
    pub const fn from_millis(millis: u64) -> Duration {
        Duration {
            micros: millis * 1_000,
        }
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Duration {
        Duration {
            micros: secs * 1_000_000,
        }
    }

    /// Construct from fractional seconds (rounding to the nearest µs).
    pub fn from_secs_f64(secs: f64) -> Duration {
        debug_assert!(secs >= 0.0, "negative duration");
        Duration {
            micros: (secs * 1e6).round() as u64,
        }
    }

    /// Total microseconds.
    pub const fn total_micros(&self) -> u64 {
        self.micros
    }

    /// Total milliseconds (truncated).
    pub const fn total_millis(&self) -> u64 {
        self.micros / 1_000
    }

    /// The duration as fractional seconds.
    pub fn secs_f64(&self) -> f64 {
        self.micros as f64 / 1e6
    }

    /// Whether this is the zero duration.
    pub const fn is_zero(&self) -> bool {
        self.micros == 0
    }
}

impl core::ops::Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration::from_micros(self.micros.saturating_add(rhs.micros))
    }
}

impl core::ops::AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl core::ops::Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration::from_micros(self.micros.saturating_sub(rhs.micros))
    }
}

impl core::ops::Mul<u32> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u32) -> Duration {
        Duration::from_micros(self.micros.saturating_mul(u64::from(rhs)))
    }
}

impl core::ops::Div<u32> for Duration {
    type Output = Duration;
    fn div(self, rhs: u32) -> Duration {
        Duration::from_micros(self.micros / u64::from(rhs))
    }
}

impl core::fmt::Display for Duration {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.micros >= 1_000_000 {
            write!(f, "{:.3}s", self.secs_f64())
        } else if self.micros >= 1_000 {
            write!(f, "{:.3}ms", self.micros as f64 / 1e3)
        } else {
            write!(f, "{}µs", self.micros)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Instant::from_secs(2), Instant::from_millis(2_000));
        assert_eq!(Instant::from_millis(3), Instant::from_micros(3_000));
        assert_eq!(Duration::from_secs(1).total_micros(), 1_000_000);
        assert_eq!(Duration::from_secs_f64(0.0015), Duration::from_micros(1_500));
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = Instant::from_millis(100);
        let t1 = t0 + Duration::from_millis(50);
        assert_eq!(t1.total_millis(), 150);
        assert_eq!(t1 - t0, Duration::from_millis(50));
        assert_eq!(t0 - t1, Duration::ZERO); // saturating
        assert_eq!(t1 - Duration::from_millis(150), Instant::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let d = Duration::from_millis(10);
        assert_eq!(d * 3, Duration::from_millis(30));
        assert_eq!(d / 4, Duration::from_micros(2_500));
        assert_eq!(d + d, Duration::from_millis(20));
        assert_eq!(d - Duration::from_millis(30), Duration::ZERO);
        assert!(Duration::ZERO.is_zero());
    }

    #[test]
    fn ordering() {
        assert!(Instant::from_micros(5) < Instant::from_micros(6));
        assert!(Instant::FAR_FUTURE > Instant::from_secs(1_000_000));
        assert!(Duration::from_millis(1) < Duration::from_millis(2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Duration::from_micros(5).to_string(), "5µs");
        assert_eq!(Duration::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(Duration::from_millis(2_500).to_string(), "2.500s");
        assert_eq!(Instant::from_micros(1_000_001).to_string(), "1.000001s");
    }

    #[test]
    fn saturation_at_extremes() {
        let far = Instant::FAR_FUTURE;
        assert_eq!(far + Duration::from_secs(1), Instant::FAR_FUTURE);
        assert!(far.checked_add(Duration::from_secs(1)).is_none());
        assert!(Instant::ZERO.checked_add(Duration::from_secs(1)).is_some());
    }
}
