//! The discrete-event scheduler.
//!
//! A single totally ordered queue of `(time, sequence, event)` entries
//! with two interchangeable backends behind [`SchedulerKind`]: the
//! original `BinaryHeap` (O(log n) per operation) and a windowed timer
//! wheel ([`crate::wheel`], O(1) amortized). Both implement the exact
//! same ordering contract, proven equivalent by the differential
//! harness in [`crate::diffsched`]; the wheel is the default because it
//! scales to the hundreds-of-gateways topologies of experiment E13.
//!
//! ## The ordering contract
//!
//! Every experiment in `EXPERIMENTS.md` rests on these three clauses,
//! which are pinned by regression tests below against *both* backends:
//!
//! 1. **Time order.** Events pop in non-decreasing `at` order, and the
//!    clock (`now`) advances to each popped event's timestamp.
//! 2. **FIFO ties.** Events scheduled for the same instant pop in
//!    insertion order (strictly increasing `seq`). Nothing may reorder
//!    two same-instant events, ever.
//! 3. **Expired-timer clamp.** Scheduling in the past is clamped to
//!    `now` — the simulated world has no time machine, and clamping
//!    (rather than panicking) mirrors how real stacks treat
//!    already-expired timers. A clamped event obeys clause 2 at its
//!    *clamped* time: it lands after every event already pending at
//!    `now`, because its sequence number is younger.

use crate::time::Instant;
use crate::wheel::{TimerWheel, WheelStats};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which event-queue implementation a [`Scheduler`] runs on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// The original `BinaryHeap` of `(at, seq, event)` entries.
    Heap,
    /// The windowed timer wheel with an overflow map for far timers.
    #[default]
    Wheel,
}

impl SchedulerKind {
    /// Stable lowercase name, used in reports and `BENCH_e13.json`.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Heap => "heap",
            SchedulerKind::Wheel => "wheel",
        }
    }

    /// Both kinds, in reporting order.
    pub fn all() -> [SchedulerKind; 2] {
        [SchedulerKind::Heap, SchedulerKind::Wheel]
    }
}

/// One recorded scheduler operation (see [`Scheduler::set_trace`]).
///
/// A trace captured from a live simulation can be replayed against any
/// backend, which is how E13 measures substrate throughput on a *real*
/// event mix rather than a synthetic one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// `schedule_at` with the post-clamp absolute time in microseconds.
    Schedule(u64),
    /// `pop` (which returned an event).
    Pop,
}

/// Aggregate counters describing a scheduler's life so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Events accepted by `schedule_at`.
    pub scheduled: u64,
    /// Events popped.
    pub processed: u64,
    /// Events currently pending.
    pub pending: usize,
    /// Wheel-only internals (zero for the heap backend).
    pub wheel: WheelStats,
}

struct Entry<E> {
    at: Instant,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

// The wheel's inline bitmaps make this variant ~1.5 kB. One scheduler
// exists per network and it is never moved after construction, so
// inline storage (no pointer chase on the hottest path in the
// simulator) is the right trade.
#[allow(clippy::large_enum_variant)]
enum Backend<E> {
    Heap(BinaryHeap<Entry<E>>),
    Wheel(TimerWheel<E>),
}

/// A discrete-event scheduler over events of type `E`.
pub struct Scheduler<E> {
    backend: Backend<E>,
    now: Instant,
    seq: u64,
    processed: u64,
    scheduled: u64,
    trace: Option<Vec<TraceOp>>,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Scheduler<E> {
        Scheduler::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler at time zero, on the default backend (wheel).
    pub fn new() -> Scheduler<E> {
        Scheduler::with_kind(SchedulerKind::default())
    }

    /// An empty scheduler at time zero on the named backend.
    pub fn with_kind(kind: SchedulerKind) -> Scheduler<E> {
        Scheduler {
            backend: match kind {
                SchedulerKind::Heap => Backend::Heap(BinaryHeap::new()),
                SchedulerKind::Wheel => Backend::Wheel(TimerWheel::new()),
            },
            now: Instant::ZERO,
            seq: 0,
            processed: 0,
            scheduled: 0,
            trace: None,
        }
    }

    /// Which backend this scheduler runs on.
    pub fn kind(&self) -> SchedulerKind {
        match self.backend {
            Backend::Heap(_) => SchedulerKind::Heap,
            Backend::Wheel(_) => SchedulerKind::Wheel,
        }
    }

    /// The current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Total events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(heap) => heap.len(),
            Backend::Wheel(wheel) => wheel.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime counters (scheduled, processed, pending, wheel internals).
    pub fn stats(&self) -> SchedStats {
        SchedStats {
            scheduled: self.scheduled,
            processed: self.processed,
            pending: self.len(),
            wheel: match &self.backend {
                Backend::Heap(_) => WheelStats::default(),
                Backend::Wheel(wheel) => wheel.stats(),
            },
        }
    }

    /// Start (or stop) recording a [`TraceOp`] log of every schedule and
    /// pop. Used by E13 to capture a real workload's event mix for
    /// backend-to-backend replay.
    pub fn set_trace(&mut self, on: bool) {
        self.trace = if on { Some(Vec::new()) } else { None };
    }

    /// Take the recorded trace (empty if tracing was never enabled).
    pub fn take_trace(&mut self) -> Vec<TraceOp> {
        self.trace.take().unwrap_or_default()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to `now` — the simulated world
    /// has no time machine, and clamping (rather than panicking) mirrors
    /// how real stacks treat already-expired timers.
    pub fn schedule_at(&mut self, at: Instant, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.scheduled += 1;
        if let Some(trace) = &mut self.trace {
            trace.push(TraceOp::Schedule(at.total_micros()));
        }
        match &mut self.backend {
            Backend::Heap(heap) => heap.push(Entry { at, seq, event }),
            Backend::Wheel(wheel) => wheel.insert(at.total_micros(), seq, event),
        }
    }

    /// Schedule `event` after a delay from the current time.
    pub fn schedule_after(&mut self, delay: crate::time::Duration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// The timestamp of the next pending event.
    pub fn peek_time(&self) -> Option<Instant> {
        match &self.backend {
            Backend::Heap(heap) => heap.peek().map(|entry| entry.at),
            Backend::Wheel(wheel) => wheel.peek_min().map(Instant::from_micros),
        }
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Instant, E)> {
        let (at, event) = match &mut self.backend {
            Backend::Heap(heap) => {
                let entry = heap.pop()?;
                (entry.at, entry.event)
            }
            Backend::Wheel(wheel) => {
                let entry = wheel.pop()?;
                (Instant::from_micros(entry.at), entry.event)
            }
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.processed += 1;
        if let Some(trace) = &mut self.trace {
            trace.push(TraceOp::Pop);
        }
        Some((at, event))
    }

    /// Pop the next event only if it is due exactly at `at`. The batched
    /// delivery loop uses this to drain a whole instant in one pass.
    pub fn pop_due(&mut self, at: Instant) -> Option<E> {
        if self.peek_time() == Some(at) {
            self.pop().map(|(_, event)| event)
        } else {
            None
        }
    }

    /// Drop every pending event (used when tearing a network down).
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Heap(heap) => heap.clear(),
            Backend::Wheel(wheel) => wheel.clear(),
        }
    }

    /// Consume the scheduler and return every pending event in pop
    /// order. Used when a network splits into shard lanes: the boot
    /// scheduler's pending kicks are redistributed to per-lane
    /// schedulers without counting as processed work (the drain
    /// bypasses the `processed` counter and the trace log).
    pub fn into_drain(mut self) -> Vec<(Instant, E)> {
        self.trace = None;
        let mut drained = Vec::with_capacity(self.len());
        while let Some(entry) = self.pop() {
            drained.push(entry);
        }
        drained
    }
}

impl<E> core::fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Scheduler")
            .field("kind", &self.kind())
            .field("now", &self.now)
            .field("pending", &self.len())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    /// Run a closure against a fresh scheduler of each kind: every
    /// contract clause must hold on both backends.
    fn on_both(check: impl Fn(Scheduler<&'static str>)) {
        for kind in SchedulerKind::all() {
            check(Scheduler::with_kind(kind));
        }
    }

    fn on_both_usize(check: impl Fn(Scheduler<usize>)) {
        for kind in SchedulerKind::all() {
            check(Scheduler::with_kind(kind));
        }
    }

    #[test]
    fn default_kind_is_the_wheel() {
        let sched: Scheduler<()> = Scheduler::new();
        assert_eq!(sched.kind(), SchedulerKind::Wheel);
    }

    #[test]
    fn pops_in_time_order() {
        on_both(|mut sched| {
            sched.schedule_at(Instant::from_millis(30), "c");
            sched.schedule_at(Instant::from_millis(10), "a");
            sched.schedule_at(Instant::from_millis(20), "b");
            let order: Vec<_> = std::iter::from_fn(|| sched.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["a", "b", "c"]);
        });
    }

    #[test]
    fn ties_resolve_in_insertion_order() {
        on_both_usize(|mut sched| {
            let t = Instant::from_millis(5);
            for i in 0..10 {
                sched.schedule_at(t, i);
            }
            let order: Vec<_> = std::iter::from_fn(|| sched.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, (0..10).collect::<Vec<_>>());
        });
    }

    #[test]
    fn clock_advances_with_pop() {
        on_both(|mut sched| {
            sched.schedule_at(Instant::from_millis(7), "x");
            assert_eq!(sched.now(), Instant::ZERO);
            sched.pop().unwrap();
            assert_eq!(sched.now(), Instant::from_millis(7));
            assert_eq!(sched.processed(), 1);
        });
    }

    #[test]
    fn schedule_in_past_clamps_to_now() {
        on_both(|mut sched| {
            sched.schedule_at(Instant::from_millis(10), "later");
            sched.pop().unwrap();
            sched.schedule_at(Instant::from_millis(3), "past");
            let (at, event) = sched.pop().unwrap();
            assert_eq!(event, "past");
            assert_eq!(at, Instant::from_millis(10));
        });
    }

    #[test]
    fn clamped_event_queues_behind_events_already_pending_at_now() {
        // The clamp contract, clause 3: an already-expired timer lands
        // *after* everything pending at `now`, because FIFO ties break
        // on the younger sequence number. Pinned on both backends — the
        // heap-vs-wheel equivalence proof depends on it.
        on_both(|mut sched| {
            sched.schedule_at(Instant::from_millis(10), "first@10");
            sched.schedule_at(Instant::from_millis(10), "second@10");
            let (_, first) = sched.pop().unwrap();
            assert_eq!(first, "first@10");
            // now == 10ms; schedule far in the past. It must clamp to
            // 10ms and queue behind "second@10".
            sched.schedule_at(Instant::from_millis(1), "expired");
            sched.schedule_at(Instant::from_millis(2), "more-expired");
            let order: Vec<_> = std::iter::from_fn(|| sched.pop()).collect();
            assert_eq!(
                order,
                vec![
                    (Instant::from_millis(10), "second@10"),
                    (Instant::from_millis(10), "expired"),
                    (Instant::from_millis(10), "more-expired"),
                ]
            );
        });
    }

    #[test]
    fn clamped_event_interleaves_fifo_with_fresh_same_instant_events() {
        // Clamped ("expired") and genuinely-scheduled events at the same
        // instant share one FIFO order, decided purely by insertion.
        on_both(|mut sched| {
            sched.schedule_at(Instant::from_millis(5), "opener");
            sched.pop().unwrap(); // now = 5ms
            sched.schedule_at(Instant::from_millis(1), "clamped-a");
            sched.schedule_at(Instant::from_millis(5), "fresh");
            sched.schedule_at(Instant::ZERO, "clamped-b");
            let order: Vec<_> = std::iter::from_fn(|| sched.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["clamped-a", "fresh", "clamped-b"]);
        });
    }

    #[test]
    fn schedule_after_uses_current_time() {
        on_both(|mut sched| {
            sched.schedule_at(Instant::from_millis(100), "first");
            sched.pop().unwrap();
            sched.schedule_after(Duration::from_millis(50), "second");
            let (at, _) = sched.pop().unwrap();
            assert_eq!(at, Instant::from_millis(150));
        });
    }

    #[test]
    fn peek_does_not_advance() {
        on_both(|mut sched| {
            sched.schedule_at(Instant::from_millis(9), "x");
            assert_eq!(sched.peek_time(), Some(Instant::from_millis(9)));
            assert_eq!(sched.now(), Instant::ZERO);
            assert_eq!(sched.len(), 1);
            assert!(!sched.is_empty());
        });
    }

    #[test]
    fn clear_empties_queue() {
        on_both_usize(|mut sched| {
            for i in 0..5 {
                sched.schedule_at(Instant::from_millis(i as u64), i);
            }
            sched.clear();
            assert!(sched.is_empty());
            assert!(sched.pop().is_none());
        });
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        // An event handler scheduling new events mid-run keeps total order.
        for kind in SchedulerKind::all() {
            let mut sched: Scheduler<u32> = Scheduler::with_kind(kind);
            sched.schedule_at(Instant::from_millis(1), 1u32);
            sched.schedule_at(Instant::from_millis(5), 5u32);
            let mut seen = Vec::new();
            while let Some((at, e)) = sched.pop() {
                seen.push(e);
                if e == 1 {
                    sched.schedule_at(at + Duration::from_millis(2), 3u32);
                }
            }
            assert_eq!(seen, vec![1, 3, 5]);
        }
    }

    #[test]
    fn pop_due_drains_only_the_named_instant() {
        on_both(|mut sched| {
            let t = Instant::from_millis(4);
            sched.schedule_at(t, "a");
            sched.schedule_at(t, "b");
            sched.schedule_at(Instant::from_millis(9), "later");
            assert_eq!(sched.pop().unwrap().1, "a");
            assert_eq!(sched.pop_due(t), Some("b"));
            assert_eq!(sched.pop_due(t), None, "9ms event is not due at 4ms");
            assert_eq!(sched.pop().unwrap().1, "later");
        });
    }

    #[test]
    fn trace_records_post_clamp_times_and_pops() {
        let mut sched: Scheduler<&str> = Scheduler::new();
        sched.set_trace(true);
        sched.schedule_at(Instant::from_millis(2), "a");
        sched.pop().unwrap();
        sched.schedule_at(Instant::ZERO, "clamped");
        sched.pop().unwrap();
        let trace = sched.take_trace();
        assert_eq!(
            trace,
            vec![
                TraceOp::Schedule(2_000),
                TraceOp::Pop,
                TraceOp::Schedule(2_000), // clamped to now, not zero
                TraceOp::Pop,
            ]
        );
    }

    #[test]
    fn stats_count_scheduled_and_processed() {
        for kind in SchedulerKind::all() {
            let mut sched: Scheduler<u32> = Scheduler::with_kind(kind);
            for i in 0..10 {
                sched.schedule_at(Instant::from_millis(i), i as u32);
            }
            for _ in 0..4 {
                sched.pop();
            }
            let stats = sched.stats();
            assert_eq!(stats.scheduled, 10);
            assert_eq!(stats.processed, 4);
            assert_eq!(stats.pending, 6);
        }
    }
}
