//! The discrete-event scheduler.
//!
//! A single totally ordered queue of `(time, sequence, event)` entries.
//! Ties at the same instant resolve in insertion order, which — together
//! with the seeded [`crate::Rng`] — makes whole-network simulations
//! reproducible: the property every experiment in `EXPERIMENTS.md` rests on.

use crate::time::Instant;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: Instant,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event scheduler over events of type `E`.
#[derive(Default)]
pub struct Scheduler<E> {
    heap: BinaryHeap<Entry<E>>,
    now: Instant,
    seq: u64,
    processed: u64,
}

impl<E> Scheduler<E> {
    /// An empty scheduler at time zero.
    pub fn new() -> Scheduler<E> {
        Scheduler {
            heap: BinaryHeap::new(),
            now: Instant::ZERO,
            seq: 0,
            processed: 0,
        }
    }

    /// The current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Total events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to `now` — the simulated world
    /// has no time machine, and clamping (rather than panicking) mirrors
    /// how real stacks treat already-expired timers.
    pub fn schedule_at(&mut self, at: Instant, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedule `event` after a delay from the current time.
    pub fn schedule_after(&mut self, delay: crate::time::Duration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// The timestamp of the next pending event.
    pub fn peek_time(&self) -> Option<Instant> {
        self.heap.peek().map(|entry| entry.at)
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Instant, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "time went backwards");
        self.now = entry.at;
        self.processed += 1;
        Some((entry.at, entry.event))
    }

    /// Drop every pending event (used when tearing a network down).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> core::fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut sched = Scheduler::new();
        sched.schedule_at(Instant::from_millis(30), "c");
        sched.schedule_at(Instant::from_millis(10), "a");
        sched.schedule_at(Instant::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| sched.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_resolve_in_insertion_order() {
        let mut sched = Scheduler::new();
        let t = Instant::from_millis(5);
        for i in 0..10 {
            sched.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| sched.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut sched = Scheduler::new();
        sched.schedule_at(Instant::from_millis(7), ());
        assert_eq!(sched.now(), Instant::ZERO);
        sched.pop().unwrap();
        assert_eq!(sched.now(), Instant::from_millis(7));
        assert_eq!(sched.processed(), 1);
    }

    #[test]
    fn schedule_in_past_clamps_to_now() {
        let mut sched = Scheduler::new();
        sched.schedule_at(Instant::from_millis(10), "later");
        sched.pop().unwrap();
        sched.schedule_at(Instant::from_millis(3), "past");
        let (at, event) = sched.pop().unwrap();
        assert_eq!(event, "past");
        assert_eq!(at, Instant::from_millis(10));
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut sched = Scheduler::new();
        sched.schedule_at(Instant::from_millis(100), "first");
        sched.pop().unwrap();
        sched.schedule_after(Duration::from_millis(50), "second");
        let (at, _) = sched.pop().unwrap();
        assert_eq!(at, Instant::from_millis(150));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut sched = Scheduler::new();
        sched.schedule_at(Instant::from_millis(9), ());
        assert_eq!(sched.peek_time(), Some(Instant::from_millis(9)));
        assert_eq!(sched.now(), Instant::ZERO);
        assert_eq!(sched.len(), 1);
        assert!(!sched.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut sched = Scheduler::new();
        for i in 0..5 {
            sched.schedule_at(Instant::from_millis(i), i);
        }
        sched.clear();
        assert!(sched.is_empty());
        assert_eq!(sched.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        // An event handler scheduling new events mid-run keeps total order.
        let mut sched = Scheduler::new();
        sched.schedule_at(Instant::from_millis(1), 1u32);
        sched.schedule_at(Instant::from_millis(5), 5u32);
        let mut seen = Vec::new();
        while let Some((at, e)) = sched.pop() {
            seen.push(e);
            if e == 1 {
                sched.schedule_at(at + Duration::from_millis(2), 3u32);
            }
        }
        assert_eq!(seen, vec![1, 3, 5]);
    }
}
