//! Summary statistics for the experiment harness.
//!
//! Every experiment in `EXPERIMENTS.md` reports distributions (latency
//! percentiles, throughput across seeds); this module is the one place
//! those numbers are computed.

/// An accumulating sample set with summary accessors.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    values: Vec<f64>,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Summary {
        Summary { values: Vec::new() }
    }

    /// Build from an iterator of samples.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Summary {
        let mut s = Summary::new();
        for v in iter {
            s.record(v);
        }
        s
    }

    /// Record one sample. Non-finite samples are rejected loudly — they
    /// always indicate a harness bug, never a legitimate measurement.
    pub fn record(&mut self, value: f64) {
        assert!(value.is_finite(), "non-finite sample: {value}");
        self.values.push(value);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean, or 0 for an empty set.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Sample standard deviation (n−1 denominator), or 0 with <2 samples.
    pub fn stddev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .values
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / (self.values.len() - 1) as f64;
        var.sqrt()
    }

    /// Smallest sample, or 0 for an empty set.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min).min(f64::INFINITY)
            .pipe_finite()
    }

    /// Largest sample, or 0 for an empty set.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .pipe_finite()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank on the sorted samples.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(0.5)
    }

    /// Sum of all samples.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Borrow the raw samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

trait PipeFinite {
    fn pipe_finite(self) -> f64;
}
impl PipeFinite for f64 {
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

impl core::fmt::Display for Summary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} p50={:.3} p95={:.3} max={:.3}",
            self.count(),
            self.mean(),
            self.stddev(),
            self.min(),
            self.median(),
            self.percentile(0.95),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_all_zero() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.percentile(0.5), 0.0);
    }

    #[test]
    fn mean_and_total() {
        let s = Summary::from_iter([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.total(), 10.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn stddev_matches_hand_computation() {
        let s = Summary::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        // Sample variance of this classic set is 32/7.
        let expected = (32.0f64 / 7.0).sqrt();
        assert!((s.stddev() - expected).abs() < 1e-12);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let s = Summary::from_iter((1..=100).map(f64::from));
        assert_eq!(s.percentile(0.50), 50.0);
        assert_eq!(s.percentile(0.95), 95.0);
        assert_eq!(s.percentile(0.99), 99.0);
        assert_eq!(s.percentile(1.0), 100.0);
        assert_eq!(s.percentile(0.0), 1.0); // clamped to first rank
        assert_eq!(s.median(), 50.0);
    }

    #[test]
    fn percentile_unsorted_input() {
        let s = Summary::from_iter([9.0, 1.0, 5.0]);
        assert_eq!(s.median(), 5.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_sample_rejected() {
        Summary::new().record(f64::NAN);
    }

    #[test]
    fn display_is_stable() {
        let s = Summary::from_iter([1.0, 2.0]);
        let text = s.to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("mean=1.500"));
    }
}
