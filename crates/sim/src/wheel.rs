//! The timer-wheel backend of the scheduler: a hierarchical windowed
//! wheel — exact one-microsecond slots for the near future, a ring of
//! window buckets for the mid future, and an overflow map for far
//! timers.
//!
//! Virtual time is integer microseconds, so the wheel can afford exact
//! slots: the current *window* is an array of 2^14 one-microsecond
//! slots (≈ 16.4 ms), and every entry inside the window sits in the
//! slot matching its exact timestamp. The second level is a ring of
//! 2^11 per-window buckets covering ≈ 33.6 s of horizon — protocol
//! timers (DV periodics at 3 s, route timeouts at 18 s, TCP
//! retransmits) land here with a single O(1) array push. Only timers
//! beyond the horizon fall through to a `BTreeMap` bucketed by window
//! index. When the wheel drains a window it pages the next occupied
//! one in (found via occupancy bitmaps, skipping empty windows
//! entirely, so an idle network costs nothing to fast-forward).
//!
//! Cost model: insert is O(1) (slot or bucket push plus bitmap words;
//! the far map is effectively never hit by protocol traffic), expiry is
//! O(1) amortized (each entry is distributed into a slot at most once,
//! and the next occupied slot/window is found by scanning small
//! bitmaps). This is what replaces the `BinaryHeap`'s O(log n) per
//! operation once topologies grow to hundreds of gateways (experiment
//! E13).
//!
//! Ordering contract — identical to the heap backend, bit for bit:
//! entries pop in `(at, seq)` order, so ties at one instant resolve in
//! insertion order. Within a slot that holds exactly one timestamp,
//! FIFO follows from only ever *appending*: direct inserts append in
//! seq order, and a paged-in bucket is distributed in its own insertion
//! order before any later insert can target the same window (a far
//! bucket for a window is distributed before the L2 bucket for the same
//! window, because every far entry predates every L2 entry of that
//! window — inserts migrate from far to L2 as the horizon advances,
//! never the other way). The differential harness in
//! [`crate::diffsched`] checks this contract against the heap on random
//! interleavings.

use std::collections::{BTreeMap, VecDeque};

/// Log2 of the window width: 2^12 µs ≈ 4.1 ms per window.
const WINDOW_BITS: u32 = 12;
/// Slots per window (one per microsecond).
const SLOTS: usize = 1 << WINDOW_BITS;
/// Mask extracting the slot index from a timestamp.
const SLOT_MASK: u64 = (SLOTS as u64) - 1;
/// One `u64` of occupancy bits per 64 slots.
const LEAF_WORDS: usize = SLOTS / 64;
/// One summary bit per leaf word.
const SUMMARY_WORDS: usize = LEAF_WORDS / 64;
/// Log2 of the second-level ring: 2^13 windows ≈ 33.6 s of horizon.
const L2_BITS: u32 = 13;
/// Window buckets in the second-level ring.
const L2_WINDOWS: usize = 1 << L2_BITS;
/// Mask extracting the ring index from a window index.
const L2_MASK: u64 = (L2_WINDOWS as u64) - 1;
/// One `u64` of occupancy bits per 64 ring buckets.
const L2_WORDS: usize = L2_WINDOWS / 64;

/// A scheduled entry: absolute time, insertion sequence, payload.
pub(crate) struct WheelEntry<E> {
    pub at: u64,
    pub seq: u64,
    pub event: E,
}

/// A far-overflow bucket: every entry of one future window, in
/// insertion order, with the bucket's minimum timestamp tracked so
/// peeking never has to scan.
struct Bucket<E> {
    min_at: u64,
    entries: Vec<WheelEntry<E>>,
}

/// One exact-microsecond slot. The first entry at the instant lives
/// inline (`head`), so the dominant single-entry case touches one
/// location instead of chasing a separate heap buffer; further
/// same-instant entries spill to `rest` in insertion order. Invariant:
/// `rest` is non-empty only while `head` is occupied.
struct Slot<E> {
    rest: Vec<WheelEntry<E>>,
    head: Option<WheelEntry<E>>,
}

/// A second-level ring bucket: one future window's entries in insertion
/// order, with the minimum timestamp cached inline (same cache line as
/// the entries' `Vec` header, so an insert touches one bucket location).
struct L2Bucket<E> {
    min_at: u64,
    entries: Vec<WheelEntry<E>>,
}

/// Counters describing what the wheel has done (for E13 reporting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WheelStats {
    /// Windows paged in (from the ring or the far map).
    pub windows_paged: u64,
    /// Entries that bypassed the slots (ring buckets + far map).
    pub overflow_inserts: u64,
    /// Entries distributed from a bucket into slots.
    pub distributed: u64,
}

pub(crate) struct TimerWheel<E> {
    /// Index (timestamp >> WINDOW_BITS) of the window `slots` covers.
    cur_window: u64,
    /// The current window: exact one-microsecond slots.
    slots: Vec<Slot<E>>,
    /// Occupancy bit per slot.
    leaf: [u64; LEAF_WORDS],
    /// Occupancy bit per leaf word.
    summary: [u64; SUMMARY_WORDS],
    /// The slot currently being drained (all entries share `current_at`).
    current: VecDeque<WheelEntry<E>>,
    current_at: u64,
    /// Which slot `current`'s buffer came from; the (empty) buffer is
    /// handed back before the next slot drains, so steady-state pops
    /// allocate nothing.
    current_slot: usize,
    /// Second level: one bucket per window within the horizon, indexed
    /// by `window & L2_MASK`. A bucket holds at most one window's worth
    /// of entries at a time (the wheel never advances past an occupied
    /// bucket without draining it, so ring laps cannot mix).
    l2: Vec<L2Bucket<E>>,
    /// Occupancy bit per ring bucket.
    l2_bits: [u64; L2_WORDS],
    /// Beyond the horizon: window index → bucket.
    far: BTreeMap<u64, Bucket<E>>,
    len: usize,
    stats: WheelStats,
}

impl<E> TimerWheel<E> {
    pub fn new() -> TimerWheel<E> {
        TimerWheel {
            cur_window: 0,
            slots: (0..SLOTS)
                .map(|_| Slot {
                    head: None,
                    rest: Vec::new(),
                })
                .collect(),
            leaf: [0; LEAF_WORDS],
            summary: [0; SUMMARY_WORDS],
            current: VecDeque::new(),
            current_at: 0,
            current_slot: 0,
            l2: (0..L2_WINDOWS)
                .map(|_| L2Bucket {
                    min_at: u64::MAX,
                    entries: Vec::new(),
                })
                .collect(),
            l2_bits: [0; L2_WORDS],
            far: BTreeMap::new(),
            len: 0,
            stats: WheelStats::default(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn stats(&self) -> WheelStats {
        self.stats
    }

    /// Insert an entry. The caller (the scheduler wrapper) guarantees
    /// `at` is never earlier than the timestamp of the last popped
    /// entry, and that `seq` is strictly increasing.
    pub fn insert(&mut self, at: u64, seq: u64, event: E) {
        self.len += 1;
        // An insert at the instant being drained joins the tail of the
        // drain run — `seq` is monotonic, so appending keeps FIFO.
        if !self.current.is_empty() && at == self.current_at {
            self.current.push_back(WheelEntry { at, seq, event });
            return;
        }
        let window = at >> WINDOW_BITS;
        if window == self.cur_window {
            let slot = (at & SLOT_MASK) as usize;
            let s = &mut self.slots[slot];
            let entry = WheelEntry { at, seq, event };
            if s.head.is_none() {
                debug_assert!(s.rest.is_empty(), "rest without a head");
                s.head = Some(entry);
            } else {
                s.rest.push(entry);
            }
            self.set_bit(slot);
            return;
        }
        debug_assert!(window > self.cur_window, "insert into a past window");
        self.stats.overflow_inserts += 1;
        if window - self.cur_window < L2_WINDOWS as u64 {
            let idx = (window & L2_MASK) as usize;
            let bucket = &mut self.l2[idx];
            bucket.min_at = bucket.min_at.min(at);
            bucket.entries.push(WheelEntry { at, seq, event });
            self.l2_bits[idx / 64] |= 1u64 << (idx % 64);
        } else {
            let bucket = self.far.entry(window).or_insert(Bucket {
                min_at: u64::MAX,
                entries: Vec::new(),
            });
            bucket.min_at = bucket.min_at.min(at);
            bucket.entries.push(WheelEntry { at, seq, event });
        }
    }

    /// The earliest pending timestamp, without disturbing anything.
    pub fn peek_min(&self) -> Option<u64> {
        if !self.current.is_empty() {
            return Some(self.current_at);
        }
        if let Some(slot) = self.lowest_slot() {
            return Some((self.cur_window << WINDOW_BITS) | slot as u64);
        }
        // Every deferred bucket is in a strictly later window than any
        // slot of the current one, so this only applies when the wheel
        // proper is empty.
        let l2 = self
            .next_l2_window()
            .map(|w| self.l2[(w & L2_MASK) as usize].min_at);
        let far = self.far.first_key_value().map(|(_, bucket)| bucket.min_at);
        match (l2, far) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Remove and return the earliest entry.
    pub fn pop(&mut self) -> Option<WheelEntry<E>> {
        loop {
            if let Some(entry) = self.current.pop_front() {
                self.len -= 1;
                debug_assert_eq!(entry.at, self.current_at);
                return Some(entry);
            }
            if let Some(slot) = self.lowest_slot() {
                // The head entry pops directly — for the dominant
                // single-entry instant that's the whole slot, one
                // location touched, no buffer transfer. FIFO is
                // unaffected: a later insert at this same instant lands
                // back in this slot, which stays the lowest occupied
                // one (nothing earlier can be scheduled: the wrapper
                // clamps to now).
                if self.slots[slot].rest.is_empty() {
                    let entry = self.slots[slot].head.take().expect("occupied slot has a head");
                    self.clear_bit(slot);
                    self.len -= 1;
                    self.current_at = entry.at;
                    return Some(entry);
                }
                // Multi-entry instant: return the head now and queue
                // the spill as the drain run. First hand the exhausted
                // run buffer back to the slot it came from — both
                // Vec⇄VecDeque conversions reuse the allocation, so
                // steady state allocates nothing. The emptiness guard
                // matters: the slot can have been repopulated after the
                // run drained (an insert at `current_at` once `current`
                // is empty lands back in the slot, as can a page-in),
                // and overwriting it would drop live entries.
                if self.current.capacity() > 0 && self.slots[self.current_slot].head.is_none() {
                    debug_assert!(self.slots[self.current_slot].rest.is_empty());
                    self.slots[self.current_slot].rest =
                        Vec::from(core::mem::take(&mut self.current));
                    self.slots[self.current_slot].rest.clear();
                }
                let s = &mut self.slots[slot];
                let head = s.head.take().expect("occupied slot has a head");
                let rest = core::mem::take(&mut s.rest);
                self.clear_bit(slot);
                debug_assert!(rest.windows(2).all(|w| w[0].seq < w[1].seq));
                debug_assert!(rest.first().is_none_or(|e| head.seq < e.seq));
                self.current_at = head.at;
                self.current = VecDeque::from(rest);
                self.current_slot = slot;
                self.len -= 1;
                return Some(head);
            }
            // Current window exhausted: page in the next occupied one —
            // the earlier of the ring's next bucket and the far map's
            // first window (the same window can appear in both when
            // entries migrated from far range into ring range as the
            // horizon advanced).
            let l2_next = self.next_l2_window();
            let far_next = self.far.first_key_value().map(|(&w, _)| w);
            let window = match (l2_next, far_next) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => return None,
            };
            self.stats.windows_paged += 1;
            self.cur_window = window;
            // Far entries first: every far entry of this window was
            // inserted before every ring entry of it (see module docs),
            // so distributing far-then-ring keeps per-slot seq order.
            if far_next == Some(window) {
                let mut bucket = self.far.remove(&window).expect("key just seen");
                self.distribute(window, &mut bucket.entries);
            }
            if l2_next == Some(window) {
                let idx = (window & L2_MASK) as usize;
                let mut entries = core::mem::take(&mut self.l2[idx].entries);
                self.l2[idx].min_at = u64::MAX;
                self.l2_bits[idx / 64] &= !(1u64 << (idx % 64));
                self.distribute(window, &mut entries);
                // Hand the drained buffer back so the bucket keeps its
                // capacity across ring laps (no realloc churn).
                self.l2[idx].entries = entries;
            }
        }
    }

    /// Scatter one window's bucket into the exact slots, leaving the
    /// (empty) buffer behind for the caller to recycle.
    fn distribute(&mut self, window: u64, entries: &mut Vec<WheelEntry<E>>) {
        self.stats.distributed += entries.len() as u64;
        for entry in entries.drain(..) {
            debug_assert_eq!(entry.at >> WINDOW_BITS, window);
            let slot = (entry.at & SLOT_MASK) as usize;
            let s = &mut self.slots[slot];
            if s.head.is_none() {
                debug_assert!(s.rest.is_empty(), "rest without a head");
                s.head = Some(entry);
            } else {
                s.rest.push(entry);
            }
            self.set_bit(slot);
        }
    }

    /// Drop every pending entry. Window position is retained, so the
    /// wheel stays consistent with the owning scheduler's clock.
    pub fn clear(&mut self) {
        self.current.clear();
        self.far.clear();
        for word in 0..LEAF_WORDS {
            let mut bits = self.leaf[word];
            while bits != 0 {
                let slot = word * 64 + bits.trailing_zeros() as usize;
                self.slots[slot].head = None;
                self.slots[slot].rest.clear();
                bits &= bits - 1;
            }
            self.leaf[word] = 0;
        }
        self.summary = [0; SUMMARY_WORDS];
        for word in 0..L2_WORDS {
            let mut bits = self.l2_bits[word];
            while bits != 0 {
                let idx = word * 64 + bits.trailing_zeros() as usize;
                self.l2[idx].entries.clear();
                self.l2[idx].min_at = u64::MAX;
                bits &= bits - 1;
            }
            self.l2_bits[word] = 0;
        }
        self.len = 0;
    }

    fn set_bit(&mut self, slot: usize) {
        let word = slot / 64;
        self.leaf[word] |= 1u64 << (slot % 64);
        self.summary[word / 64] |= 1u64 << (word % 64);
    }

    fn clear_bit(&mut self, slot: usize) {
        let word = slot / 64;
        self.leaf[word] &= !(1u64 << (slot % 64));
        if self.leaf[word] == 0 {
            self.summary[word / 64] &= !(1u64 << (word % 64));
        }
    }

    /// The lowest occupied slot of the current window, via the two-level
    /// bitmap: at most four summary words, then one leaf word.
    fn lowest_slot(&self) -> Option<usize> {
        for (i, &sw) in self.summary.iter().enumerate() {
            if sw != 0 {
                let word = i * 64 + sw.trailing_zeros() as usize;
                let slot = word * 64 + self.leaf[word].trailing_zeros() as usize;
                return Some(slot);
            }
        }
        None
    }

    /// The absolute index of the next occupied ring window after
    /// `cur_window`. The ring is a circular buffer, so the scan starts
    /// just past `cur_window`'s own index and wraps; an index at or
    /// before it belongs to the next lap. (`cur_window`'s own bucket is
    /// always empty: in-window inserts go to slots, and a bucket a full
    /// lap out goes to the far map.)
    fn next_l2_window(&self) -> Option<u64> {
        let cur_idx = (self.cur_window & L2_MASK) as usize;
        let lap_base = self.cur_window - cur_idx as u64;
        if let Some(idx) = self.scan_l2(cur_idx + 1, L2_WINDOWS) {
            return Some(lap_base + idx as u64);
        }
        self.scan_l2(0, cur_idx)
            .map(|idx| lap_base + idx as u64 + L2_WINDOWS as u64)
    }

    /// First set bit of `l2_bits` in index range `[start, end)`.
    fn scan_l2(&self, start: usize, end: usize) -> Option<usize> {
        if start >= end {
            return None;
        }
        let mut word = start / 64;
        let last = (end - 1) / 64;
        let mut bits = self.l2_bits[word] & (!0u64 << (start % 64));
        loop {
            if bits != 0 {
                let idx = word * 64 + bits.trailing_zeros() as usize;
                return (idx < end).then_some(idx);
            }
            if word == last {
                return None;
            }
            word += 1;
            bits = self.l2_bits[word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut wheel = TimerWheel::new();
        wheel.insert(50, 0, "b");
        wheel.insert(10, 1, "a");
        wheel.insert(50, 2, "c");
        wheel.insert(1 << 20, 3, "far"); // beyond the first window
        let order: Vec<_> = std::iter::from_fn(|| wheel.pop()).map(|e| e.event).collect();
        assert_eq!(order, vec!["a", "b", "c", "far"]);
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn ring_buckets_page_in_preserving_fifo() {
        let mut wheel = TimerWheel::new();
        let mid = (3u64 << WINDOW_BITS) + 7; // in the L2 ring
        for seq in 0..10 {
            wheel.insert(mid, seq, seq);
        }
        assert_eq!(wheel.stats().overflow_inserts, 10);
        assert_eq!(wheel.peek_min(), Some(mid));
        let order: Vec<_> = std::iter::from_fn(|| wheel.pop()).map(|e| e.seq).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
        assert_eq!(wheel.stats().windows_paged, 1);
    }

    #[test]
    fn beyond_horizon_entries_take_the_far_map() {
        let mut wheel = TimerWheel::new();
        let beyond = (L2_WINDOWS as u64 + 5) << WINDOW_BITS;
        wheel.insert(beyond, 0, "far");
        assert_eq!(wheel.peek_min(), Some(beyond));
        assert_eq!(wheel.pop().unwrap().event, "far");
        assert!(wheel.pop().is_none());
    }

    #[test]
    fn far_entries_merge_before_ring_entries_of_the_same_window() {
        // A window can collect entries in the far map (inserted while
        // it was beyond the horizon) and then in the ring (inserted
        // after the horizon advanced past it). Same-instant entries
        // from the two stores must still pop in seq order.
        let mut wheel = TimerWheel::new();
        let window = L2_WINDOWS as u64 + 100; // beyond the horizon at t=0
        let at = (window << WINDOW_BITS) + 9;
        wheel.insert(at, 0, 0); // → far map
        // Advance the wheel into ring range of `window` by draining an
        // intermediate entry.
        let step = 200u64 << WINDOW_BITS;
        wheel.insert(step, 1, 1);
        assert_eq!(wheel.pop().unwrap().seq, 1);
        wheel.insert(at, 2, 2); // now inside the horizon → ring bucket
        wheel.insert(at, 3, 3);
        let order: Vec<_> = std::iter::from_fn(|| wheel.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![0, 2, 3]);
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn insert_at_drain_instant_joins_the_run() {
        let mut wheel = TimerWheel::new();
        wheel.insert(5, 0, 0);
        wheel.insert(5, 1, 1);
        assert_eq!(wheel.pop().unwrap().seq, 0);
        // The slot is drained; a same-instant insert must still pop
        // after the rest of the run.
        wheel.insert(5, 2, 2);
        assert_eq!(wheel.pop().unwrap().seq, 1);
        assert_eq!(wheel.pop().unwrap().seq, 2);
        assert!(wheel.pop().is_none());
    }

    #[test]
    fn repopulated_slot_survives_the_buffer_hand_back() {
        // Regression: once a run drains *empty*, a same-instant insert
        // lands back in the slot itself (the join-the-run path needs a
        // non-empty run). The exhausted run buffer must not be handed
        // back on top of those live entries.
        let mut wheel = TimerWheel::new();
        wheel.insert(5, 0, 0);
        wheel.insert(5, 1, 1);
        assert_eq!(wheel.pop().unwrap().seq, 0);
        assert_eq!(wheel.pop().unwrap().seq, 1);
        // Run exhausted. Repopulate the same slot with two entries so
        // the multi-entry drain path (where the hand-back happens) runs.
        wheel.insert(5, 2, 2);
        wheel.insert(5, 3, 3);
        assert_eq!(wheel.pop().unwrap().seq, 2);
        assert_eq!(wheel.pop().unwrap().seq, 3);
        assert!(wheel.pop().is_none());
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn single_entry_instants_pop_without_a_slot_drain() {
        // The fast path: a slot holding exactly one entry pops straight
        // out of the slot. Interleave singles with a multi-entry run to
        // make sure the two paths compose.
        let mut wheel = TimerWheel::new();
        wheel.insert(10, 0, "single-a");
        wheel.insert(20, 1, "run-a");
        wheel.insert(20, 2, "run-b");
        wheel.insert(30, 3, "single-b");
        let order: Vec<_> = std::iter::from_fn(|| wheel.pop()).map(|e| e.event).collect();
        assert_eq!(order, vec!["single-a", "run-a", "run-b", "single-b"]);
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn empty_windows_are_skipped() {
        let mut wheel = TimerWheel::new();
        let far = 1_000u64 << WINDOW_BITS; // a thousand windows out
        wheel.insert(far, 0, ());
        assert_eq!(wheel.peek_min(), Some(far));
        let entry = wheel.pop().unwrap();
        assert_eq!(entry.at, far);
        // One page-in, not a thousand.
        assert_eq!(wheel.stats().windows_paged, 1);
    }

    #[test]
    fn clear_empties_and_stays_usable() {
        let mut wheel = TimerWheel::new();
        for i in 0..100 {
            wheel.insert(i * 1000, i, i);
        }
        wheel.clear();
        assert_eq!(wheel.len(), 0);
        assert_eq!(wheel.peek_min(), None);
        wheel.insert(42, 100, 7);
        assert_eq!(wheel.pop().unwrap().event, 7);
    }
}
