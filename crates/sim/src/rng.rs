//! Seeded, forkable randomness.
//!
//! All nondeterminism in a simulation — packet loss, corruption, jitter,
//! initial sequence numbers, ephemeral ports — flows from one root seed
//! through this type. `fork` derives independent streams so that adding a
//! consumer does not perturb the draws seen by existing consumers (which
//! would otherwise make experiments non-comparable across configurations).
//!
//! The generator is a self-contained xoshiro256++ seeded through SplitMix64,
//! so simulations are reproducible bit-for-bit on any platform with no
//! external dependencies.

/// A deterministic random number generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Create from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Rng {
        let mut x = seed;
        let state = [
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
        ];
        Rng { state }
    }

    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Derive an independent stream labeled by `stream`.
    ///
    /// Uses a SplitMix64-style mix of the parent's next draw and the label,
    /// so distinct labels give uncorrelated streams.
    pub fn fork(&mut self, stream: u64) -> Rng {
        let mut x = self.next_u64() ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        Rng::from_seed(x)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high-quality bits into the mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// A uniform integer in `[0, bound)`. Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Debiased multiply-shift (Lemire): reject draws from the short
        // final stripe so every residue is equally likely.
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }

    /// A uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// A raw 32-bit draw (e.g. for TCP initial sequence numbers).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// An exponentially distributed draw with the given mean, as a float.
    ///
    /// Used for Poisson inter-arrival processes in workload generators.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = self.unit().max(f64::EPSILON);
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::from_seed(42);
        let mut b = Rng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::from_seed(1);
        let mut b = Rng::from_seed(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn forks_are_deterministic_and_independent() {
        let mut root1 = Rng::from_seed(7);
        let mut root2 = Rng::from_seed(7);
        let mut fork_a1 = root1.fork(1);
        let mut fork_a2 = root2.fork(1);
        for _ in 0..50 {
            assert_eq!(fork_a1.next_u32(), fork_a2.next_u32());
        }
        let mut root3 = Rng::from_seed(7);
        let mut fork_b = root3.fork(2);
        let mut root4 = Rng::from_seed(7);
        let mut fork_a = root4.fork(1);
        let same = (0..32).filter(|_| fork_a.next_u32() == fork_b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::from_seed(9);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_frequency_roughly_matches() {
        let mut rng = Rng::from_seed(123);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn below_and_range_bounds() {
        let mut rng = Rng::from_seed(5);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut rng = Rng::from_seed(17);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some residues never drawn");
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut rng = Rng::from_seed(11);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exponential_mean_roughly_matches() {
        let mut rng = Rng::from_seed(77);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exponential(5.0)).sum();
        let mean = total / n as f64;
        assert!((4.5..5.5).contains(&mean), "got {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn below_zero_panics() {
        Rng::from_seed(0).below(0);
    }
}
