//! Seeded, forkable randomness.
//!
//! All nondeterminism in a simulation — packet loss, corruption, jitter,
//! initial sequence numbers, ephemeral ports — flows from one root seed
//! through this type. `fork` derives independent streams so that adding a
//! consumer does not perturb the draws seen by existing consumers (which
//! would otherwise make experiments non-comparable across configurations).

use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng};

/// A deterministic random number generator.
#[derive(Debug, Clone)]
pub struct Rng {
    inner: SmallRng,
}

impl Rng {
    /// Create from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Rng {
        Rng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent stream labeled by `stream`.
    ///
    /// Uses a SplitMix64-style mix of the parent's next draw and the label,
    /// so distinct labels give uncorrelated streams.
    pub fn fork(&mut self, stream: u64) -> Rng {
        let mut x = self.inner.gen::<u64>() ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        Rng::from_seed(x)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// A uniform integer in `[0, bound)`. Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.inner.gen_range(0..bound)
    }

    /// A uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// A raw 32-bit draw (e.g. for TCP initial sequence numbers).
    pub fn next_u32(&mut self) -> u32 {
        self.inner.gen()
    }

    /// An exponentially distributed draw with the given mean, as a float.
    ///
    /// Used for Poisson inter-arrival processes in workload generators.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::from_seed(42);
        let mut b = Rng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::from_seed(1);
        let mut b = Rng::from_seed(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn forks_are_deterministic_and_independent() {
        let mut root1 = Rng::from_seed(7);
        let mut root2 = Rng::from_seed(7);
        let mut fork_a1 = root1.fork(1);
        let mut fork_a2 = root2.fork(1);
        for _ in 0..50 {
            assert_eq!(fork_a1.next_u32(), fork_a2.next_u32());
        }
        let mut root3 = Rng::from_seed(7);
        let mut fork_b = root3.fork(2);
        let mut root4 = Rng::from_seed(7);
        let mut fork_a = root4.fork(1);
        let same = (0..32).filter(|_| fork_a.next_u32() == fork_b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::from_seed(9);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_frequency_roughly_matches() {
        let mut rng = Rng::from_seed(123);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn below_and_range_bounds() {
        let mut rng = Rng::from_seed(5);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut rng = Rng::from_seed(11);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exponential_mean_roughly_matches() {
        let mut rng = Rng::from_seed(77);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exponential(5.0)).sum();
        let mean = total / n as f64;
        assert!((4.5..5.5).contains(&mean), "got {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn below_zero_panics() {
        Rng::from_seed(0).below(0);
    }
}
