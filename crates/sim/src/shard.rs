//! Shard execution modes for the deterministic event loop.
//!
//! The paper's survivability-at-scale goal (§3) needs more events per
//! wall-clock second than one core delivers. The classic answer —
//! conservative parallel discrete-event simulation (Chandy/Misra/Bryant)
//! — partitions the node set into shards that each run a *window* of
//! virtual time independently and exchange cross-shard frames at
//! barrier instants. The window length is the conservative lookahead:
//! the minimum propagation latency of any cross-shard link, because no
//! frame sent after the window opens can arrive inside it.
//!
//! [`ShardKind`] selects the mode. `Single` is the reference arm and
//! stays the default everywhere; `Sharded` runs the K-lane barrier
//! protocol serially (the equivalence arm: same code path as parallel,
//! zero threads, byte-identical dumps by construction *checked* against
//! `Single` by `tests/shard_equivalence.rs`); `Parallel` runs the same
//! lanes on scoped threads (the performance arm, priced by E17).
/// How the event loop partitions and executes the node set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardKind {
    /// One lane over the whole node set — the reference arm. Windows
    /// have no lookahead bound (there are no cross-shard links), so
    /// execution is the classic serial event loop.
    #[default]
    Single,
    /// K contiguous lanes with conservative-lookahead windows and
    /// barrier-instant frame exchange, executed serially on one
    /// thread. Exists so the differential harness can prove the
    /// barrier protocol itself (not thread scheduling) preserves every
    /// dump byte.
    Sharded {
        /// Number of lanes (clamped to the node count at first run).
        shards: usize,
    },
    /// The same K-lane barrier protocol with each window executed on
    /// its own scoped thread. Falls back to serial window execution
    /// when a frame tap or attestation master is installed (those hold
    /// coordinator-side shared state).
    Parallel {
        /// Number of lanes (clamped to the node count at first run).
        shards: usize,
    },
}

/// Window-protocol execution counters, maintained by the coordinator
/// of a K>1 lane split (all zero under `ShardKind::Single`).
///
/// These are *performance* observables, not simulation observables:
/// they describe how the barrier protocol carved virtual time into
/// windows, never what the simulation computed — so they are allowed
/// to differ across K and across lookahead modes while every telemetry
/// dump stays byte-identical. E17 prices the protocol with them, and
/// the regression tests in `tests/lane_windows.rs` pin the two failure
/// shapes they exist to expose: a zero-latency boundary link collapsing
/// windows, and a dense fault plan stalling barriers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Traffic window rounds executed (one barrier per round).
    pub windows: u64,
    /// Sum over rounds and lanes of each lane's window span in
    /// microseconds (`limit − round start`). Average per lane-window =
    /// `span_us / (lanes_dispatched + lanes_skipped)`.
    pub span_us: u64,
    /// Lane-windows whose lookahead bound collapsed the span to zero —
    /// the signature of a zero/low-latency link crossing a lane
    /// boundary. Correctness survives; speedup does not.
    pub collapsed: u64,
    /// Rounds truncated by a pending coordinator op (fault, sample, or
    /// ledger flush) before the lookahead bound was reached.
    pub barrier_stalls: u64,
    /// Lane-windows actually executed (the lane had an event due
    /// inside its window).
    pub lanes_dispatched: u64,
    /// Lane-windows skipped because nothing was due inside the window —
    /// the batched-dispatch win over running every lane every round.
    pub lanes_skipped: u64,
    /// Coordinator dispatch instants (each may batch several same-time
    /// fault actions into one barrier interruption).
    pub op_batches: u64,
    /// Individual coordinator ops applied across all batches.
    pub ops_applied: u64,
}

impl ShardKind {
    /// Short stable name for tables and JSON dumps.
    pub fn name(self) -> &'static str {
        match self {
            ShardKind::Single => "single",
            ShardKind::Sharded { .. } => "sharded",
            ShardKind::Parallel { .. } => "parallel",
        }
    }

    /// The requested lane count (1 for `Single`).
    pub fn shards(self) -> usize {
        match self {
            ShardKind::Single => 1,
            ShardKind::Sharded { shards } | ShardKind::Parallel { shards } => shards.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_single() {
        assert_eq!(ShardKind::default(), ShardKind::Single);
        assert_eq!(ShardKind::default().shards(), 1);
    }

    #[test]
    fn shard_counts_are_clamped_to_at_least_one() {
        assert_eq!(ShardKind::Sharded { shards: 0 }.shards(), 1);
        assert_eq!(ShardKind::Parallel { shards: 8 }.shards(), 8);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ShardKind::Single.name(), "single");
        assert_eq!(ShardKind::Sharded { shards: 4 }.name(), "sharded");
        assert_eq!(ShardKind::Parallel { shards: 4 }.name(), "parallel");
    }
}
