//! Declarative fault injection: the chaos side of the survivability goal.
//!
//! Clark ranks survivability second only to connectivity itself (§3):
//! the internet must keep delivering as long as *any* physical path
//! exists, with failures masked below the transport layer. Testing that
//! claim needs failures on demand — reproducible ones. A [`FaultPlan`]
//! is a deterministic, seed-driven schedule of fault events (link flaps,
//! crash storms, partitions, loss/corruption bursts, blackholes) that a
//! simulation driver executes interleaved with ordinary traffic events.
//!
//! Two properties matter:
//!
//! - **Determinism.** A plan is built once from a forked [`Rng`] stream
//!   and then replayed as plain data; the same seed always yields the
//!   same fault timeline, so every gauntlet run is bit-for-bit
//!   reproducible.
//! - **Declarativeness.** The plan knows nothing about the network it
//!   will torment. Nodes and links are named by plain indices; the
//!   driver (in `catenet-core`) maps them onto real topology and applies
//!   the primitive actions. Any experiment can attach a plan.

use crate::rng::Rng;
use crate::time::{Duration, Instant};

/// How a compromised gateway lies in its routing announcements.
///
/// Clark's fourth goal — distributed management — assumed gateways from
/// different administrations would exchange routing tables in good
/// faith; the 1988 architecture has no defense against a neighbor that
/// lies. These are the classic control-plane attacks a byzantine
/// gateway can mount with nothing but forged announcements. The plan
/// stays topology-ignorant: victim prefixes are raw address bytes, and
/// the driver (in `catenet-core`) rewrites the compromised node's
/// outgoing routing messages deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzantineAttack {
    /// Originate `count` bogus prefixes the gateway does not own, at an
    /// attractive metric — route-table pollution that soaks up
    /// forwarding state and attracts traffic for addresses nobody
    /// serves.
    BogusOrigins {
        /// How many fabricated prefixes to append to each announcement.
        count: u8,
    },
    /// Advertise a metric-0 route for a victim prefix — below the
    /// minimum any honest gateway can announce (a connected network is
    /// metric 1) — so every neighbor prefers the liar, then silently
    /// drop the attracted traffic: the classic black hole.
    BlackholeVictim {
        /// Victim network address, big-endian bytes.
        addr: [u8; 4],
        /// Victim prefix length in bits.
        prefix_len: u8,
    },
    /// Replay the first announcement ever sent on each interface
    /// forever after — a stale-table replay that freezes the liar's
    /// contribution to routing while the real topology moves on.
    ReplayStale,
    /// Alternate every announcement between the truth and
    /// all-routes-unreachable — advertisement flapping that makes every
    /// neighbor's table churn on each routing period.
    FlapAdverts,
    /// Rewrite the victim prefix to metric 1 and strip its origin
    /// attestation — a prefix hijack by an authenticated neighbor that
    /// cannot produce the owner's proof. Attestation-verifying guards
    /// reject the unattested claim; plain guards believe it (metric 1
    /// is perfectly legal).
    HijackPrefix {
        /// Victim network address, big-endian bytes.
        addr: [u8; 4],
        /// Victim prefix length in bits.
        prefix_len: u8,
    },
    /// Rewrite the victim prefix to metric 1 while *keeping* the valid
    /// attestation the liar legitimately relays — the designed residual:
    /// origin attestation proves who owns the prefix, not that the
    /// advertised path or metric is honest (BGPsec's unsolved problem).
    HijackAttested {
        /// Victim network address, big-endian bytes.
        addr: [u8; 4],
        /// Victim prefix length in bits.
        prefix_len: u8,
    },
    /// Forge an attestation for the victim prefix under the true
    /// owner's identity but without its key — origin-key spoofing. The
    /// MAC cannot verify, so attestation-armed guards drop the entry.
    SpoofOrigin {
        /// Victim network address, big-endian bytes.
        addr: [u8; 4],
        /// Victim prefix length in bits.
        prefix_len: u8,
    },
}

impl ByzantineAttack {
    /// Short display name for tables and flight-recorder events.
    pub fn name(self) -> &'static str {
        match self {
            ByzantineAttack::BogusOrigins { .. } => "bogus-origins",
            ByzantineAttack::BlackholeVictim { .. } => "blackhole-victim",
            ByzantineAttack::ReplayStale => "replay-stale",
            ByzantineAttack::FlapAdverts => "flap-adverts",
            ByzantineAttack::HijackPrefix { .. } => "hijack-prefix",
            ByzantineAttack::HijackAttested { .. } => "hijack-attested",
            ByzantineAttack::SpoofOrigin { .. } => "spoof-origin",
        }
    }
}

/// One primitive fault the driver knows how to apply.
///
/// Everything a plan can express is compiled down to these. Node and
/// link identifiers are plain indices into the driver's topology.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Force a link administratively up or down (both directions).
    /// Interfaces see the change, so routing reacts — this is a
    /// *visible* failure.
    LinkSet {
        /// Link index in the driver's topology.
        link: usize,
        /// Desired state.
        up: bool,
    },
    /// Crash a node: all volatile state is lost (fate-sharing — the
    /// state dies with the machine it described).
    NodeCrash {
        /// Node index.
        node: usize,
    },
    /// Reboot a previously crashed node.
    NodeRestart {
        /// Node index.
        node: usize,
    },
    /// Partition the network: every link with exactly one endpoint in
    /// `side_a` is cut. At most one partition is active at a time; a new
    /// one heals the old first.
    Partition {
        /// Nodes on one side of the cut.
        side_a: Vec<usize>,
    },
    /// Heal the active partition, restoring exactly the links it cut.
    Heal,
    /// Override a link's loss and/or corruption probability (both
    /// directions). Unlike [`FaultAction::LinkSet`], interfaces stay up
    /// and routing notices nothing — this is a *silent* degradation,
    /// the failure mode end-to-end checks exist for.
    Degrade {
        /// Link index.
        link: usize,
        /// New loss probability, if overridden.
        loss: Option<f64>,
        /// New corruption probability, if overridden.
        corruption: Option<f64>,
    },
    /// Restore a degraded link to its baseline quality.
    Restore {
        /// Link index.
        link: usize,
    },
    /// Override loss and/or corruption in *one direction only*
    /// (`a_to_b` selects which). The reverse direction stays clean —
    /// the asymmetric failure mode where data drowns but ACKs survive
    /// (or vice versa), which a bidirectional model can never produce.
    DegradeOneWay {
        /// Link index.
        link: usize,
        /// `true` degrades the a→b direction, `false` the b→a one.
        a_to_b: bool,
        /// New loss probability, if overridden.
        loss: Option<f64>,
        /// New corruption probability, if overridden.
        corruption: Option<f64>,
    },
    /// Inflate a link's propagation delay by `extra` and replace its
    /// jitter (both directions). Interfaces stay up and no packet is
    /// lost — but when `jitter` exceeds the spacing between back-to-back
    /// frames, they arrive *reordered*: the silent failure mode that
    /// sequence numbers exist to absorb.
    DelaySpike {
        /// Link index.
        link: usize,
        /// Added one-way propagation delay.
        extra: Duration,
        /// Replacement jitter (reordering pressure).
        jitter: Duration,
    },
    /// Restore a delay-spiked link to its baseline timing.
    RestoreDelay {
        /// Link index.
        link: usize,
    },
    /// Compromise a node: from now on the driver corrupts its outgoing
    /// routing announcements according to `attack`. The node otherwise
    /// runs normally — it forwards, answers ARP, keeps its own table —
    /// which is exactly what makes a lying gateway harder to spot than
    /// a dead one.
    Compromise {
        /// Node index.
        node: usize,
        /// The lie it tells.
        attack: ByzantineAttack,
    },
    /// Rehabilitate a compromised node: its announcements are honest
    /// again (the heal of the byzantine fault).
    Rehabilitate {
        /// Node index.
        node: usize,
    },
}

/// A fault action bound to a point in virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the action fires.
    pub at: Instant,
    /// What happens.
    pub action: FaultAction,
}

/// A deterministic schedule of fault events.
///
/// Events are kept sorted by time; equal times preserve insertion order,
/// so a plan built the same way fires the same way. The driver consumes
/// the plan with [`FaultPlan::next_at`] / [`FaultPlan::pop_due`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    cursor: usize,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedule one primitive action. Maintains time order; ties keep
    /// insertion order (so the builder's own sequencing is the
    /// tie-break, deterministically).
    pub fn push(&mut self, at: Instant, action: FaultAction) {
        let pos = self.events.partition_point(|e| e.at <= at);
        self.events.insert(pos, FaultEvent { at, action });
        // Never insert into the already-consumed prefix.
        debug_assert!(pos >= self.cursor, "fault scheduled in the past");
    }

    /// Total number of events (consumed and pending).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan has no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events not yet consumed.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// The scheduled events, in firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Time of the next unconsumed event.
    pub fn next_at(&self) -> Option<Instant> {
        self.events.get(self.cursor).map(|e| e.at)
    }

    /// Consume and return the next event if it is due at or before
    /// `now`.
    pub fn pop_due(&mut self, now: Instant) -> Option<FaultEvent> {
        let event = self.events.get(self.cursor)?;
        if event.at > now {
            return None;
        }
        self.cursor += 1;
        Some(event.clone())
    }

    // ----------------------------------------------------- builders

    /// A link that flaps: up-periods and down-periods drawn from
    /// exponential distributions with the given means, over
    /// `[start, end)`. The link is guaranteed up again by `end`.
    pub fn link_flap(
        &mut self,
        link: usize,
        start: Instant,
        end: Instant,
        mean_up: Duration,
        mean_down: Duration,
        rng: &mut Rng,
    ) {
        let mut t = start;
        let mut up = true;
        loop {
            let mean = if up { mean_up } else { mean_down };
            let hold = rng.exponential(mean.total_micros().max(1) as f64);
            t += Duration::from_micros((hold as u64).max(1_000));
            if t >= end {
                break;
            }
            up = !up;
            self.push(t, FaultAction::LinkSet { link, up });
        }
        if !up {
            self.push(end, FaultAction::LinkSet { link, up: true });
        }
    }

    /// A crash storm: `crashes` crash-then-restart pairs, each hitting a
    /// node drawn from `nodes` at a time drawn uniformly from
    /// `[start, end)`, rebooting after a delay drawn uniformly from
    /// `restart_after`. The driver ignores a crash aimed at an
    /// already-dead node (and a restart aimed at a live one), so
    /// overlapping strikes are harmless.
    pub fn crash_storm(
        &mut self,
        nodes: &[usize],
        start: Instant,
        end: Instant,
        crashes: usize,
        restart_after: (Duration, Duration),
        rng: &mut Rng,
    ) {
        assert!(!nodes.is_empty(), "crash storm needs victims");
        let span = end.duration_since(start).total_micros().max(1);
        let (lo, hi) = restart_after;
        for _ in 0..crashes {
            let node = nodes[rng.below(nodes.len() as u64) as usize];
            let at = start + Duration::from_micros(rng.below(span));
            let delay = if hi > lo {
                Duration::from_micros(rng.range(lo.total_micros(), hi.total_micros()))
            } else {
                lo
            };
            self.push(at, FaultAction::NodeCrash { node });
            self.push(at + delay, FaultAction::NodeRestart { node });
        }
    }

    /// Partition `side_a` from the rest of the network at `at`, healing
    /// after `heal_after`.
    pub fn partition(&mut self, side_a: Vec<usize>, at: Instant, heal_after: Duration) {
        let heal_at = at + heal_after;
        self.push(at, FaultAction::Partition { side_a });
        self.push(heal_at, FaultAction::Heal);
    }

    /// A loss burst: the link silently drops packets with probability
    /// `loss` during `[at, at + duration)`. Routing sees nothing.
    pub fn loss_burst(&mut self, link: usize, at: Instant, duration: Duration, loss: f64) {
        self.push(
            at,
            FaultAction::Degrade {
                link,
                loss: Some(loss),
                corruption: None,
            },
        );
        self.push(at + duration, FaultAction::Restore { link });
    }

    /// A corruption burst: the link flips bits with probability
    /// `corruption` during `[at, at + duration)`. Only end-to-end
    /// checksums stand between this and the application.
    pub fn corruption_burst(
        &mut self,
        link: usize,
        at: Instant,
        duration: Duration,
        corruption: f64,
    ) {
        self.push(
            at,
            FaultAction::Degrade {
                link,
                loss: None,
                corruption: Some(corruption),
            },
        );
        self.push(at + duration, FaultAction::Restore { link });
    }

    /// A blackhole window: the link silently eats *everything* for
    /// `duration` — the classic failed-gateway-that-still-answers-ARP.
    /// Distinct from [`FaultPlan::link_flap`]: interfaces stay up, so
    /// routing keeps trusting the path.
    pub fn blackhole(&mut self, link: usize, at: Instant, duration: Duration) {
        self.loss_burst(link, at, duration, 1.0);
    }

    /// An asymmetric loss burst: one direction of the link drops with
    /// probability `loss` during `[at, at + duration)` while the reverse
    /// direction stays clean. `a_to_b` selects the lossy direction.
    pub fn one_way_loss_burst(
        &mut self,
        link: usize,
        a_to_b: bool,
        at: Instant,
        duration: Duration,
        loss: f64,
    ) {
        self.push(
            at,
            FaultAction::DegradeOneWay {
                link,
                a_to_b,
                loss: Some(loss),
                corruption: None,
            },
        );
        self.push(at + duration, FaultAction::Restore { link });
    }

    /// A delay spike: the link's one-way latency grows by `extra` with
    /// jitter `jitter` during `[at, at + duration)`, then snaps back.
    /// Nothing is dropped; the damage is reordering and RTT inflation.
    pub fn delay_spike(
        &mut self,
        link: usize,
        at: Instant,
        duration: Duration,
        extra: Duration,
        jitter: Duration,
    ) {
        self.push(at, FaultAction::DelaySpike { link, extra, jitter });
        self.push(at + duration, FaultAction::RestoreDelay { link });
    }

    /// Compromise `node` at `at` with no scheduled rehabilitation — the
    /// gateway lies for the rest of the run.
    pub fn compromise(&mut self, node: usize, attack: ByzantineAttack, at: Instant) {
        self.push(at, FaultAction::Compromise { node, attack });
    }

    /// Compromise `node` for a bounded window `[at, at + duration)`,
    /// then rehabilitate it — the disruption-then-heal shape every
    /// reconvergence measurement needs.
    pub fn compromise_window(
        &mut self,
        node: usize,
        attack: ByzantineAttack,
        at: Instant,
        duration: Duration,
    ) {
        self.push(at, FaultAction::Compromise { node, attack });
        self.push(at + duration, FaultAction::Rehabilitate { node });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> Instant {
        Instant::from_secs(s)
    }

    #[test]
    fn events_stay_sorted_with_stable_ties() {
        let mut plan = FaultPlan::new();
        plan.push(secs(5), FaultAction::LinkSet { link: 0, up: false });
        plan.push(secs(1), FaultAction::NodeCrash { node: 2 });
        plan.push(secs(5), FaultAction::LinkSet { link: 1, up: false });
        plan.push(secs(3), FaultAction::Heal);
        let times: Vec<u64> = plan.events().iter().map(|e| e.at.total_micros()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        // The two t=5 events keep insertion order: link 0 before link 1.
        assert_eq!(
            plan.events()[2].action,
            FaultAction::LinkSet { link: 0, up: false }
        );
        assert_eq!(
            plan.events()[3].action,
            FaultAction::LinkSet { link: 1, up: false }
        );
    }

    #[test]
    fn pop_due_consumes_in_order_and_respects_now() {
        let mut plan = FaultPlan::new();
        plan.push(secs(2), FaultAction::Heal);
        plan.push(secs(1), FaultAction::NodeCrash { node: 0 });
        assert_eq!(plan.next_at(), Some(secs(1)));
        assert!(plan.pop_due(Instant::ZERO).is_none());
        let first = plan.pop_due(secs(1)).expect("due");
        assert_eq!(first.action, FaultAction::NodeCrash { node: 0 });
        assert_eq!(plan.remaining(), 1);
        assert!(plan.pop_due(secs(1)).is_none(), "heal not due yet");
        assert!(plan.pop_due(secs(10)).is_some());
        assert_eq!(plan.remaining(), 0);
        assert_eq!(plan.next_at(), None);
    }

    #[test]
    fn link_flap_is_deterministic_and_ends_up() {
        let build = |seed: u64| {
            let mut rng = Rng::from_seed(seed);
            let mut plan = FaultPlan::new();
            plan.link_flap(
                3,
                secs(1),
                secs(60),
                Duration::from_secs(5),
                Duration::from_secs(2),
                &mut rng,
            );
            plan
        };
        let a = build(42);
        let b = build(42);
        assert_eq!(a, b, "same seed, same flap schedule");
        assert_ne!(a, build(43), "different seed, different schedule");
        // The waveform alternates down/up and leaves the link up.
        let mut expect_up = false;
        for event in a.events() {
            match event.action {
                FaultAction::LinkSet { link: 3, up } => {
                    assert_eq!(up, expect_up, "waveform must alternate");
                    expect_up = !expect_up;
                }
                ref other => panic!("unexpected action {other:?}"),
            }
        }
        match a.events().last() {
            Some(FaultEvent {
                action: FaultAction::LinkSet { up: true, .. },
                at,
            }) => assert!(*at <= secs(60)),
            other => panic!("flap must end with the link up, got {other:?}"),
        }
    }

    #[test]
    fn crash_storm_pairs_each_crash_with_a_later_restart() {
        let mut rng = Rng::from_seed(7);
        let mut plan = FaultPlan::new();
        plan.crash_storm(
            &[1, 2, 3],
            secs(10),
            secs(50),
            6,
            (Duration::from_secs(1), Duration::from_secs(4)),
            &mut rng,
        );
        let crashes: Vec<_> = plan
            .events()
            .iter()
            .filter(|e| matches!(e.action, FaultAction::NodeCrash { .. }))
            .collect();
        let restarts: Vec<_> = plan
            .events()
            .iter()
            .filter(|e| matches!(e.action, FaultAction::NodeRestart { .. }))
            .collect();
        assert_eq!(crashes.len(), 6);
        assert_eq!(restarts.len(), 6);
        for c in &crashes {
            assert!(c.at >= secs(10) && c.at < secs(50));
            if let FaultAction::NodeCrash { node } = c.action {
                assert!([1, 2, 3].contains(&node));
            }
        }
    }

    #[test]
    fn bursts_pair_degrade_with_restore() {
        let mut plan = FaultPlan::new();
        plan.loss_burst(0, secs(5), Duration::from_secs(10), 0.5);
        plan.corruption_burst(1, secs(7), Duration::from_secs(3), 0.2);
        plan.blackhole(2, secs(20), Duration::from_secs(5));
        let degrades = plan
            .events()
            .iter()
            .filter(|e| matches!(e.action, FaultAction::Degrade { .. }))
            .count();
        let restores = plan
            .events()
            .iter()
            .filter(|e| matches!(e.action, FaultAction::Restore { .. }))
            .count();
        assert_eq!(degrades, 3);
        assert_eq!(restores, 3);
        // Blackhole is total loss.
        assert!(plan.events().iter().any(|e| matches!(
            e.action,
            FaultAction::Degrade {
                link: 2,
                loss: Some(l),
                ..
            } if l == 1.0
        )));
    }

    #[test]
    fn one_way_burst_names_a_direction_and_restores() {
        let mut plan = FaultPlan::new();
        plan.one_way_loss_burst(4, true, secs(2), Duration::from_secs(6), 0.5);
        assert_eq!(plan.len(), 2);
        assert_eq!(
            plan.events()[0].action,
            FaultAction::DegradeOneWay {
                link: 4,
                a_to_b: true,
                loss: Some(0.5),
                corruption: None,
            }
        );
        assert_eq!(plan.events()[1].at, secs(8));
        assert_eq!(plan.events()[1].action, FaultAction::Restore { link: 4 });
    }

    #[test]
    fn delay_spike_pairs_with_restore_delay() {
        let mut plan = FaultPlan::new();
        plan.delay_spike(
            1,
            secs(10),
            Duration::from_secs(4),
            Duration::from_millis(150),
            Duration::from_millis(80),
        );
        assert_eq!(plan.len(), 2);
        assert_eq!(
            plan.events()[0].action,
            FaultAction::DelaySpike {
                link: 1,
                extra: Duration::from_millis(150),
                jitter: Duration::from_millis(80),
            }
        );
        assert_eq!(plan.events()[1].at, secs(14));
        assert_eq!(plan.events()[1].action, FaultAction::RestoreDelay { link: 1 });
    }

    #[test]
    fn partition_heals_after_window() {
        let mut plan = FaultPlan::new();
        plan.partition(vec![0, 1], secs(3), Duration::from_secs(9));
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.events()[0].at, secs(3));
        assert!(matches!(plan.events()[0].action, FaultAction::Partition { .. }));
        assert_eq!(plan.events()[1].at, secs(12));
        assert_eq!(plan.events()[1].action, FaultAction::Heal);
    }

    #[test]
    fn compromise_window_pairs_with_rehabilitate() {
        let mut plan = FaultPlan::new();
        let attack = ByzantineAttack::BlackholeVictim {
            addr: [10, 0, 7, 0],
            prefix_len: 24,
        };
        plan.compromise_window(3, attack, secs(5), Duration::from_secs(40));
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.events()[0].at, secs(5));
        assert_eq!(plan.events()[0].action, FaultAction::Compromise { node: 3, attack });
        assert_eq!(plan.events()[1].at, secs(45));
        assert_eq!(plan.events()[1].action, FaultAction::Rehabilitate { node: 3 });
    }

    #[test]
    fn open_ended_compromise_never_heals() {
        let mut plan = FaultPlan::new();
        plan.compromise(1, ByzantineAttack::FlapAdverts, secs(2));
        assert_eq!(plan.len(), 1);
        assert!(!plan
            .events()
            .iter()
            .any(|e| matches!(e.action, FaultAction::Rehabilitate { .. })));
    }

    #[test]
    fn attack_names_are_distinct() {
        let names = [
            ByzantineAttack::BogusOrigins { count: 4 }.name(),
            ByzantineAttack::BlackholeVictim { addr: [0; 4], prefix_len: 0 }.name(),
            ByzantineAttack::ReplayStale.name(),
            ByzantineAttack::FlapAdverts.name(),
        ];
        let mut unique = names.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    #[should_panic(expected = "crash storm needs victims")]
    fn empty_crash_storm_refused() {
        let mut rng = Rng::from_seed(1);
        let mut plan = FaultPlan::new();
        plan.crash_storm(
            &[],
            secs(0),
            secs(10),
            1,
            (Duration::ZERO, Duration::ZERO),
            &mut rng,
        );
    }
}
