//! Differential testing of the two scheduler backends.
//!
//! The timer wheel only earns its place as the default if it is
//! *observably identical* to the `BinaryHeap` it replaced — same pop
//! order, same timestamps, same FIFO tie-breaking, same clamp
//! behavior, on any interleaving of schedules and pops. This module is
//! the machinery for proving that:
//!
//! - [`Op`] / [`random_ops`] — a randomized schedule/pop workload,
//!   biased toward the pathological cases (bursts at one instant,
//!   far-future timers, scheduling while draining).
//! - [`run_lockstep`] — drive one heap and one wheel scheduler through
//!   the same op sequence, asserting every observable matches at every
//!   step. Returns a fingerprint of the merged pop sequence so callers
//!   can also pin cross-run determinism.
//! - [`replay_trace`] — replay a [`TraceOp`] log captured from a live
//!   simulation against a chosen backend; E13 wall-clocks this to
//!   compare substrate throughput on a *real* event mix.
//!
//! The property test in `tests/scheduler_equivalence.rs` runs
//! [`run_lockstep`] on thousands of seeded random workloads; the
//! system-level half of the proof (full E11/E12 batteries, byte-equal
//! telemetry) lives in the same file, built on `SchedulerKind`.

use crate::event::{Scheduler, SchedulerKind, TraceOp};
use crate::rng::Rng;
use crate::time::{Duration, Instant};

/// One step of a differential workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Schedule a payload this many microseconds after the current
    /// virtual time (clamping applies if a pop moved `now` past it).
    Schedule {
        /// Delay in microseconds from the time the op executes.
        delay: u64,
    },
    /// Schedule a payload at an *absolute* time, possibly in the past,
    /// to exercise the expired-timer clamp path.
    ScheduleAt {
        /// Absolute virtual time in microseconds.
        at: u64,
    },
    /// Pop the earliest pending event (a no-op when empty).
    Pop,
}

/// Generate a random op sequence of length `len`.
///
/// The distribution is deliberately adversarial for a timer wheel:
/// roughly half of schedules land inside a small window (forcing dense
/// slots and same-instant ties), a slice lands thousands of windows out
/// (forcing overflow paging), and absolute-time schedules aim at or
/// before `now` (forcing the clamp path to interleave with fresh
/// events).
pub fn random_ops(rng: &mut Rng, len: usize) -> Vec<Op> {
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        let roll = rng.range(0, 100);
        let op = if roll < 35 {
            // Dense near-future: lots of collisions at few instants.
            Op::Schedule {
                delay: rng.range(0, 50),
            }
        } else if roll < 50 {
            // Mid-range within a window or two.
            Op::Schedule {
                delay: rng.range(0, 40_000),
            }
        } else if roll < 58 {
            // Far future: overflow buckets, many windows skipped.
            Op::Schedule {
                delay: rng.range(1 << 20, 1 << 26),
            }
        } else if roll < 65 {
            // Absolute times clustered near zero: mostly clamped once
            // pops advance the clock.
            Op::ScheduleAt {
                at: rng.range(0, 2_000),
            }
        } else {
            Op::Pop
        };
        ops.push(op);
    }
    // Always drain fully at the end so every scheduled event is
    // compared, not just the prefix the random pops reached.
    ops.resize(ops.len() + len, Op::Pop);
    ops
}

/// Drive a heap scheduler and a wheel scheduler through `ops` in
/// lockstep, panicking on the first observable divergence.
///
/// Observables compared at every step: `peek_time`, `len`, `now`, and
/// for each pop the `(time, payload)` pair. Payloads are the op index
/// that scheduled them, so a FIFO violation (not just a time-order
/// violation) flips the payload and is caught. Returns
/// `(pops, fingerprint)` — a count and an order-sensitive FNV-style
/// hash of the pop sequence, for cross-run determinism checks.
pub fn run_lockstep(ops: &[Op]) -> (u64, u64) {
    let mut heap: Scheduler<u64> = Scheduler::with_kind(SchedulerKind::Heap);
    let mut wheel: Scheduler<u64> = Scheduler::with_kind(SchedulerKind::Wheel);
    assert_eq!(heap.kind(), SchedulerKind::Heap);
    assert_eq!(wheel.kind(), SchedulerKind::Wheel);

    let mut pops = 0u64;
    let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |value: u64| {
        fingerprint ^= value;
        fingerprint = fingerprint.wrapping_mul(0x1000_0000_01b3);
    };

    for (i, op) in ops.iter().enumerate() {
        let payload = i as u64;
        match *op {
            Op::Schedule { delay } => {
                let delay = Duration::from_micros(delay);
                heap.schedule_after(delay, payload);
                wheel.schedule_after(delay, payload);
            }
            Op::ScheduleAt { at } => {
                let at = Instant::from_micros(at);
                heap.schedule_at(at, payload);
                wheel.schedule_at(at, payload);
            }
            Op::Pop => {
                let a = heap.pop();
                let b = wheel.pop();
                assert_eq!(a, b, "pop diverged at op {i}");
                if let Some((at, payload)) = a {
                    pops += 1;
                    fold(at.total_micros());
                    fold(payload);
                }
            }
        }
        assert_eq!(
            heap.peek_time(),
            wheel.peek_time(),
            "peek diverged after op {i} ({op:?})"
        );
        assert_eq!(heap.len(), wheel.len(), "len diverged after op {i}");
        assert_eq!(heap.now(), wheel.now(), "now diverged after op {i}");
    }
    assert!(heap.is_empty() && wheel.is_empty(), "workload did not drain");
    assert_eq!(heap.processed(), wheel.processed());
    (pops, fingerprint)
}

/// Size in bytes of the payload [`replay_trace`] schedules. It matches
/// `catenet-core`'s (private) event enum — a pooled `PacketBuf` frame
/// (a `Vec<u8>` plus headroom offset and pool handle) and a node id,
/// niche-packed to 56 bytes — so replay moves the same number of bytes
/// per queue operation as the real simulation. That matters for an
/// honest backend comparison: the heap copies whole entries on every
/// sift, while the wheel moves each entry O(1) times, so a too-small
/// payload flatters the heap. A test in `catenet-core` pins the real
/// enum to this size.
pub const REPLAY_PAYLOAD_BYTES: usize = 56;

/// The replay payload: dead weight of [`REPLAY_PAYLOAD_BYTES`] bytes.
type ReplayPayload = [u64; REPLAY_PAYLOAD_BYTES / 8];

/// Replay a captured [`TraceOp`] log against a fresh scheduler of the
/// given kind, returning the number of events processed. E13 wall-clocks
/// this call per backend to measure substrate throughput on the exact
/// event mix a real simulation produced.
pub fn replay_trace(kind: SchedulerKind, trace: &[TraceOp]) -> u64 {
    let mut sched: Scheduler<ReplayPayload> = Scheduler::with_kind(kind);
    for op in trace {
        match *op {
            TraceOp::Schedule(at) => {
                sched.schedule_at(Instant::from_micros(at), ReplayPayload::default())
            }
            TraceOp::Pop => {
                let popped = sched.pop();
                debug_assert!(popped.is_some(), "trace pops an empty scheduler");
            }
        }
    }
    sched.processed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lockstep_accepts_a_handwritten_adversarial_sequence() {
        let ops = vec![
            Op::Schedule { delay: 10 },
            Op::Schedule { delay: 10 },
            Op::ScheduleAt { at: 0 },
            Op::Pop,
            Op::ScheduleAt { at: 3 },
            Op::Schedule { delay: 1 << 22 },
            Op::Pop,
            Op::Pop,
            Op::Pop,
            Op::Pop,
            Op::Pop,
        ];
        let (pops, _) = run_lockstep(&ops);
        assert_eq!(pops, 5);
    }

    #[test]
    fn lockstep_fingerprint_is_deterministic() {
        let mut rng = Rng::from_seed(0xD1FF);
        let ops = random_ops(&mut rng, 300);
        let (pops_a, fp_a) = run_lockstep(&ops);
        let (pops_b, fp_b) = run_lockstep(&ops);
        assert!(pops_a > 0);
        assert_eq!((pops_a, fp_a), (pops_b, fp_b));
    }

    #[test]
    fn replay_processes_every_trace_pop() {
        let mut sched: Scheduler<u8> = Scheduler::new();
        sched.set_trace(true);
        for i in 0..20 {
            sched.schedule_at(Instant::from_micros(i % 5), 0);
        }
        while sched.pop().is_some() {}
        let trace = sched.take_trace();
        for kind in SchedulerKind::all() {
            assert_eq!(replay_trace(kind, &trace), 20);
        }
    }
}
