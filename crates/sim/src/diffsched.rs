//! Differential testing of the two scheduler backends.
//!
//! The timer wheel only earns its place as the default if it is
//! *observably identical* to the `BinaryHeap` it replaced — same pop
//! order, same timestamps, same FIFO tie-breaking, same clamp
//! behavior, on any interleaving of schedules and pops. This module is
//! the machinery for proving that:
//!
//! - [`Op`] / [`random_ops`] — a randomized schedule/pop workload,
//!   biased toward the pathological cases (bursts at one instant,
//!   far-future timers, scheduling while draining).
//! - [`run_lockstep`] — drive one heap and one wheel scheduler through
//!   the same op sequence, asserting every observable matches at every
//!   step. Returns a fingerprint of the merged pop sequence so callers
//!   can also pin cross-run determinism.
//! - [`replay_trace`] — replay a [`TraceOp`] log captured from a live
//!   simulation against a chosen backend; E13 wall-clocks this to
//!   compare substrate throughput on a *real* event mix.
//!
//! The property test in `tests/scheduler_equivalence.rs` runs
//! [`run_lockstep`] on thousands of seeded random workloads; the
//! system-level half of the proof (full E11/E12 batteries, byte-equal
//! telemetry) lives in the same file, built on `SchedulerKind`.

use crate::event::{Scheduler, SchedulerKind, TraceOp};
use crate::rng::Rng;
use crate::time::{Duration, Instant};

/// One step of a differential workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Schedule a payload this many microseconds after the current
    /// virtual time (clamping applies if a pop moved `now` past it).
    Schedule {
        /// Delay in microseconds from the time the op executes.
        delay: u64,
    },
    /// Schedule a payload at an *absolute* time, possibly in the past,
    /// to exercise the expired-timer clamp path.
    ScheduleAt {
        /// Absolute virtual time in microseconds.
        at: u64,
    },
    /// Pop the earliest pending event (a no-op when empty).
    Pop,
}

/// Generate a random op sequence of length `len`.
///
/// The distribution is deliberately adversarial for a timer wheel:
/// roughly half of schedules land inside a small window (forcing dense
/// slots and same-instant ties), a slice lands thousands of windows out
/// (forcing overflow paging), and absolute-time schedules aim at or
/// before `now` (forcing the clamp path to interleave with fresh
/// events).
pub fn random_ops(rng: &mut Rng, len: usize) -> Vec<Op> {
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        let roll = rng.range(0, 100);
        let op = if roll < 35 {
            // Dense near-future: lots of collisions at few instants.
            Op::Schedule {
                delay: rng.range(0, 50),
            }
        } else if roll < 50 {
            // Mid-range within a window or two.
            Op::Schedule {
                delay: rng.range(0, 40_000),
            }
        } else if roll < 58 {
            // Far future: overflow buckets, many windows skipped.
            Op::Schedule {
                delay: rng.range(1 << 20, 1 << 26),
            }
        } else if roll < 65 {
            // Absolute times clustered near zero: mostly clamped once
            // pops advance the clock.
            Op::ScheduleAt {
                at: rng.range(0, 2_000),
            }
        } else {
            Op::Pop
        };
        ops.push(op);
    }
    // Always drain fully at the end so every scheduled event is
    // compared, not just the prefix the random pops reached.
    ops.resize(ops.len() + len, Op::Pop);
    ops
}

/// Drive a heap scheduler and a wheel scheduler through `ops` in
/// lockstep, panicking on the first observable divergence.
///
/// Observables compared at every step: `peek_time`, `len`, `now`, and
/// for each pop the `(time, payload)` pair. Payloads are the op index
/// that scheduled them, so a FIFO violation (not just a time-order
/// violation) flips the payload and is caught. Returns
/// `(pops, fingerprint)` — a count and an order-sensitive FNV-style
/// hash of the pop sequence, for cross-run determinism checks.
pub fn run_lockstep(ops: &[Op]) -> (u64, u64) {
    let mut heap: Scheduler<u64> = Scheduler::with_kind(SchedulerKind::Heap);
    let mut wheel: Scheduler<u64> = Scheduler::with_kind(SchedulerKind::Wheel);
    assert_eq!(heap.kind(), SchedulerKind::Heap);
    assert_eq!(wheel.kind(), SchedulerKind::Wheel);

    let mut pops = 0u64;
    let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |value: u64| {
        fingerprint ^= value;
        fingerprint = fingerprint.wrapping_mul(0x1000_0000_01b3);
    };

    for (i, op) in ops.iter().enumerate() {
        let payload = i as u64;
        match *op {
            Op::Schedule { delay } => {
                let delay = Duration::from_micros(delay);
                heap.schedule_after(delay, payload);
                wheel.schedule_after(delay, payload);
            }
            Op::ScheduleAt { at } => {
                let at = Instant::from_micros(at);
                heap.schedule_at(at, payload);
                wheel.schedule_at(at, payload);
            }
            Op::Pop => {
                let a = heap.pop();
                let b = wheel.pop();
                assert_eq!(a, b, "pop diverged at op {i}");
                if let Some((at, payload)) = a {
                    pops += 1;
                    fold(at.total_micros());
                    fold(payload);
                }
            }
        }
        assert_eq!(
            heap.peek_time(),
            wheel.peek_time(),
            "peek diverged after op {i} ({op:?})"
        );
        assert_eq!(heap.len(), wheel.len(), "len diverged after op {i}");
        assert_eq!(heap.now(), wheel.now(), "now diverged after op {i}");
    }
    assert!(heap.is_empty() && wheel.is_empty(), "workload did not drain");
    assert_eq!(heap.processed(), wheel.processed());
    (pops, fingerprint)
}

/// Size in bytes of the payload [`replay_trace`] schedules. It matches
/// `catenet-core`'s (private) `Keyed` scheduler entry — a 56-byte
/// niche-packed event enum (a pooled `PacketBuf` frame: `Vec<u8>` plus
/// headroom offset and pool handle, and a node id) wrapped with the
/// 8-byte delivery key that gives every event a shard-independent
/// total order — so replay moves the same number of bytes per queue
/// operation as the real simulation. That matters for an honest
/// backend comparison: the heap copies whole entries on every sift,
/// while the wheel moves each entry O(1) times, so a too-small payload
/// flatters the heap. A compile-time assertion and a test in
/// `catenet-core` pin the real entry to this size.
pub const REPLAY_PAYLOAD_BYTES: usize = 64;

/// The replay payload: dead weight of [`REPLAY_PAYLOAD_BYTES`] bytes.
type ReplayPayload = [u64; REPLAY_PAYLOAD_BYTES / 8];

/// Replay a captured [`TraceOp`] log against a fresh scheduler of the
/// given kind, returning the number of events processed. E13 wall-clocks
/// this call per backend to measure substrate throughput on the exact
/// event mix a real simulation produced.
pub fn replay_trace(kind: SchedulerKind, trace: &[TraceOp]) -> u64 {
    let mut sched: Scheduler<ReplayPayload> = Scheduler::with_kind(kind);
    for op in trace {
        match *op {
            TraceOp::Schedule(at) => {
                sched.schedule_at(Instant::from_micros(at), ReplayPayload::default())
            }
            TraceOp::Pop => {
                let popped = sched.pop();
                debug_assert!(popped.is_some(), "trace pops an empty scheduler");
            }
        }
    }
    sched.processed()
}

// ---------------------------------------------------------------------
// Shard-pair lockstep: a miniature model of the barrier protocol.
//
// The real sharded event loop in `catenet-core` partitions nodes into
// contiguous lanes and runs each over conservative-lookahead windows,
// exchanging cross-lane frames at barrier instants. This model strips
// that down to its essentials — nodes, directed links with integer
// latencies, deterministic hash-driven forwarding — so the *protocol*
// (window sizing, barrier exchange, (time, key) delivery order) can be
// property-tested over thousands of random topologies and partitions
// without dragging the whole network stack along.

/// A miniature topology for differential testing of the shard barrier
/// protocol: nodes, directed links with per-link latencies, and a set
/// of seed messages that start the deterministic forwarding cascade.
#[derive(Debug, Clone)]
pub struct ShardTopology {
    /// Number of nodes (ids `0..nodes`).
    pub nodes: usize,
    /// Directed links `(from, to, latency_micros)`; latency ≥ 1.
    pub links: Vec<(usize, usize, u64)>,
    /// Initial messages `(at_micros, to)` injected before the run.
    pub seeds: Vec<(u64, usize)>,
    /// Hop budget per cascade: each delivery forwards with one fewer
    /// hop, bounding the run.
    pub hops: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Msg {
    at: u64,
    key: u64,
    to: usize,
    hops: u32,
}

impl PartialOrd for Msg {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Msg {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed (earliest first) for use in a max-BinaryHeap.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.key.cmp(&self.key))
    }
}

fn fnv(values: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in values {
        h ^= v;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Deterministic forwarding decision: purely a function of the node and
/// its local delivery count, so it is identical no matter which shard
/// (or how many shards) delivered the message.
fn forwards(out: &[(usize, u64)], node: usize, count: u64) -> Vec<(usize, u64)> {
    if out.is_empty() {
        return Vec::new();
    }
    let h = fnv(&[node as u64, count]);
    let n = (h % 3) as usize; // 0, 1 or 2 forwards
    (0..n)
        .map(|j| out[((h >> (8 + 16 * j)) as usize) % out.len()])
        .collect()
}

/// Deliver one message and push its forwards through `emit`. Key
/// assignment mirrors the real engine: `(origin node) << 32 | seq`,
/// with a per-origin sequence counter — globally unique, and
/// independent of the shard count.
fn deliver(
    msg: Msg,
    out: &[Vec<(usize, u64)>],
    counts: &mut [u64],
    seqs: &mut [u64],
    mut emit: impl FnMut(Msg, u64),
) {
    let count = counts[msg.to];
    counts[msg.to] += 1;
    if msg.hops == 0 {
        return;
    }
    for (dest, latency) in forwards(&out[msg.to], msg.to, count) {
        let key = ((msg.to as u64) << 32) | seqs[msg.to];
        seqs[msg.to] += 1;
        emit(
            Msg {
                at: msg.at + latency,
                key,
                to: dest,
                hops: msg.hops - 1,
            },
            latency,
        );
    }
}

fn adjacency(topo: &ShardTopology) -> Vec<Vec<(usize, u64)>> {
    let mut out = vec![Vec::new(); topo.nodes];
    for &(from, to, latency) in &topo.links {
        assert!(latency >= 1, "zero-latency link in shard model");
        out[from].push((to, latency));
    }
    out
}

fn seed_msgs(topo: &ShardTopology, seqs: &mut [u64]) -> Vec<Msg> {
    topo.seeds
        .iter()
        .map(|&(at, to)| {
            let key = ((to as u64) << 32) | seqs[to];
            seqs[to] += 1;
            Msg {
                at,
                key,
                to,
                hops: topo.hops,
            }
        })
        .collect()
}

/// The reference arm: one totally ordered queue over all nodes,
/// popping in `(time, key)` order. Returns the delivery trace.
fn run_single(topo: &ShardTopology) -> Vec<(u64, u64, usize)> {
    let out = adjacency(topo);
    let mut counts = vec![0u64; topo.nodes];
    let mut seqs = vec![0u64; topo.nodes];
    let mut queue: std::collections::BinaryHeap<Msg> = std::collections::BinaryHeap::new();
    for msg in seed_msgs(topo, &mut seqs) {
        queue.push(msg);
    }
    let mut trace = Vec::new();
    while let Some(msg) = queue.pop() {
        trace.push((msg.at, msg.key, msg.to));
        deliver(msg, &out, &mut counts, &mut seqs, |fwd, _| queue.push(fwd));
    }
    trace
}

/// The sharded arm: contiguous-block partition into `shards` lanes,
/// each with its own queue, run over conservative-lookahead windows
/// (window length = minimum cross-shard link latency) with cross-shard
/// messages exchanged at barrier instants. Returns per-shard traces.
///
/// Barrier-safety invariants asserted on every crossing message:
/// - its delivery instant equals send instant + link latency (no
///   barrier may delay or hurry a frame), and is therefore no earlier
///   than the window-opening barrier plus the minimum link latency;
/// - its delivery instant is strictly after the barrier instant at
///   which it crossed, so absorbing it can never rewind a lane.
fn run_sharded(topo: &ShardTopology, shards: usize) -> Vec<Vec<(u64, u64, usize)>> {
    let k = shards.clamp(1, topo.nodes.max(1));
    let mut lane_of = vec![0usize; topo.nodes];
    for lane in 0..k {
        for node in lane_of.iter_mut().take((lane + 1) * topo.nodes / k).skip(lane * topo.nodes / k) {
            *node = lane;
        }
    }
    let out = adjacency(topo);
    let lookahead = topo
        .links
        .iter()
        .filter(|&&(from, to, _)| lane_of[from] != lane_of[to])
        .map(|&(_, _, latency)| latency)
        .min()
        .unwrap_or(u64::MAX);

    let mut counts = vec![0u64; topo.nodes];
    let mut seqs = vec![0u64; topo.nodes];
    let mut queues: Vec<std::collections::BinaryHeap<Msg>> =
        (0..k).map(|_| std::collections::BinaryHeap::new()).collect();
    for msg in seed_msgs(topo, &mut seqs) {
        queues[lane_of[msg.to]].push(msg);
    }

    let mut traces = vec![Vec::new(); k];
    while let Some(opens) = queues.iter().filter_map(|q| q.peek().map(|m| m.at)).min() {
        // Process [opens, barrier]: anything sent inside the window
        // over a cross-shard link lands at ≥ opens + lookahead, which
        // is strictly after the barrier.
        let barrier = if lookahead == u64::MAX {
            u64::MAX
        } else {
            opens.saturating_add(lookahead - 1)
        };
        let mut crossings: Vec<(Msg, u64, u64)> = Vec::new();
        for lane in 0..k {
            while queues[lane].peek().is_some_and(|m| m.at <= barrier) {
                let msg = queues[lane].pop().expect("peeked");
                traces[lane].push((msg.at, msg.key, msg.to));
                let sent_at = msg.at;
                let (queue, cross) = (&mut queues[lane], &mut crossings);
                deliver(msg, &out, &mut counts, &mut seqs, |fwd, latency| {
                    if lane_of[fwd.to] == lane {
                        queue.push(fwd);
                    } else {
                        cross.push((fwd, sent_at, latency));
                    }
                });
            }
        }
        for (msg, sent_at, latency) in crossings {
            assert_eq!(
                msg.at,
                sent_at + latency,
                "barrier exchange altered a delivery instant"
            );
            assert!(
                msg.at >= opens + lookahead,
                "cross-shard frame beat the source shard's barrier + link latency"
            );
            assert!(
                msg.at > barrier,
                "cross-shard frame delivered inside the window it was sent in"
            );
            queues[lane_of[msg.to]].push(msg);
        }
    }
    traces
}

/// Drive the single-queue reference and the K-shard windowed run over
/// the same topology, asserting (a) every barrier-safety invariant
/// inside the sharded run, (b) each shard-local trace matches the
/// reference trace restricted to that shard's nodes, and (c) the
/// per-shard traces merged by `(time, key)` reproduce the reference
/// trace exactly. Returns `(deliveries, fingerprint)` for cross-run
/// determinism checks.
pub fn run_shard_lockstep(topo: &ShardTopology, shards: usize) -> (u64, u64) {
    let reference = run_single(topo);
    let sharded = run_sharded(topo, shards);

    let k = sharded.len();
    let lane_of = |node: usize| -> usize {
        (0..k)
            .find(|&lane| node >= lane * topo.nodes / k && node < (lane + 1) * topo.nodes / k)
            .expect("node outside every lane")
    };
    for (lane, trace) in sharded.iter().enumerate() {
        let expected: Vec<_> = reference
            .iter()
            .copied()
            .filter(|&(_, _, to)| lane_of(to) == lane)
            .collect();
        assert_eq!(
            trace, &expected,
            "shard {lane}/{k} local order diverged from the single-shard trace"
        );
    }

    let mut merged: Vec<_> = sharded.into_iter().flatten().collect();
    merged.sort_unstable_by_key(|&(at, key, _)| (at, key));
    assert_eq!(
        merged, reference,
        "merged {k}-shard trace diverged from the single-shard reference"
    );

    let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
    for &(at, key, to) in &reference {
        fingerprint = fnv(&[fingerprint, at, key, to as u64]);
    }
    (reference.len() as u64, fingerprint)
}

/// Generate a random topology/partition pair for the barrier-safety
/// property test: a connected ring (so cascades spread) plus random
/// chords, random per-link latencies, random seeds and hop budgets.
pub fn random_shard_topology(rng: &mut Rng) -> (ShardTopology, usize) {
    let nodes = rng.range(4, 21) as usize;
    let shards = rng.range(2, 9) as usize;
    let mut links = Vec::new();
    for i in 0..nodes {
        let next = (i + 1) % nodes;
        links.push((i, next, rng.range(1, 50)));
        links.push((next, i, rng.range(1, 50)));
    }
    for _ in 0..rng.range(0, (nodes as u64) * 2) {
        let from = rng.below(nodes as u64) as usize;
        let to = rng.below(nodes as u64) as usize;
        if from != to {
            links.push((from, to, rng.range(1, 50)));
        }
    }
    let seeds = (0..rng.range(1, 6))
        .map(|_| (rng.range(0, 20), rng.below(nodes as u64) as usize))
        .collect();
    let topo = ShardTopology {
        nodes,
        links,
        seeds,
        hops: rng.range(4, 11) as u32,
    };
    (topo, shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lockstep_accepts_a_handwritten_adversarial_sequence() {
        let ops = vec![
            Op::Schedule { delay: 10 },
            Op::Schedule { delay: 10 },
            Op::ScheduleAt { at: 0 },
            Op::Pop,
            Op::ScheduleAt { at: 3 },
            Op::Schedule { delay: 1 << 22 },
            Op::Pop,
            Op::Pop,
            Op::Pop,
            Op::Pop,
            Op::Pop,
        ];
        let (pops, _) = run_lockstep(&ops);
        assert_eq!(pops, 5);
    }

    #[test]
    fn lockstep_fingerprint_is_deterministic() {
        let mut rng = Rng::from_seed(0xD1FF);
        let ops = random_ops(&mut rng, 300);
        let (pops_a, fp_a) = run_lockstep(&ops);
        let (pops_b, fp_b) = run_lockstep(&ops);
        assert!(pops_a > 0);
        assert_eq!((pops_a, fp_a), (pops_b, fp_b));
    }

    #[test]
    fn replay_processes_every_trace_pop() {
        let mut sched: Scheduler<u8> = Scheduler::new();
        sched.set_trace(true);
        for i in 0..20 {
            sched.schedule_at(Instant::from_micros(i % 5), 0);
        }
        while sched.pop().is_some() {}
        let trace = sched.take_trace();
        for kind in SchedulerKind::all() {
            assert_eq!(replay_trace(kind, &trace), 20);
        }
    }

    /// A tight ring with short cross-shard latencies: every window is
    /// small, so the barrier-exchange path is exercised hard.
    #[test]
    fn shard_model_matches_reference_on_a_handwritten_ring() {
        let topo = ShardTopology {
            nodes: 6,
            links: (0..6)
                .flat_map(|i| {
                    let next = (i + 1) % 6;
                    [(i, next, 3), (next, i, 3)]
                })
                .collect(),
            seeds: vec![(0, 0), (0, 3), (5, 1)],
            hops: 8,
        };
        let baseline = run_shard_lockstep(&topo, 1);
        assert!(baseline.0 > 3, "cascade should outgrow its seeds");
        for shards in [2, 3, 6] {
            assert_eq!(run_shard_lockstep(&topo, shards), baseline);
        }
    }

    /// The seeded barrier-safety property: random topologies and
    /// partitions × random cross-shard traffic. `run_shard_lockstep`
    /// asserts, per crossing frame, that delivery is never earlier
    /// than the source shard's barrier + link latency, and that every
    /// shard-local order matches the single-shard trace.
    #[test]
    fn shard_model_barrier_safety_holds_over_random_topologies() {
        let mut rng = Rng::from_seed(0x5A4D_BA21);
        let mut total = 0u64;
        for case in 0..200 {
            let (topo, shards) = random_shard_topology(&mut rng);
            let (deliveries, fp) = run_shard_lockstep(&topo, shards);
            // Cross-run determinism, spot-checked.
            if case % 40 == 0 {
                assert_eq!(run_shard_lockstep(&topo, shards), (deliveries, fp));
            }
            total += deliveries;
        }
        assert!(total > 1_000, "property test barely exercised anything");
    }

    /// Shard counts beyond the node count clamp instead of panicking.
    #[test]
    fn shard_model_clamps_oversized_partitions() {
        let topo = ShardTopology {
            nodes: 3,
            links: vec![(0, 1, 2), (1, 2, 2), (2, 0, 2)],
            seeds: vec![(0, 0)],
            hops: 5,
        };
        assert_eq!(run_shard_lockstep(&topo, 16), run_shard_lockstep(&topo, 1));
    }
}
