//! # catenet-sim
//!
//! The deterministic discrete-event substrate under the catenet stack.
//!
//! Clark's 1988 paper describes an architecture evaluated on the real DARPA
//! internet — ARPANET trunks, SATNET satellite hops, packet radio, and
//! early LANs. None of that hardware is available, so this crate simulates
//! the only properties the architecture is allowed to assume of a network
//! (the paper's "variety of networks" goal makes the list *deliberately*
//! short): a network can carry a datagram of reasonable minimum size, with
//! some bandwidth, some latency, and no promise of reliability or order.
//!
//! Everything here is deterministic: virtual time is integer microseconds,
//! events are totally ordered (time, then insertion sequence), and all
//! randomness derives from one seed via [`Rng`]. A simulation replayed
//! with the same seed is identical bit for bit.
//!
//! Provided pieces:
//!
//! - [`time::Instant`] and [`time::Duration`] — virtual time.
//! - [`event::Scheduler`] — the event queue, generic over the event type.
//! - [`rng::Rng`] — seeded, forkable randomness.
//! - [`link::Link`] — a unidirectional channel with bandwidth, delay,
//!   loss, corruption, jitter and a drop-tail queue; [`link::LinkClass`]
//!   presets model the 1988 network classes.
//! - [`fault::FaultPlan`] — a deterministic, seed-driven schedule of
//!   fault events (flaps, crashes, partitions, bursts) for the
//!   survivability gauntlet.
//! - [`shard::ShardKind`] — execution modes for the event loop: the
//!   single-lane reference, and K-lane conservative-lookahead sharding
//!   (serial or threaded) proven byte-identical to it.
//! - [`pcap::PcapWriter`] — packet capture for offline inspection.
//! - [`stats`] — summary statistics used by the experiment harness.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod diffsched;
pub mod event;
pub mod fault;
pub mod link;
pub mod pcap;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
pub mod wheel;

pub use event::{SchedStats, Scheduler, SchedulerKind, TraceOp};
pub use fault::{ByzantineAttack, FaultAction, FaultEvent, FaultPlan};
pub use link::{DropReason, Link, LinkClass, LinkOutcome, LinkParams};
pub use rng::Rng;
pub use shard::{ShardKind, ShardStats};
pub use stats::Summary;
pub use time::{Duration, Instant};
