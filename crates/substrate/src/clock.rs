//! The timer driver behind a real-I/O realization.
//!
//! The simulator *is* its own clock — virtual time advances exactly to
//! the next scheduled event. A real substrate has no such luxury: time
//! passes whether the process is ready or not, and "sleep until the
//! next TCP retransmit timer" must become an actual OS sleep. [`Clock`]
//! is that seam. [`WallClock`] is the production driver (monotonic OS
//! time mapped to the architecture's microsecond [`Instant`]s);
//! [`TestClock`] advances instantly so unit tests of the real backend's
//! event loop never actually wait.

use catenet_sim::{Duration, Instant};

/// A source of time plus the ability to wait for it to pass.
///
/// Instants are catenet instants: microseconds since the clock's epoch
/// (process start for [`WallClock`]), the same representation virtual
/// time uses, so `Node` and the TCP RTO machinery are oblivious to
/// which realization is driving them.
pub trait Clock: Send {
    /// Microseconds elapsed since this clock's epoch.
    fn now(&self) -> Instant;

    /// Block until roughly `deadline`, or return early if woken. A
    /// clock may sleep in shorter slices; callers must re-check
    /// [`Clock::now`] and loop.
    fn sleep_until(&mut self, deadline: Instant);
}

/// Monotonic wall-clock time, the real-I/O driver.
pub struct WallClock {
    epoch: std::time::Instant,
    /// Longest single sleep slice. Frames can arrive from the OS at
    /// any moment, so the driver caps sleeps and re-polls its sockets;
    /// 1 ms keeps REPL echo and tunnel ingress snappy while costing
    /// ~no CPU (the process is asleep between slices).
    pub max_slice: Duration,
}

impl WallClock {
    /// A wall clock whose epoch is "now".
    pub fn new() -> WallClock {
        WallClock {
            epoch: std::time::Instant::now(),
            max_slice: Duration::from_millis(1),
        }
    }
}

impl Default for WallClock {
    fn default() -> WallClock {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Instant {
        Instant::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    fn sleep_until(&mut self, deadline: Instant) {
        let now = self.now();
        if deadline <= now {
            return;
        }
        let remaining = deadline.duration_since(now).min(self.max_slice);
        std::thread::sleep(std::time::Duration::from_micros(remaining.total_micros()));
    }
}

/// A clock that never waits: `sleep_until` jumps straight to the
/// deadline. Lets tests drive [`crate::real::RealSubstrate`]'s event
/// loop through hours of protocol time in milliseconds of test time
/// (sockets are still real, but on loopback delivery is immediate).
pub struct TestClock {
    now: Instant,
}

impl TestClock {
    /// A test clock starting at 0.
    pub fn new() -> TestClock {
        TestClock { now: Instant::ZERO }
    }
}

impl Default for TestClock {
    fn default() -> TestClock {
        TestClock::new()
    }
}

impl Clock for TestClock {
    fn now(&self) -> Instant {
        self.now
    }

    fn sleep_until(&mut self, deadline: Instant) {
        if deadline > self.now {
            self.now = deadline;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic_and_advances() {
        let mut clock = WallClock::new();
        let a = clock.now();
        clock.sleep_until(a + Duration::from_millis(2));
        let b = clock.now();
        assert!(b >= a + Duration::from_millis(1), "slept {a:?} -> {b:?}");
    }

    #[test]
    fn wall_clock_sleep_is_sliced() {
        let mut clock = WallClock::new();
        let start = clock.now();
        // A deadline far in the future must return after one slice,
        // not block for an hour.
        clock.sleep_until(start + Duration::from_secs(3600));
        assert!(clock.now() < start + Duration::from_secs(1));
    }

    #[test]
    fn test_clock_jumps() {
        let mut clock = TestClock::new();
        clock.sleep_until(Instant::from_secs(100));
        assert_eq!(clock.now(), Instant::from_secs(100));
        clock.sleep_until(Instant::from_secs(50)); // never goes back
        assert_eq!(clock.now(), Instant::from_secs(100));
    }
}
