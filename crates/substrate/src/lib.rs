//! Realizations of the catenet architecture.
//!
//! Clark's paper draws a hard line between the Internet *architecture*
//! — the protocols and the service model — and its *realizations*: the
//! actual collections of networks, links and gateways the architecture
//! is instantiated over. Until this crate existed the reproduction had
//! exactly one realization, the in-process deterministic simulator, so
//! the architecture/realization split was asserted but never
//! demonstrated. This crate makes the split load-bearing:
//!
//! - [`Substrate`] is the seam. It exposes exactly what a driver needs
//!   — a clock, a way to advance it, and access to the nodes (whose
//!   [`Node`] state machines carry ARP, IP forwarding, DV routing and
//!   TCP *unchanged* across realizations).
//! - The **simulator** ([`catenet_core::Network`]) implements the
//!   trait by pure delegation. It keeps virtual time, seeded RNGs, and
//!   byte-for-byte determinism — it remains the CI arm, and nothing in
//!   its execution path changed to sit behind the trait (the E11–E17
//!   dump bytes are pinned by `tests/sim_golden_digests.rs`).
//! - The **real-I/O** backend ([`real::RealSubstrate`]) realizes links
//!   as UDP tunnels between OS sockets — one socket pair per link,
//!   frames carried verbatim in UDP payloads — and replaces virtual
//!   time with a wall-clock timer driver. No root privileges or TUN
//!   device are needed, so it runs in CI; determinism is explicitly
//!   *not* promised on this arm (the OS schedules delivery).
//!
//! On top of the real backend, the `vhost` and `vrouter` binaries give
//! each OS process one node and an operator REPL, so two processes can
//! exchange RIP over UDP links, converge routes, and carry a TCP file
//! transfer end to end — the loopback interop test does exactly that.
//!
//! ## The TUN seam
//!
//! A third realization — a TUN device carrying our IP datagrams into
//! the kernel stack — plugs in at the same place the UDP tunnel does:
//! a [`real::LinkEndpoint`] turns `(iface, frame)` pairs into bytes on
//! a descriptor and back. A TUN endpoint would open `/dev/net/tun`,
//! set `IFF_TUN | IFF_NO_PI`, and exchange raw IPv4 packets (framing
//! [`catenet_core::iface::Framing::RawIp`]) instead of UDP payloads;
//! everything above the endpoint — node, routing, TCP, REPL — is
//! unchanged. It requires `CAP_NET_ADMIN`, so it is left as a
//! documented seam rather than a CI arm.

#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod clock;
pub mod config;
pub mod driver;
pub mod real;
pub mod repl;
pub mod tunnel;

use catenet_core::app::Application;
use catenet_core::{Network, Node};
use catenet_sim::{Duration, Instant};

/// A realization of the catenet architecture: something that owns
/// nodes, a clock, and a way of moving frames between nodes.
///
/// The architecture lives entirely inside [`Node`] (ARP, IP, DV
/// routing, TCP, sockets, applications); a substrate decides what an
/// instant means (virtual vs. wall time) and what a link is (a
/// simulated queue vs. a UDP socket pair vs. — via the documented
/// seam — a TUN device).
pub trait Substrate {
    /// The current instant on this substrate's clock.
    fn now(&self) -> Instant;

    /// Drive the realization until `deadline` on its clock: deliver
    /// frames, fire timers, poll applications.
    fn run_until(&mut self, deadline: Instant);

    /// Convenience: advance by `d` from [`Substrate::now`].
    fn run_for(&mut self, d: Duration) {
        let deadline = self.now() + d;
        self.run_until(deadline);
    }

    /// Number of nodes this realization hosts.
    fn node_count(&self) -> usize;

    /// Shared view of node `index`.
    fn node(&self, index: usize) -> &Node;

    /// Exclusive view of node `index`.
    fn node_mut(&mut self, index: usize) -> &mut Node;

    /// Attach an application to node `index`.
    fn attach_app(&mut self, index: usize, app: Box<dyn Application>);

    /// Force a service pass on node `index` at the next opportunity
    /// (e.g. after feeding a socket by hand).
    fn kick(&mut self, index: usize);
}

/// The deterministic simulator is the reference realization: the trait
/// is implemented by pure delegation, so putting the simulator behind
/// it cannot perturb a single scheduled event. (`NodeId` is `usize`,
/// so trait indices are node ids verbatim.)
impl Substrate for Network {
    fn now(&self) -> Instant {
        Network::now(self)
    }

    fn run_until(&mut self, deadline: Instant) {
        Network::run_until(self, deadline);
    }

    fn node_count(&self) -> usize {
        Network::node_count(self)
    }

    fn node(&self, index: usize) -> &Node {
        Network::node(self, index)
    }

    fn node_mut(&mut self, index: usize) -> &mut Node {
        Network::node_mut(self, index)
    }

    fn attach_app(&mut self, index: usize, app: Box<dyn Application>) {
        Network::attach_app(self, index, app);
    }

    fn kick(&mut self, index: usize) {
        Network::kick(self, index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catenet_core::app::{BulkSender, SinkServer};
    use catenet_core::{shared, Endpoint, StreamIntegrity, TcpConfig};
    use catenet_sim::LinkClass;
    use std::sync::Arc;

    /// A transfer driven purely through the trait object completes —
    /// i.e. the simulator is reachable as `dyn Substrate`, not just as
    /// a concrete `Network`.
    #[test]
    fn sim_backend_runs_behind_the_trait() {
        let mut net = Network::new(7);
        let h1 = net.add_host("h1");
        let g = net.add_gateway("g");
        let h2 = net.add_host("h2");
        net.connect(h1, g, LinkClass::T1Terrestrial);
        net.connect(g, h2, LinkClass::T1Terrestrial);
        let dst = Substrate::node(&net, h2).primary_addr();

        let checker = shared(StreamIntegrity::new());
        let sub: &mut dyn Substrate = &mut net;
        let sink = SinkServer::new(80, TcpConfig::default()).with_integrity(Arc::clone(&checker));
        sub.attach_app(h2, Box::new(sink));
        let sender = BulkSender::new(
            Endpoint::new(dst, 80),
            30_000,
            TcpConfig::default(),
            Instant::from_millis(10),
        )
        .with_integrity(Arc::clone(&checker));
        let result = sender.result_handle();
        sub.attach_app(h1, Box::new(sender));

        sub.run_for(Duration::from_secs(60));
        assert!(result.lock().unwrap().completed_at.is_some());
        let checker = checker.lock().unwrap();
        assert!(checker.is_complete());
        assert_eq!(checker.delivered_len(), 30_000);
    }
}
