//! `vhost` — drive one catenet *host* (static routes, no RIP) over
//! real UDP-tunnel links, with an operator REPL on stdin/stdout.
//!
//! ```text
//! vhost h1.cfg
//! ```
//!
//! See `catenet_substrate::config` for the file format and
//! `catenet_substrate::repl` for the command set.

use catenet_core::NodeRole;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    catenet_substrate::driver::run(NodeRole::Host, &args)
}
