//! `vrouter` — drive one catenet *router* (distance-vector RIP) over
//! real UDP-tunnel links, with an operator REPL on stdin/stdout.
//!
//! ```text
//! vrouter r1.cfg
//! ```
//!
//! Two `vrouter` processes pointed at each other's sockets exchange
//! RIP over the tunnel, converge routes to each other's stub prefixes,
//! and can carry TCP end to end — that is the loopback interop test.

use catenet_core::NodeRole;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    catenet_substrate::driver::run(NodeRole::Gateway, &args)
}
