//! The process driver behind `vhost` and `vrouter`: config in, REPL
//! loop forever.
//!
//! One thread reads stdin lines into a channel; the main thread owns
//! the substrate and alternates short [`Substrate::run_for`] slices
//! (which sleep-and-poll the tunnels) with draining the command
//! channel. Stdout is line-oriented and machine-parseable — the
//! loopback interop test drives two of these processes through pipes.

use crate::config;
use crate::real::RealSubstrate;
use crate::repl::{role_name, Repl};
use crate::Substrate;
use catenet_core::NodeRole;
use catenet_sim::Duration;
use std::io::BufRead;
use std::process::ExitCode;
use std::sync::mpsc;

/// Entry point shared by both binaries. `expect_role` is the binary's
/// identity: `vhost` drives hosts, `vrouter` drives routers, and a
/// config for the other role is refused (running a static-routes-only
/// process where the operator expects RIP is a silent outage).
pub fn run(expect_role: NodeRole, args: &[String]) -> ExitCode {
    let [config_path] = args else {
        eprintln!("usage: v{} <config-file>", role_name(expect_role));
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(config_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: read {config_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parsed = match config::parse(&text) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if parsed.role != expect_role {
        eprintln!(
            "error: {config_path} declares a {}, this binary drives a {}",
            role_name(parsed.role),
            role_name(expect_role),
        );
        return ExitCode::FAILURE;
    }
    let mut sub = match RealSubstrate::from_config(&parsed) {
        Ok(sub) => sub,
        Err(e) => {
            eprintln!("error: bind tunnels: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{} {} up: {} interface(s)",
        role_name(parsed.role),
        parsed.name,
        parsed.ifaces.len()
    );

    let (tx, rx) = mpsc::channel::<String>();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
        // Sender drops here: EOF on stdin reads as a disconnect below.
    });

    let mut repl = Repl::new();
    loop {
        sub.run_for(Duration::from_millis(5));
        for line in repl.tick(&mut sub) {
            println!("{line}");
        }
        loop {
            match rx.try_recv() {
                Ok(line) => {
                    let action = repl.exec(&line, &mut sub);
                    for line in action.output {
                        println!("{line}");
                    }
                    if action.quit {
                        return ExitCode::SUCCESS;
                    }
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    // Operator hung up; drain transfers already in
                    // flight would be nice-to-have, but a closed stdin
                    // means nobody is listening — exit cleanly.
                    return ExitCode::SUCCESS;
                }
            }
        }
    }
}
