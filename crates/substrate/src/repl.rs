//! The operator REPL shared by `vhost` and `vrouter`.
//!
//! The REPL is the driver seat for one real-I/O node: inspect
//! interfaces, sockets and routes; raise and drop interfaces; open TCP
//! connections and move bytes — including whole files, hash-printed on
//! both ends so two operators (or the interop test) can compare
//! transfers without comparing contents. Commands:
//!
//! ```text
//! help                      this list
//! li                        list interfaces
//! ls                        list sockets
//! lr | routes               list routes (static + learned)
//! up <iface> | down <iface> raise / drop an interface
//! connect <ip> <port>       open a TCP connection; prints the socket id
//! listen <port>             passive-open a TCP socket
//! send <sock> <text…>       write text into a socket
//! recv <sock> <n>           read up to n bytes from a socket
//! sendfile <path> <ip> <port>   stream a file over a fresh connection
//! recvfile <path> <port>        accept one connection, write to file
//! stats                     tunnel ingress counters per interface
//! quit | q                  exit
//! ```
//!
//! Output goes to stdout one line at a time with stable prefixes
//! (`sendfile done:`, `recvfile done:`, `route …`), so the loopback
//! interop test can drive two processes through pipes and assert on
//! what the operator would see. All input is untrusted: a malformed
//! command prints an error line, never panics.

use crate::real::RealSubstrate;
use crate::Substrate;
use catenet_core::NodeRole;
use catenet_tcp::{Endpoint, SocketConfig as TcpConfig, TcpError};
use catenet_wire::Ipv4Address;
use std::fs;
use std::io::Write;

/// FNV-1a 64-bit — the repo's standard content digest, so the hashes
/// the REPL prints line up with what the experiment harnesses compute.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

struct SendTransfer {
    handle: usize,
    label: String,
    data: Vec<u8>,
    written: usize,
    closed: bool,
}

struct RecvTransfer {
    handle: usize,
    path: String,
    file: fs::File,
    bytes: u64,
    hash: u64,
}

/// REPL state: pending file transfers riding the substrate's sockets.
pub struct Repl {
    sends: Vec<SendTransfer>,
    recvs: Vec<RecvTransfer>,
}

/// What one command asked of the driver loop.
pub struct ReplAction {
    /// Lines to print.
    pub output: Vec<String>,
    /// The operator asked to exit.
    pub quit: bool,
}

impl Default for Repl {
    fn default() -> Repl {
        Repl::new()
    }
}

impl Repl {
    /// A fresh REPL with no transfers in flight.
    pub fn new() -> Repl {
        Repl {
            sends: Vec::new(),
            recvs: Vec::new(),
        }
    }

    /// Execute one command line.
    pub fn exec(&mut self, line: &str, sub: &mut RealSubstrate) -> ReplAction {
        let words: Vec<&str> = line.split_whitespace().collect();
        let mut out = Vec::new();
        let mut quit = false;
        match words.first().copied() {
            None => {}
            Some("help") => out.push(HELP.trim_end().to_string()),
            Some("quit") | Some("q") => quit = true,
            Some("li") => self.list_ifaces(sub, &mut out),
            Some("ls") => self.list_sockets(sub, &mut out),
            Some("lr") | Some("routes") => self.list_routes(sub, &mut out),
            Some("up") | Some("down") => {
                let up = words[0] == "up";
                match words.get(1).and_then(|w| w.parse::<usize>().ok()) {
                    Some(iface) if iface < sub.node(0).ifaces.len() => {
                        sub.set_iface_up(iface, up);
                        out.push(format!("iface {iface} {}", if up { "up" } else { "down" }));
                    }
                    _ => out.push("error: usage: up|down <iface>".into()),
                }
            }
            Some("connect") => match parse_endpoint(&words[1..]) {
                Some(remote) => {
                    let now = Substrate::now(sub);
                    match sub.node_mut(0).tcp_connect(remote, TcpConfig::default(), now) {
                        Ok(handle) => out.push(format!("socket {handle} connecting to {remote}")),
                        Err(e) => out.push(format!("error: connect: {e:?}")),
                    }
                }
                None => out.push("error: usage: connect <ip> <port>".into()),
            },
            Some("listen") => match words.get(1).and_then(|w| w.parse::<u16>().ok()) {
                Some(port) => {
                    let handle = sub.node_mut(0).tcp_listen(port, TcpConfig::default());
                    out.push(format!("socket {handle} listening on {port}"));
                }
                None => out.push("error: usage: listen <port>".into()),
            },
            Some("send") => {
                let Some(handle) = words.get(1).and_then(|w| w.parse::<usize>().ok()) else {
                    out.push("error: usage: send <sock> <text…>".into());
                    return ReplAction { output: out, quit };
                };
                let text = line
                    .splitn(3, char::is_whitespace)
                    .nth(2)
                    .unwrap_or("")
                    .as_bytes();
                match sub.node_mut(0).tcp_sockets.get_mut(handle) {
                    Some(socket) => match socket.send_slice(text) {
                        Ok(n) => out.push(format!("sent {n} bytes on socket {handle}")),
                        Err(e) => out.push(format!("error: send: {e:?}")),
                    },
                    None => out.push(format!("error: no socket {handle}")),
                }
            }
            Some("recv") => {
                let handle = words.get(1).and_then(|w| w.parse::<usize>().ok());
                let want = words.get(2).and_then(|w| w.parse::<usize>().ok());
                match (handle, want) {
                    (Some(handle), Some(want)) => {
                        match sub.node_mut(0).tcp_sockets.get_mut(handle) {
                            Some(socket) => {
                                let mut buf = vec![0u8; want.min(65_536)];
                                match socket.recv_slice(&mut buf) {
                                    Ok(n) => out.push(format!(
                                        "recv {n} bytes on socket {handle}: {}",
                                        String::from_utf8_lossy(&buf[..n])
                                    )),
                                    Err(TcpError::Finished) => {
                                        out.push(format!("socket {handle}: stream finished"))
                                    }
                                    Err(e) => out.push(format!("error: recv: {e:?}")),
                                }
                            }
                            None => out.push(format!("error: no socket {handle}")),
                        }
                    }
                    _ => out.push("error: usage: recv <sock> <n>".into()),
                }
            }
            Some("sendfile") => match (words.get(1), parse_endpoint(&words[2..])) {
                (Some(path), Some(remote)) => match fs::read(path) {
                    Ok(data) => {
                        let now = Substrate::now(sub);
                        match sub.node_mut(0).tcp_connect(remote, TcpConfig::default(), now) {
                            Ok(handle) => {
                                out.push(format!(
                                    "sendfile {path}: {} bytes to {remote} on socket {handle}",
                                    data.len()
                                ));
                                self.sends.push(SendTransfer {
                                    handle,
                                    label: path.to_string(),
                                    data,
                                    written: 0,
                                    closed: false,
                                });
                            }
                            Err(e) => out.push(format!("error: sendfile connect: {e:?}")),
                        }
                    }
                    Err(e) => out.push(format!("error: sendfile read {path}: {e}")),
                },
                _ => out.push("error: usage: sendfile <path> <ip> <port>".into()),
            },
            Some("recvfile") => {
                let port = words.get(2).and_then(|w| w.parse::<u16>().ok());
                match (words.get(1), port) {
                    (Some(path), Some(port)) => match fs::File::create(path) {
                        Ok(file) => {
                            let handle = sub.node_mut(0).tcp_listen(port, TcpConfig::default());
                            out.push(format!(
                                "recvfile {path}: listening on {port}, socket {handle}"
                            ));
                            self.recvs.push(RecvTransfer {
                                handle,
                                path: path.to_string(),
                                file,
                                bytes: 0,
                                hash: 0xcbf2_9ce4_8422_2325,
                            });
                        }
                        Err(e) => out.push(format!("error: recvfile create {path}: {e}")),
                    },
                    _ => out.push("error: usage: recvfile <path> <port>".into()),
                }
            }
            Some("stats") => {
                for iface in 0..sub.node(0).ifaces.len() {
                    let s = sub.link_stats(iface);
                    out.push(format!(
                        "iface {iface}: accepted {} dropped {} (truncated {} bad_magic {} \
                         bad_version {} length_mismatch {} oversized {} wrong_link {})",
                        s.accepted,
                        s.dropped(),
                        s.truncated,
                        s.bad_magic,
                        s.bad_version,
                        s.length_mismatch,
                        s.oversized,
                        s.wrong_link,
                    ));
                }
            }
            Some(other) => out.push(format!("error: unknown command {other:?} (try help)")),
        }
        ReplAction { output: out, quit }
    }

    /// Advance in-flight file transfers; returns progress lines
    /// (`sendfile done:` / `recvfile done:` / `… error:`).
    pub fn tick(&mut self, sub: &mut RealSubstrate) -> Vec<String> {
        let mut out = Vec::new();
        let node = sub.node_mut(0);

        self.sends.retain_mut(|t| {
            let Some(socket) = node.tcp_sockets.get_mut(t.handle) else {
                out.push(format!("sendfile {} error: socket gone", t.label));
                return false;
            };
            while t.written < t.data.len() {
                let room = socket.send_room().min(8_192);
                if room == 0 {
                    break;
                }
                let end = (t.written + room).min(t.data.len());
                match socket.send_slice(&t.data[t.written..end]) {
                    Ok(0) => break,
                    Ok(n) => t.written += n,
                    Err(TcpError::InvalidState)
                        if socket.state() == catenet_tcp::State::SynSent =>
                    {
                        break;
                    }
                    Err(e) => {
                        out.push(format!("sendfile {} error: {e:?}", t.label));
                        return false;
                    }
                }
            }
            if t.written == t.data.len()
                && !t.closed
                && matches!(
                    socket.state(),
                    catenet_tcp::State::Established | catenet_tcp::State::CloseWait
                )
            {
                socket.close();
                t.closed = true;
            }
            if socket.has_timed_out() || (socket.is_closed() && !socket.all_acked()) {
                out.push(format!("sendfile {} error: connection lost", t.label));
                return false;
            }
            if t.closed
                && socket.all_acked()
                && matches!(
                    socket.state(),
                    catenet_tcp::State::FinWait2
                        | catenet_tcp::State::TimeWait
                        | catenet_tcp::State::Closed
                )
            {
                out.push(format!(
                    "sendfile done: {} bytes fnv64={:#018x}",
                    t.data.len(),
                    fnv64(&t.data)
                ));
                return false;
            }
            true
        });

        self.recvs.retain_mut(|t| {
            let Some(socket) = node.tcp_sockets.get_mut(t.handle) else {
                out.push(format!("recvfile {} error: socket gone", t.path));
                return false;
            };
            let mut buf = [0u8; 4096];
            loop {
                match socket.recv_slice(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => {
                        for &b in &buf[..n] {
                            t.hash ^= u64::from(b);
                            t.hash = t.hash.wrapping_mul(0x100_0000_01b3);
                        }
                        t.bytes += n as u64;
                        if let Err(e) = t.file.write_all(&buf[..n]) {
                            out.push(format!("recvfile {} error: {e}", t.path));
                            return false;
                        }
                    }
                    Err(TcpError::Finished) => {
                        socket.close();
                        let _ = t.file.flush();
                        out.push(format!(
                            "recvfile done: {} bytes fnv64={:#018x}",
                            t.bytes, t.hash
                        ));
                        return false;
                    }
                    Err(TcpError::InvalidState) => break, // still listening
                    Err(e) => {
                        out.push(format!("recvfile {} error: {e:?}", t.path));
                        return false;
                    }
                }
            }
            true
        });

        out
    }

    fn list_ifaces(&self, sub: &RealSubstrate, out: &mut Vec<String>) {
        for (index, iface) in sub.node(0).ifaces.iter().enumerate() {
            out.push(format!(
                "iface {index} {}/{} peer {} {}",
                iface.addr,
                iface.cidr.prefix_len(),
                iface.peer,
                if iface.up { "up" } else { "down" },
            ));
        }
    }

    fn list_sockets(&self, sub: &RealSubstrate, out: &mut Vec<String>) {
        let node = sub.node(0);
        for (index, socket) in node.tcp_sockets.iter().enumerate() {
            out.push(format!(
                "socket {index} tcp {:?} local {} remote {}",
                socket.state(),
                socket.local(),
                socket.remote(),
            ));
        }
        for (index, socket) in node.udp_sockets.iter().enumerate() {
            out.push(format!("socket {index} udp local port {}", socket.local_port));
        }
        if out.is_empty() {
            out.push("no sockets".into());
        }
    }

    fn list_routes(&self, sub: &RealSubstrate, out: &mut Vec<String>) {
        let node = sub.node(0);
        for (prefix, (iface, via)) in node.static_routes.iter() {
            match via {
                Some(via) => out.push(format!("route {prefix} via {via} iface {iface} static")),
                None => out.push(format!("route {prefix} connected iface {iface} static")),
            }
        }
        if let Some(dv) = &node.dv {
            for (prefix, route) in dv.routes() {
                match route.next_hop.gateway() {
                    Some(via) => out.push(format!(
                        "route {prefix} via {via} iface {} metric {}",
                        route.next_hop.iface(),
                        route.metric
                    )),
                    None => out.push(format!(
                        "route {prefix} connected iface {} metric {}",
                        route.next_hop.iface(),
                        route.metric
                    )),
                }
            }
        }
        if out.is_empty() {
            out.push("no routes".into());
        }
    }
}

fn parse_endpoint(words: &[&str]) -> Option<Endpoint> {
    let addr: Ipv4Address = words.first()?.parse().ok()?;
    let port: u16 = words.get(1)?.parse().ok()?;
    Some(Endpoint::new(addr, port))
}

/// `help` text.
pub const HELP: &str = "\
commands:
  li                           list interfaces
  ls                           list sockets
  lr | routes                  list routes (static + learned)
  up <iface> | down <iface>    raise / drop an interface
  connect <ip> <port>          open a TCP connection
  listen <port>                passive-open a TCP socket
  send <sock> <text…>          write text into a socket
  recv <sock> <n>              read up to n bytes from a socket
  sendfile <path> <ip> <port>  stream a file over a fresh connection
  recvfile <path> <port>       accept one connection, write to file
  stats                        tunnel ingress counters per interface
  quit | q                     exit
";

/// Suppress dead-code warnings for role helpers used by binaries only.
pub fn role_name(role: NodeRole) -> &'static str {
    match role {
        NodeRole::Host => "host",
        NodeRole::Gateway => "router",
    }
}
