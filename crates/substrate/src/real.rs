//! The real-I/O realization: one OS process, one node, links as UDP
//! tunnels.
//!
//! Where the simulator realizes a link as a pair of delay/loss queues
//! inside one process, [`RealSubstrate`] realizes it as a pair of OS
//! UDP sockets: each frame the node emits is wrapped in the
//! [`crate::tunnel`] header and sent to the peer's socket; each
//! datagram the OS delivers is defensively decoded and handed to
//! [`Node::handle_frame`] exactly as a simulated frame would be. The
//! node — ARP, IP forwarding, DV routing, TCP, sockets, applications —
//! cannot tell the difference; that is the paper's architecture/
//! realization split made executable.
//!
//! Time is the other half of the realization. Virtual time jumps from
//! event to event; here a [`Clock`] maps monotonic wall time onto the
//! same microsecond [`Instant`]s, and [`RealSubstrate::run_until`]
//! alternates short sleeps with socket polls, so RIP periodics and TCP
//! retransmission timers fire within a millisecond-ish of schedule.
//! Determinism is *not* promised on this arm — the OS schedules
//! delivery — which is exactly why the simulator remains the CI arm
//! for every byte-pinned experiment.
//!
//! The [`LinkEndpoint`] trait is the seam a future TUN backend plugs
//! into (see the crate docs): `RealSubstrate` only ever asks an
//! endpoint to ship or poll frames.

use crate::clock::{Clock, WallClock};
use crate::config::NodeConfig;
use crate::tunnel::{self, TunnelStats, MAX_FRAME, TUNNEL_HEADER};
use crate::Substrate;
use catenet_core::app::Application;
use catenet_core::iface::{Framing, Iface};
use catenet_core::{Node, NodeRole};
use catenet_sim::{Duration, Instant};
use catenet_wire::EthernetAddress;
use std::io;
use std::net::UdpSocket;

/// One end of a realized link: ships frames out, polls frames in.
///
/// Implementations must never block: the substrate's event loop owns
/// the only thread. `send_frame` is best-effort — real networks drop —
/// and `recv_frame` returns `None` when nothing is pending.
pub trait LinkEndpoint: Send {
    /// Ship a frame to the peer (best-effort).
    fn send_frame(&mut self, frame: &[u8]);

    /// Poll one pending frame, without blocking.
    fn recv_frame(&mut self) -> Option<Vec<u8>>;

    /// Ingress accounting (accepted / dropped-by-reason).
    fn stats(&self) -> TunnelStats;
}

/// A UDP-tunnel link endpoint: frames ride [`crate::tunnel`] datagrams
/// between two bound sockets.
pub struct UdpTunnel {
    socket: UdpSocket,
    link_id: u16,
    stats: TunnelStats,
    recv_buf: [u8; TUNNEL_HEADER + MAX_FRAME + 64],
}

impl UdpTunnel {
    /// Bind `local` and aim at `remote`. The socket is connected, so
    /// datagrams from other sources are filtered by the OS, and set
    /// non-blocking, so the event loop can poll it.
    pub fn new(local: &str, remote: &str, link_id: u16) -> io::Result<UdpTunnel> {
        let socket = UdpSocket::bind(local)?;
        socket.connect(remote)?;
        socket.set_nonblocking(true)?;
        Ok(UdpTunnel {
            socket,
            link_id,
            stats: TunnelStats::default(),
            recv_buf: [0; TUNNEL_HEADER + MAX_FRAME + 64],
        })
    }

    /// The local socket address actually bound (useful with port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.socket.local_addr()
    }
}

impl LinkEndpoint for UdpTunnel {
    fn send_frame(&mut self, frame: &[u8]) {
        // Best-effort, like the wire: a full socket buffer or an
        // unreachable peer is a dropped frame, and TCP/RIP recover
        // exactly as they do from simulated loss.
        let _ = self.socket.send(&tunnel::encode(self.link_id, frame));
    }

    fn recv_frame(&mut self) -> Option<Vec<u8>> {
        loop {
            let n = match self.socket.recv(&mut self.recv_buf) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return None,
                // Connected UDP surfaces ICMP errors (peer not yet
                // up) as recv failures; treat like loss and move on.
                Err(_) => return None,
            };
            match tunnel::decode(self.link_id, &self.recv_buf[..n]) {
                Ok(frame) => {
                    self.stats.accepted += 1;
                    return Some(frame.to_vec());
                }
                Err(reason) => self.stats.record(reason),
            }
        }
    }

    fn stats(&self) -> TunnelStats {
        self.stats
    }
}

/// The endpoint behind a stub (`local`) interface: a connected prefix
/// with no wire. Egress frames vanish (exactly what a LAN with no
/// other hosts does); nothing ever arrives.
pub struct StubLink;

impl LinkEndpoint for StubLink {
    fn send_frame(&mut self, _frame: &[u8]) {}

    fn recv_frame(&mut self) -> Option<Vec<u8>> {
        None
    }

    fn stats(&self) -> TunnelStats {
        TunnelStats::default()
    }
}

/// A node realized over real I/O: one [`Node`], one [`LinkEndpoint`]
/// per interface, a [`Clock`] driving timers.
pub struct RealSubstrate {
    node: Node,
    links: Vec<Box<dyn LinkEndpoint>>,
    apps: Vec<Box<dyn Application>>,
    clock: Box<dyn Clock>,
}

impl RealSubstrate {
    /// Realize `config` with the wall clock — the production driver.
    pub fn from_config(config: &NodeConfig) -> io::Result<RealSubstrate> {
        RealSubstrate::with_clock(config, Box::new(WallClock::new()))
    }

    /// Realize `config` over an explicit clock (tests use
    /// [`crate::clock::TestClock`] so protocol hours cost test
    /// milliseconds).
    pub fn with_clock(config: &NodeConfig, clock: Box<dyn Clock>) -> io::Result<RealSubstrate> {
        let mut node = Node::new(config.name.clone(), config.role);
        let mut links: Vec<Box<dyn LinkEndpoint>> = Vec::new();
        for (index, iface) in config.ifaces.iter().enumerate() {
            let endpoint: Box<dyn LinkEndpoint> = match (&iface.bind, &iface.remote) {
                (Some(bind), Some(remote)) => {
                    Box::new(UdpTunnel::new(bind, remote, iface.link_id)?)
                }
                _ => Box::new(StubLink),
            };
            // Tunnels are point-to-point: raw IP framing, no ARP. The
            // hardware address is still required by the interface
            // record; derive a stable locally-administered one.
            node.attach_iface(Iface {
                addr: iface.addr,
                cidr: iface.cidr(),
                hardware: EthernetAddress::new(0x02, 0xC4, 0x7E, 0, 0, index as u8),
                peer: iface.peer.unwrap_or(iface.addr),
                ip_mtu: 1500,
                framing: Framing::RawIp,
                up: true,
            });
            links.push(endpoint);
        }
        for route in &config.routes {
            let iface = config
                .ifaces
                .iter()
                .position(|i| i.peer == Some(route.via))
                .expect("config::parse validated the next hop");
            node.static_routes
                .insert(route.prefix, (iface, Some(route.via)));
        }
        Ok(RealSubstrate {
            node,
            links,
            apps: Vec::new(),
            clock,
        })
    }

    /// One non-blocking pass of the event loop: ingest every pending
    /// tunnel datagram, service the node (timers, RIP, TCP), poll
    /// applications, flush the outbox to the tunnels. Returns the
    /// number of frames ingested.
    pub fn pump(&mut self) -> usize {
        let now = self.clock.now();
        let mut ingested = 0;
        for iface in 0..self.links.len() {
            while let Some(frame) = self.links[iface].recv_frame() {
                // A frame for a downed interface is dropped at the
                // door, exactly as the simulator's link would not have
                // delivered it.
                if self.node.ifaces.get(iface).map(|i| i.up) == Some(true) {
                    self.node.handle_frame(now, iface, frame);
                    ingested += 1;
                }
            }
        }
        self.node.service(now);
        for app in &mut self.apps {
            app.poll(&mut self.node, now);
        }
        for (iface, frame) in self.node.take_outbox() {
            if let Some(link) = self.links.get_mut(iface) {
                link.send_frame(&frame);
            }
        }
        ingested
    }

    /// Earliest instant anything wants a wake: node timers or app
    /// schedules.
    fn next_wake(&self, now: Instant) -> Option<Instant> {
        let mut wake = self.node.poll_at(now);
        for app in &self.apps {
            wake = match (wake, app.next_wake()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        wake
    }

    /// Administratively raise or drop interface `iface` — the REPL's
    /// `up`/`down`. Mirrors what the simulator's `set_link_up` does to
    /// *one* end: the interface flag flips and the DV engine fails or
    /// re-learns the connected prefix. The peer is *not* told — on a
    /// real substrate it only finds out when RIP times the routes out,
    /// which is the paper's point about distributed failure detection.
    pub fn set_iface_up(&mut self, iface: usize, up: bool) {
        if iface >= self.node.ifaces.len() {
            return;
        }
        self.node.ifaces[iface].up = up;
        let now = self.clock.now();
        let cidr = self.node.ifaces[iface].cidr.network();
        if let Some(dv) = &mut self.node.dv {
            if up {
                dv.add_connected(cidr, iface);
            } else {
                dv.remove_connected(&cidr);
                dv.fail_iface(iface, now);
            }
        }
    }

    /// Ingress statistics for interface `iface`.
    pub fn link_stats(&self, iface: usize) -> TunnelStats {
        self.links
            .get(iface)
            .map(|l| l.stats())
            .unwrap_or_default()
    }

    /// Feed a raw tunnel payload through interface `iface`'s decode
    /// path as if it had arrived from the socket — the fuzz harness's
    /// direct line to the ingress hardening without needing a peer
    /// process.
    pub fn ingest_payload(&mut self, iface: usize, payload: &[u8], stats: &mut TunnelStats) {
        let link_id = iface as u16;
        let now = self.clock.now();
        match tunnel::decode(link_id, payload) {
            Ok(frame) => {
                stats.accepted += 1;
                self.node.handle_frame(now, iface, frame.to_vec());
            }
            Err(reason) => stats.record(reason),
        }
    }

    /// The node's display name.
    pub fn name(&self) -> &str {
        &self.node.name
    }

    /// Whether this node runs DV routing (router) or static routes
    /// (host).
    pub fn role(&self) -> NodeRole {
        self.node.role
    }
}

impl Substrate for RealSubstrate {
    fn now(&self) -> Instant {
        self.clock.now()
    }

    fn run_until(&mut self, deadline: Instant) {
        loop {
            self.pump();
            let now = self.clock.now();
            if now >= deadline {
                return;
            }
            // Sleep toward the earliest of: the deadline, the next
            // timer. Never sleep less than a sliver (a stale timer
            // must not spin the loop hot) — the clock's own slice cap
            // keeps socket polling responsive regardless.
            let mut target = deadline;
            if let Some(wake) = self.next_wake(now) {
                target = target.min(wake);
            }
            let floor = now + Duration::from_micros(200);
            self.clock.sleep_until(target.max(floor).min(deadline).max(now));
        }
    }

    fn node_count(&self) -> usize {
        1
    }

    fn node(&self, index: usize) -> &Node {
        assert_eq!(index, 0, "a real substrate hosts one node");
        &self.node
    }

    fn node_mut(&mut self, index: usize) -> &mut Node {
        assert_eq!(index, 0, "a real substrate hosts one node");
        &mut self.node
    }

    fn attach_app(&mut self, index: usize, app: Box<dyn Application>) {
        assert_eq!(index, 0, "a real substrate hosts one node");
        self.apps.push(app);
    }

    fn kick(&mut self, _index: usize) {
        self.pump();
    }
}
