//! Node configuration for the real-I/O drivers.
//!
//! One process = one node; its links, addresses and static routes come
//! from a small line-oriented config file (the shape spoonmilk-style
//! `vhost`/`vrouter` drivers use). Example — the left router of a
//! two-router loopback internet, with a stub LAN behind it:
//!
//! ```text
//! # r1.cfg
//! node router r1
//! iface 0 10.1.0.1/30 peer 10.1.0.2 link 7 bind 127.0.0.1:15001 remote 127.0.0.1:15002
//! iface 1 10.9.1.1/30 local
//! ```
//!
//! - `node <host|router> <name>` — role and display name (hosts have
//!   static routes only; routers run distance-vector RIP).
//! - `iface <idx> <addr>/<prefix> peer <addr> link <id> bind <ip:port>
//!   remote <ip:port>` — a UDP-tunnel link endpoint: our address on
//!   the link, the peer's address, the agreed tunnel link id, the
//!   local UDP socket to bind and the peer's socket to send to.
//! - `iface <idx> <addr>/<prefix> local` — a stub interface: a
//!   connected prefix with no tunnel behind it. Routers advertise it
//!   into RIP, which is what makes cross-process convergence
//!   observable (the remote stub is only reachable once RIP has run).
//! - `route <cidr> via <next-hop>` — a static route (`0.0.0.0/0` for
//!   the default); the next hop must be a peer on some interface.
//!
//! Blank lines and `#` comments are ignored. Errors carry the line
//! number; a malformed config names its first offending line instead
//! of panicking — config files are operator input, not trusted input.

use catenet_core::NodeRole;
use catenet_wire::{Ipv4Address, Ipv4Cidr};

/// One interface stanza.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IfaceConfig {
    /// Our address on the link.
    pub addr: Ipv4Address,
    /// Prefix length of the link subnet.
    pub prefix_len: u8,
    /// The peer's address (tunnel ifaces only).
    pub peer: Option<Ipv4Address>,
    /// Tunnel link id both endpoints agreed on.
    pub link_id: u16,
    /// Local UDP socket to bind (`None` for stub ifaces).
    pub bind: Option<String>,
    /// Peer's UDP socket (`None` for stub ifaces).
    pub remote: Option<String>,
}

impl IfaceConfig {
    /// Whether this is a stub (no tunnel behind it).
    pub fn is_stub(&self) -> bool {
        self.bind.is_none()
    }

    /// The interface's subnet.
    pub fn cidr(&self) -> Ipv4Cidr {
        Ipv4Cidr::new(self.addr, self.prefix_len)
    }
}

/// One static route stanza.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteConfig {
    /// Destination block.
    pub prefix: Ipv4Cidr,
    /// Next hop (must be some interface's peer).
    pub via: Ipv4Address,
}

/// A parsed node configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeConfig {
    /// Display name.
    pub name: String,
    /// Host (static routes) or Gateway (RIP).
    pub role: NodeRole,
    /// Interfaces in index order.
    pub ifaces: Vec<IfaceConfig>,
    /// Static routes.
    pub routes: Vec<RouteConfig>,
}

/// A config error, pointing at its line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Parse a config file's text.
pub fn parse(text: &str) -> Result<NodeConfig, ConfigError> {
    let mut name = None;
    let mut role = None;
    let mut ifaces: Vec<IfaceConfig> = Vec::new();
    let mut routes = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        match words[0] {
            "node" => {
                if words.len() != 3 {
                    return Err(err(line_no, "expected: node <host|router> <name>"));
                }
                role = Some(match words[1] {
                    "host" => NodeRole::Host,
                    "router" => NodeRole::Gateway,
                    other => return Err(err(line_no, format!("unknown role {other:?}"))),
                });
                name = Some(words[2].to_string());
            }
            "iface" => {
                let iface = parse_iface(line_no, &words)?;
                let index: usize = words[1]
                    .parse()
                    .map_err(|_| err(line_no, "iface index must be a number"))?;
                if index != ifaces.len() {
                    return Err(err(
                        line_no,
                        format!("iface {index} out of order (expected {})", ifaces.len()),
                    ));
                }
                ifaces.push(iface);
            }
            "route" => {
                if words.len() != 4 || words[2] != "via" {
                    return Err(err(line_no, "expected: route <cidr> via <next-hop>"));
                }
                let prefix: Ipv4Cidr = words[1]
                    .parse()
                    .map_err(|_| err(line_no, format!("bad cidr {:?}", words[1])))?;
                let via: Ipv4Address = words[3]
                    .parse()
                    .map_err(|_| err(line_no, format!("bad next-hop {:?}", words[3])))?;
                routes.push(RouteConfig { prefix, via });
            }
            other => return Err(err(line_no, format!("unknown directive {other:?}"))),
        }
    }

    let name = name.ok_or_else(|| err(text.lines().count(), "missing `node` line"))?;
    let role = role.expect("role set with name");
    if ifaces.is_empty() {
        return Err(err(text.lines().count(), "no interfaces"));
    }
    for route in &routes {
        if !ifaces.iter().any(|i| i.peer == Some(route.via)) {
            return Err(err(
                text.lines().count(),
                format!("route via {} is no interface's peer", route.via),
            ));
        }
    }
    Ok(NodeConfig {
        name,
        role,
        ifaces,
        routes,
    })
}

fn parse_iface(line_no: usize, words: &[&str]) -> Result<IfaceConfig, ConfigError> {
    // iface <idx> <addr>/<prefix> local
    // iface <idx> <addr>/<prefix> peer <addr> link <id> bind <ip:port> remote <ip:port>
    if words.len() < 4 {
        return Err(err(line_no, "iface line too short"));
    }
    let cidr: Ipv4Cidr = words[2]
        .parse()
        .map_err(|_| err(line_no, format!("bad address {:?}", words[2])))?;
    if words[3] == "local" {
        if words.len() != 4 {
            return Err(err(line_no, "stub iface takes no further words"));
        }
        return Ok(IfaceConfig {
            addr: cidr.address(),
            prefix_len: cidr.prefix_len(),
            peer: None,
            link_id: 0,
            bind: None,
            remote: None,
        });
    }
    if words.len() != 11
        || words[3] != "peer"
        || words[5] != "link"
        || words[7] != "bind"
        || words[9] != "remote"
    {
        return Err(err(
            line_no,
            "expected: iface <idx> <addr>/<len> peer <addr> link <id> \
             bind <ip:port> remote <ip:port> (or `local`)",
        ));
    }
    let peer: Ipv4Address = words[4]
        .parse()
        .map_err(|_| err(line_no, format!("bad peer {:?}", words[4])))?;
    let link_id: u16 = words[6]
        .parse()
        .map_err(|_| err(line_no, format!("bad link id {:?}", words[6])))?;
    Ok(IfaceConfig {
        addr: cidr.address(),
        prefix_len: cidr.prefix_len(),
        peer: Some(peer),
        link_id,
        bind: Some(words[8].to_string()),
        remote: Some(words[10].to_string()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# the left router
node router r1
iface 0 10.1.0.1/30 peer 10.1.0.2 link 7 bind 127.0.0.1:15001 remote 127.0.0.1:15002
iface 1 10.9.1.1/30 local
";

    #[test]
    fn parses_router_with_stub() {
        let config = parse(GOOD).expect("parses");
        assert_eq!(config.name, "r1");
        assert_eq!(config.role, NodeRole::Gateway);
        assert_eq!(config.ifaces.len(), 2);
        assert_eq!(config.ifaces[0].link_id, 7);
        assert_eq!(config.ifaces[0].peer, Some("10.1.0.2".parse().unwrap()));
        assert!(config.ifaces[1].is_stub());
    }

    #[test]
    fn parses_host_with_default_route() {
        let text = "\
node host h1
iface 0 10.1.0.2/30 peer 10.1.0.1 link 3 bind 127.0.0.1:0 remote 127.0.0.1:15000
route 0.0.0.0/0 via 10.1.0.1
";
        let config = parse(text).expect("parses");
        assert_eq!(config.role, NodeRole::Host);
        assert_eq!(config.routes.len(), 1);
        assert_eq!(config.routes[0].prefix.prefix_len(), 0);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "node router r1\niface 0 10.1.0.1/30 pear 10.1.0.2\n";
        let e = parse(text).unwrap_err();
        assert_eq!(e.line, 2);
        let text = "node gateway r1\n";
        let e = parse(text).unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn out_of_order_ifaces_rejected() {
        let text = "node router r1\niface 1 10.1.0.1/30 local\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn route_via_stranger_rejected() {
        let text = "\
node host h1
iface 0 10.1.0.2/30 peer 10.1.0.1 link 0 bind 127.0.0.1:0 remote 127.0.0.1:15000
route 0.0.0.0/0 via 10.2.0.9
";
        assert!(parse(text).is_err());
    }
}
