//! The UDP-tunnel wire format: how a link frame rides inside a UDP
//! payload between two OS processes.
//!
//! A tunnel datagram is an 8-byte header followed by the frame bytes,
//! verbatim:
//!
//! ```text
//! 0      2      3      4      6      8
//! +------+------+------+------+------+----------------- - - -
//! | magic 0xC47E| ver  | rsvd | link |  len | frame bytes …
//! +------+------+------+------+------+------+---------- - - -
//!   u16 BE        u8     u8    u16 BE  u16 BE
//! ```
//!
//! The `link` field names the link the two endpoints agreed on at
//! configuration time; a datagram whose link id doesn't match the
//! receiving endpoint is *somebody else's traffic* (or an attacker's)
//! and is dropped. `len` must equal the number of frame bytes that
//! actually follow — a UDP datagram is never fragmented by us, so any
//! mismatch means truncation or garbage.
//!
//! Decoding is fully defensive: this is the first place in the repo
//! where bytes arrive from outside the process, so every malformed
//! shape (short header, bad magic, unknown version, length mismatch,
//! oversized frame, wrong link) is **counted and dropped, never
//! panicked on** — the same posture `Node::handle_frame` already takes
//! one layer up, fuzz-pinned by `tunnel_decode_never_panics`.

/// First two bytes of every tunnel datagram.
pub const TUNNEL_MAGIC: u16 = 0xC47E;

/// Wire-format version this build speaks.
pub const TUNNEL_VERSION: u8 = 1;

/// Header bytes preceding the frame.
pub const TUNNEL_HEADER: usize = 8;

/// Largest frame a tunnel will carry. Matches the packet pool's buffer
/// capacity: a frame that wouldn't fit a simulator `PacketBuf` has no
/// business on a real link either (the MTU machinery keeps honest
/// senders far below this).
pub const MAX_FRAME: usize = 1600;

/// Why an incoming tunnel datagram was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TunnelError {
    /// Shorter than the 8-byte header.
    Truncated,
    /// Magic bytes are not [`TUNNEL_MAGIC`].
    BadMagic,
    /// Version byte is not [`TUNNEL_VERSION`].
    BadVersion,
    /// Header's `len` disagrees with the bytes present.
    LengthMismatch,
    /// Frame longer than [`MAX_FRAME`].
    Oversized,
    /// Link id is not the one this endpoint serves.
    WrongLink,
}

/// Per-endpoint ingress accounting: every accepted frame and every
/// dropped malformation, by reason. The REPL's `stats` command prints
/// these; the interop test asserts zero drops on a clean run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TunnelStats {
    /// Well-formed frames handed to the node.
    pub accepted: u64,
    /// Datagrams shorter than the header.
    pub truncated: u64,
    /// Wrong magic bytes.
    pub bad_magic: u64,
    /// Unknown version.
    pub bad_version: u64,
    /// Header length disagreed with payload length.
    pub length_mismatch: u64,
    /// Frame exceeded [`MAX_FRAME`].
    pub oversized: u64,
    /// Link id didn't match this endpoint.
    pub wrong_link: u64,
}

impl TunnelStats {
    /// Total dropped datagrams, all reasons.
    pub fn dropped(&self) -> u64 {
        self.truncated
            + self.bad_magic
            + self.bad_version
            + self.length_mismatch
            + self.oversized
            + self.wrong_link
    }

    /// Count one rejection.
    pub fn record(&mut self, err: TunnelError) {
        match err {
            TunnelError::Truncated => self.truncated += 1,
            TunnelError::BadMagic => self.bad_magic += 1,
            TunnelError::BadVersion => self.bad_version += 1,
            TunnelError::LengthMismatch => self.length_mismatch += 1,
            TunnelError::Oversized => self.oversized += 1,
            TunnelError::WrongLink => self.wrong_link += 1,
        }
    }
}

/// Encode `frame` for `link_id` into a fresh tunnel datagram.
///
/// Panics if `frame` exceeds [`MAX_FRAME`] — an *outgoing* oversized
/// frame is a local bug (the node's MTU machinery bounds what reaches
/// the outbox), unlike incoming garbage which is merely counted.
pub fn encode(link_id: u16, frame: &[u8]) -> Vec<u8> {
    assert!(frame.len() <= MAX_FRAME, "outgoing frame exceeds MAX_FRAME");
    let mut out = Vec::with_capacity(TUNNEL_HEADER + frame.len());
    out.extend_from_slice(&TUNNEL_MAGIC.to_be_bytes());
    out.push(TUNNEL_VERSION);
    out.push(0); // reserved
    out.extend_from_slice(&link_id.to_be_bytes());
    out.extend_from_slice(&(frame.len() as u16).to_be_bytes());
    out.extend_from_slice(frame);
    out
}

/// Decode an incoming tunnel datagram for the endpoint serving
/// `expect_link`. Returns the frame bytes, or the reason to drop.
pub fn decode(expect_link: u16, payload: &[u8]) -> Result<&[u8], TunnelError> {
    if payload.len() < TUNNEL_HEADER {
        return Err(TunnelError::Truncated);
    }
    let magic = u16::from_be_bytes([payload[0], payload[1]]);
    if magic != TUNNEL_MAGIC {
        return Err(TunnelError::BadMagic);
    }
    if payload[2] != TUNNEL_VERSION {
        return Err(TunnelError::BadVersion);
    }
    let link = u16::from_be_bytes([payload[4], payload[5]]);
    let len = u16::from_be_bytes([payload[6], payload[7]]) as usize;
    if len > MAX_FRAME {
        return Err(TunnelError::Oversized);
    }
    if payload.len() - TUNNEL_HEADER != len {
        return Err(TunnelError::LengthMismatch);
    }
    if link != expect_link {
        return Err(TunnelError::WrongLink);
    }
    Ok(&payload[TUNNEL_HEADER..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use catenet_sim::Rng;

    #[test]
    fn round_trip() {
        let frame = b"\x45\x00\x00\x14 some ip packet".to_vec();
        let wire = encode(9, &frame);
        assert_eq!(decode(9, &wire), Ok(frame.as_slice()));
    }

    #[test]
    fn empty_frame_round_trips() {
        let wire = encode(0, &[]);
        assert_eq!(decode(0, &wire), Ok(&[][..]));
    }

    #[test]
    fn rejections_name_their_reason() {
        let wire = encode(3, b"abc");
        assert_eq!(decode(4, &wire), Err(TunnelError::WrongLink));
        assert_eq!(decode(3, &wire[..5]), Err(TunnelError::Truncated));
        let mut bad = wire.clone();
        bad[0] ^= 0xFF;
        assert_eq!(decode(3, &bad), Err(TunnelError::BadMagic));
        let mut bad = wire.clone();
        bad[2] = 42;
        assert_eq!(decode(3, &bad), Err(TunnelError::BadVersion));
        let mut bad = wire.clone();
        bad[7] = 200; // claims 200 bytes, carries 3
        assert_eq!(decode(3, &bad), Err(TunnelError::LengthMismatch));
        let mut bad = wire;
        bad[6] = 0xFF;
        bad[7] = 0xFF; // claims 65535 > MAX_FRAME
        assert_eq!(decode(3, &bad), Err(TunnelError::Oversized));
    }

    #[test]
    fn stats_tally_by_reason() {
        let mut stats = TunnelStats::default();
        stats.record(TunnelError::Truncated);
        stats.record(TunnelError::WrongLink);
        stats.record(TunnelError::WrongLink);
        assert_eq!(stats.truncated, 1);
        assert_eq!(stats.wrong_link, 2);
        assert_eq!(stats.dropped(), 3);
    }

    /// The decoder's sibling of `random_wire_input_never_panics`:
    /// arbitrary bytes from the network must always come back as
    /// `Ok(frame)` or a counted error — never a panic, never an
    /// out-of-bounds slice.
    #[test]
    fn tunnel_decode_never_panics() {
        let mut rng = Rng::from_seed(0xC47E_F422);
        let mut stats = TunnelStats::default();
        for case in 0..4000u64 {
            let len = (rng.below(2100)) as usize;
            let mut payload = vec![0u8; len];
            for byte in payload.iter_mut() {
                *byte = rng.next_u32() as u8;
            }
            // Half the cases get a plausible header prefix so the
            // deeper checks (version, length, link) are reached too.
            if case % 2 == 0 && len >= TUNNEL_HEADER {
                payload[0..2].copy_from_slice(&TUNNEL_MAGIC.to_be_bytes());
                if case % 4 == 0 {
                    payload[2] = TUNNEL_VERSION;
                }
                if case % 8 == 0 {
                    let body = (len - TUNNEL_HEADER) as u16;
                    payload[6..8].copy_from_slice(&body.to_be_bytes());
                    // A small link id sometimes matches `expect`, so
                    // the fully-valid accept path is exercised too.
                    let link = rng.below(4) as u16;
                    payload[4..6].copy_from_slice(&link.to_be_bytes());
                }
            }
            let expect = rng.below(4) as u16;
            match decode(expect, &payload) {
                Ok(frame) => {
                    assert!(frame.len() <= MAX_FRAME);
                    stats.accepted += 1;
                }
                Err(err) => stats.record(err),
            }
        }
        // The harness above manufactures every rejection class.
        assert_eq!(stats.accepted + stats.dropped(), 4000);
        assert!(stats.accepted > 0, "fuzz never built a valid datagram");
        assert!(stats.truncated > 0);
        assert!(stats.bad_magic > 0);
        assert!(stats.bad_version > 0);
        assert!(stats.length_mismatch > 0);
        assert!(stats.wrong_link > 0);
    }
}
