//! The realization proof at full distance: two **separate OS
//! processes** (`vrouter` binaries) joined only by UDP datagrams on
//! 127.0.0.1, driven through their stdin/stdout REPLs exactly as an
//! operator would drive them. The test asserts that they
//!
//! 1. exchange RIP over the tunnel and converge routes to each other's
//!    stub prefixes (visible in `routes` output),
//! 2. carry a TCP file transfer end to end, and
//! 3. print matching FNV-1a-64 content hashes on both ends — and the
//!    received file is byte-identical to the sent one.
//!
//! Everything is wall-clock bounded; on timeout the children are
//! killed and their collected output is dumped for diagnosis.

use catenet_sim::Rng;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const PAYLOAD_BYTES: usize = 96_000;
const OVERALL_DEADLINE: Duration = Duration::from_secs(120);

/// A child `vrouter` with its stdout captured line-by-line in the
/// background and its stdin held open for commands. Killed on drop so
/// a panicking test never leaves processes behind.
struct Router {
    child: Child,
    stdin: ChildStdin,
    lines: Arc<Mutex<Vec<String>>>,
    tag: &'static str,
}

impl Router {
    fn spawn(tag: &'static str, config_path: &std::path::Path) -> Router {
        let mut child = Command::new(env!("CARGO_BIN_EXE_vrouter"))
            .arg(config_path)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn vrouter");
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let lines = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&lines);
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                sink.lock().unwrap().push(line);
            }
        });
        Router {
            child,
            stdin,
            lines,
            tag,
        }
    }

    fn command(&mut self, line: &str) {
        writeln!(self.stdin, "{line}").expect("child stdin open");
        self.stdin.flush().expect("child stdin flush");
    }

    /// Poll collected output until a line satisfies `pred` or
    /// `deadline` passes. Returns the matching line.
    fn wait_for(
        &self,
        deadline: Instant,
        mut pred: impl FnMut(&str) -> bool,
    ) -> Option<String> {
        let mut seen = 0;
        loop {
            {
                let lines = self.lines.lock().unwrap();
                while seen < lines.len() {
                    if pred(&lines[seen]) {
                        return Some(lines[seen].clone());
                    }
                    seen += 1;
                }
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    fn dump(&self) -> String {
        let lines = self.lines.lock().unwrap();
        format!("--- {} output ---\n{}\n", self.tag, lines.join("\n"))
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn free_ports() -> (u16, u16) {
    let a = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind");
    let b = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind");
    let pa = a.local_addr().expect("addr").port();
    let pb = b.local_addr().expect("addr").port();
    drop((a, b));
    (pa, pb)
}

#[test]
fn two_processes_converge_and_transfer_a_file() {
    let dir = std::env::temp_dir().join(format!("catenet-interop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // Deterministic payload, seeded like every other harness in the
    // repo; the bytes cross a process boundary so determinism of the
    // *content* is all we can (and need to) pin.
    let mut rng = Rng::from_seed(0x1A7E_2026);
    let payload: Vec<u8> = (0..PAYLOAD_BYTES).map(|_| rng.next_u32() as u8).collect();
    let send_path = dir.join("payload.bin");
    let recv_path = dir.join("received.bin");
    std::fs::write(&send_path, &payload).expect("write payload");

    let (pa, pb) = free_ports();
    let r1_cfg = dir.join("r1.cfg");
    let r2_cfg = dir.join("r2.cfg");
    std::fs::write(
        &r1_cfg,
        format!(
            "# left router: tunnel to r2 plus a stub LAN\n\
             node router r1\n\
             iface 0 10.1.0.1/30 peer 10.1.0.2 link 7 bind 127.0.0.1:{pa} remote 127.0.0.1:{pb}\n\
             iface 1 10.9.1.1/30 local\n"
        ),
    )
    .expect("write r1.cfg");
    std::fs::write(
        &r2_cfg,
        format!(
            "# right router: tunnel to r1 plus a stub LAN\n\
             node router r2\n\
             iface 0 10.1.0.2/30 peer 10.1.0.1 link 7 bind 127.0.0.1:{pb} remote 127.0.0.1:{pa}\n\
             iface 1 10.9.2.1/30 local\n"
        ),
    )
    .expect("write r2.cfg");

    let deadline = Instant::now() + OVERALL_DEADLINE;
    let mut r1 = Router::spawn("r1", &r1_cfg);
    let mut r2 = Router::spawn("r2", &r2_cfg);

    // The receiver listens immediately — a passive open needs no
    // routes. The transfer target is r2's *stub* address, so the
    // sendfile below cannot work until RIP has actually converged.
    r2.command(&format!("recvfile {} 5555", recv_path.display()));
    assert!(
        r2.wait_for(deadline, |l| l.contains("listening on 5555")).is_some(),
        "r2 never listened\n{}{}",
        r1.dump(),
        r2.dump()
    );

    // Poll r1's routing table until it has learned r2's stub prefix
    // across the tunnel (triggered updates make this fast, but the
    // boot advertisement can race the peer's bind — periodics repair).
    let learned = loop {
        r1.command("routes");
        if let Some(line) = r1.wait_for(
            Instant::now() + Duration::from_millis(400),
            |l| l.starts_with("route 10.9.2.0/30 via 10.1.0.2"),
        ) {
            break Some(line);
        }
        if Instant::now() >= deadline {
            break None;
        }
    };
    let learned = learned.unwrap_or_else(|| {
        panic!("r1 never learned r2's stub prefix\n{}{}", r1.dump(), r2.dump())
    });
    assert!(
        learned.contains("iface 0"),
        "learned route crosses the wrong interface: {learned}"
    );

    // Converged: stream the file to the far stub address.
    r1.command(&format!("sendfile {} 10.9.2.1 5555", send_path.display()));
    let sent = r1
        .wait_for(deadline, |l| l.starts_with("sendfile done:"))
        .unwrap_or_else(|| panic!("send side never finished\n{}{}", r1.dump(), r2.dump()));
    let received = r2
        .wait_for(deadline, |l| l.starts_with("recvfile done:"))
        .unwrap_or_else(|| panic!("recv side never finished\n{}{}", r1.dump(), r2.dump()));

    // Both ends printed `… done: N bytes fnv64=0x…` — operator-visible
    // proof of an intact transfer, asserted here mechanically.
    let sent_hash = sent.split("fnv64=").nth(1).expect("send hash");
    let recv_hash = received.split("fnv64=").nth(1).expect("recv hash");
    assert_eq!(sent_hash, recv_hash, "content hashes differ\n{sent}\n{received}");
    assert!(
        sent.contains(&format!("{PAYLOAD_BYTES} bytes")),
        "unexpected byte count: {sent}"
    );

    // Belt and braces: the file that landed is the file that left.
    let landed = std::fs::read(&recv_path).expect("read received file");
    assert_eq!(landed.len(), payload.len());
    assert_eq!(landed, payload, "received bytes differ from sent bytes");

    // Clean shutdown path (Drop would kill them anyway).
    r1.command("quit");
    r2.command("quit");
    drop(r1);
    drop(r2);
    let _ = std::fs::remove_dir_all(&dir);
}
