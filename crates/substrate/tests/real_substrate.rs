//! In-process tests of the real-I/O backend: two [`RealSubstrate`]s in
//! one process, joined by genuine OS UDP sockets on 127.0.0.1, driven
//! by [`TestClock`]s so protocol seconds cost test milliseconds.
//!
//! These are the unit-level half of the realization proof; the
//! process-level half (separate `vrouter` processes, REPL-driven) is
//! `loopback_interop.rs`.

use catenet_core::app::{BulkSender, SinkServer};
use catenet_core::{shared, Endpoint, StreamIntegrity, TcpConfig};
use catenet_sim::{Duration, Instant, Rng};
use catenet_substrate::clock::TestClock;
use catenet_substrate::config;
use catenet_substrate::real::RealSubstrate;
use catenet_substrate::tunnel::TunnelStats;
use catenet_substrate::Substrate;
use std::sync::Arc;

/// Two ports currently free on loopback. (Bind-then-drop: the tiny
/// race window is acceptable in a test sandbox.)
fn free_ports() -> (u16, u16) {
    let a = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind");
    let b = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind");
    let pa = a.local_addr().expect("addr").port();
    let pb = b.local_addr().expect("addr").port();
    drop((a, b));
    (pa, pb)
}

/// A two-router internet over one UDP-tunnel link, each router with a
/// stub LAN behind it:
///
/// ```text
/// [10.9.1.0/30]—r1 —(tunnel 127.0.0.1)— r2—[10.9.2.0/30]
/// ```
fn router_pair() -> (RealSubstrate, RealSubstrate) {
    let (pa, pb) = free_ports();
    let r1 = config::parse(&format!(
        "node router r1\n\
         iface 0 10.1.0.1/30 peer 10.1.0.2 link 7 bind 127.0.0.1:{pa} remote 127.0.0.1:{pb}\n\
         iface 1 10.9.1.1/30 local\n"
    ))
    .expect("r1 config");
    let r2 = config::parse(&format!(
        "node router r2\n\
         iface 0 10.1.0.2/30 peer 10.1.0.1 link 7 bind 127.0.0.1:{pb} remote 127.0.0.1:{pa}\n\
         iface 1 10.9.2.1/30 local\n"
    ))
    .expect("r2 config");
    let r1 = RealSubstrate::with_clock(&r1, Box::new(TestClock::new())).expect("r1 tunnels");
    let r2 = RealSubstrate::with_clock(&r2, Box::new(TestClock::new())).expect("r2 tunnels");
    (r1, r2)
}

/// Advance both substrates in small lockstep slices until `pred` holds
/// or `limit` protocol time passes. Returns whether `pred` held.
fn run_until_both(
    r1: &mut RealSubstrate,
    r2: &mut RealSubstrate,
    limit: Duration,
    mut pred: impl FnMut(&mut RealSubstrate, &mut RealSubstrate) -> bool,
) -> bool {
    let step = Duration::from_millis(5);
    let start = Substrate::now(r1);
    let mut t = start;
    let end = start + limit;
    while t < end {
        t = (t + step).min(end);
        r1.run_until(t);
        r2.run_until(t);
        if pred(r1, r2) {
            return true;
        }
    }
    false
}

fn r1_knows_r2_stub(r1: &RealSubstrate) -> bool {
    // `DvEngine::lookup` already filters routes at INFINITY_METRIC.
    let dst = "10.9.2.1".parse().expect("addr");
    r1.node(0).dv.as_ref().and_then(|dv| dv.lookup(dst)).is_some()
}

#[test]
fn rip_converges_across_real_udp_tunnels() {
    let (mut r1, mut r2) = router_pair();
    let converged = run_until_both(&mut r1, &mut r2, Duration::from_secs(30), |r1, r2| {
        r1_knows_r2_stub(r1)
            && r2
                .node(0)
                .dv
                .as_ref()
                .and_then(|dv| dv.lookup("10.9.1.1".parse().expect("addr")))
                .is_some()
    });
    assert!(converged, "RIP never converged over the loopback tunnel");
    // The learned route points across the tunnel, one hop beyond the
    // peer's connected prefix.
    let route = r1
        .node(0)
        .dv
        .as_ref()
        .and_then(|dv| dv.lookup("10.9.2.1".parse().expect("addr")))
        .copied()
        .expect("route exists");
    assert_eq!(route.next_hop.iface(), 0);
    assert_eq!(
        route.next_hop.gateway(),
        Some("10.1.0.2".parse().expect("addr"))
    );
    // A clean run drops nothing at the tunnel door.
    assert_eq!(r1.link_stats(0).dropped(), 0);
    assert_eq!(r2.link_stats(0).dropped(), 0);
    assert!(r1.link_stats(0).accepted > 0);
}

#[test]
fn tcp_transfer_rides_the_tunnel_end_to_end() {
    let (mut r1, mut r2) = router_pair();
    assert!(
        run_until_both(&mut r1, &mut r2, Duration::from_secs(30), |r1, _| {
            r1_knows_r2_stub(r1)
        }),
        "no convergence"
    );

    const BYTES: usize = 200_000;
    let checker = shared(StreamIntegrity::new());
    let sink = SinkServer::new(80, TcpConfig::default()).with_integrity(Arc::clone(&checker));
    r2.attach_app(0, Box::new(sink));
    let dst: catenet_wire::Ipv4Address = "10.9.2.1".parse().expect("addr");
    let sender = BulkSender::new(
        Endpoint::new(dst, 80),
        BYTES,
        TcpConfig::default(),
        Substrate::now(&r1) + Duration::from_millis(10),
    )
    .with_integrity(Arc::clone(&checker));
    let result = sender.result_handle();
    r1.attach_app(0, Box::new(sender));

    let done = run_until_both(&mut r1, &mut r2, Duration::from_secs(120), |_, _| {
        let r = result.lock().unwrap();
        r.completed_at.is_some() || r.aborted
    });
    assert!(done, "transfer neither completed nor aborted");
    let result = result.lock().unwrap();
    assert!(!result.aborted, "transfer aborted");
    assert_eq!(result.bytes_acked, BYTES as u64);
    let checker = checker.lock().unwrap();
    assert!(checker.is_complete(), "violations: {:?}", checker.violations());
    assert_eq!(checker.delivered_len(), BYTES);
    assert_eq!(checker.delivered_digest(), checker.sent_digest());
}

#[test]
fn iface_down_fails_routes_and_drops_ingress() {
    let (mut r1, mut r2) = router_pair();
    assert!(
        run_until_both(&mut r1, &mut r2, Duration::from_secs(30), |r1, _| {
            r1_knows_r2_stub(r1)
        }),
        "no convergence"
    );
    r1.set_iface_up(0, false);
    // The local engine fails everything over the interface at once.
    assert!(!r1_knows_r2_stub(&r1), "down iface still routes");
    // Frames the peer keeps sending are dropped at the door, and after
    // the route timeout the peer notices the silence too (distributed
    // failure detection — nobody told it).
    let peer_timed_out = run_until_both(&mut r1, &mut r2, Duration::from_secs(40), |_, r2| {
        r2.node(0)
            .dv
            .as_ref()
            .and_then(|dv| dv.lookup("10.9.1.1".parse().expect("addr")))
            .is_none()
    });
    assert!(peer_timed_out, "peer never timed the silent routes out");
    // Raise it again: the connected prefix comes back and RIP re-learns.
    r1.set_iface_up(0, true);
    assert!(
        run_until_both(&mut r1, &mut r2, Duration::from_secs(30), |r1, _| {
            r1_knows_r2_stub(r1)
        }),
        "no reconvergence after up"
    );
}

/// The ingress path's sibling of `random_wire_input_never_panics`: raw
/// garbage fed straight through the tunnel-decode-to-`handle_frame`
/// path is counted, dropped, and never panics — and the node still
/// works afterward.
#[test]
fn garbage_tunnel_payloads_never_panic_the_substrate() {
    let (mut r1, mut r2) = router_pair();
    let mut rng = Rng::from_seed(0x5EED_F422);
    let mut stats = TunnelStats::default();
    for case in 0..2000u64 {
        let len = rng.below(2100) as usize;
        let mut payload = vec![0u8; len];
        for byte in payload.iter_mut() {
            *byte = rng.next_u32() as u8;
        }
        if case % 2 == 0 && len >= 8 {
            // Plausible header so some frames reach handle_frame.
            payload[0..2].copy_from_slice(&0xC47Eu16.to_be_bytes());
            payload[2] = 1;
            payload[3] = 0;
            payload[4..6].copy_from_slice(&0u16.to_be_bytes());
            let body = (len - 8) as u16;
            payload[6..8].copy_from_slice(&body.to_be_bytes());
        }
        r1.ingest_payload(0, &payload, &mut stats);
    }
    assert_eq!(stats.accepted + stats.dropped(), 2000);
    assert!(stats.accepted > 0, "no payload survived to handle_frame");
    // The node shrugged it all off: RIP still converges afterward.
    assert!(
        run_until_both(&mut r1, &mut r2, Duration::from_secs(30), |r1, _| {
            r1_knows_r2_stub(r1)
        }),
        "no convergence after garbage storm"
    );
}

#[test]
fn wall_clock_slice_runs_too() {
    // A short smoke of the production WallClock driver: not the CI
    // workhorse (TestClock is), just proof the real sleep path works.
    let (pa, pb) = free_ports();
    let cfg = config::parse(&format!(
        "node router solo\n\
         iface 0 10.1.0.1/30 peer 10.1.0.2 link 1 bind 127.0.0.1:{pa} remote 127.0.0.1:{pb}\n"
    ))
    .expect("config");
    let mut sub = RealSubstrate::from_config(&cfg).expect("tunnels");
    let start = Substrate::now(&sub);
    sub.run_for(Duration::from_millis(30));
    let elapsed = Substrate::now(&sub).duration_since(start);
    assert!(elapsed >= Duration::from_millis(30));
    assert!(elapsed < Duration::from_secs(5), "run_for overslept: {elapsed:?}");
    let _ = Instant::ZERO; // keep the import honest
}
