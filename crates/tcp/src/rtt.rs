//! Round-trip-time estimation and retransmission timeout computation.
//!
//! Implements the Jacobson/Karels mean-and-deviation estimator (SIGCOMM
//! 1988 — the same year as Clark's paper) with Karn's rule: samples from
//! retransmitted segments are never used, because the sender cannot tell
//! which transmission the ACK answers. The RTO backs off exponentially on
//! each retransmission, which is what keeps end-to-end retransmission
//! stable over the enormous delay range of the "variety of networks"
//! (experiment E10 exercises a 2500× spread in path RTT).

use catenet_sim::{Duration, Instant};

/// Scaled fixed-point RTT estimator (the classic srtt/rttvar pair).
#[derive(Debug, Clone)]
pub struct RttEstimator {
    /// Smoothed RTT, in microseconds.
    srtt: f64,
    /// Mean deviation, in microseconds.
    rttvar: f64,
    /// Whether any sample has been taken.
    seeded: bool,
    /// Current backoff multiplier (doubles per retransmission).
    backoff: u32,
    /// When the currently timed segment was sent, and its end sequence
    /// marker (opaque to this module).
    timing: Option<(Instant, u32)>,
    /// Samples taken (for experiment accounting).
    pub samples: u64,
}

impl RttEstimator {
    /// Initial RTO before any sample exists (RFC 1122 suggests 3 s;
    /// we use 1 s as smoltcp and modern practice do).
    pub const INITIAL_RTO: Duration = Duration::from_secs(1);
    /// Lower bound on the RTO.
    pub const MIN_RTO: Duration = Duration::from_millis(200);
    /// Upper bound on the RTO.
    pub const MAX_RTO: Duration = Duration::from_secs(60);
    /// Maximum backoff doublings.
    const MAX_BACKOFF: u32 = 8;

    /// A fresh estimator.
    pub fn new() -> RttEstimator {
        RttEstimator {
            srtt: 0.0,
            rttvar: 0.0,
            seeded: false,
            backoff: 0,
            timing: None,
            samples: 0,
        }
    }

    /// The current retransmission timeout, including backoff.
    pub fn rto(&self) -> Duration {
        let base = if self.seeded {
            let micros = self.srtt + 4.0 * self.rttvar;
            Duration::from_micros(micros as u64)
        } else {
            Self::INITIAL_RTO
        };
        let backed_off = Duration::from_micros(
            base.total_micros()
                .saturating_mul(1u64 << self.backoff.min(Self::MAX_BACKOFF)),
        );
        backed_off.clamp(Self::MIN_RTO, Self::MAX_RTO)
    }

    /// The smoothed RTT estimate, if seeded.
    pub fn srtt(&self) -> Option<Duration> {
        self.seeded
            .then(|| Duration::from_micros(self.srtt as u64))
    }

    /// Begin timing a segment whose last sequence unit is `marker`,
    /// unless a measurement is already in flight (one sample per RTT).
    pub fn start_timing(&mut self, now: Instant, marker: u32) {
        if self.timing.is_none() {
            self.timing = Some((now, marker));
        }
    }

    /// Note that an ACK arrived covering `marker`s up to `acked`. Takes a
    /// sample if the timed segment is now acknowledged.
    pub fn on_ack(&mut self, now: Instant, acked_covers: impl Fn(u32) -> bool) {
        if let Some((sent_at, marker)) = self.timing {
            if acked_covers(marker) {
                self.timing = None;
                self.sample(now.duration_since(sent_at));
            }
        }
    }

    /// Karn's rule: a retransmission invalidates the in-flight timing
    /// (the eventual ACK would be ambiguous) and doubles the backoff.
    pub fn on_retransmit(&mut self) {
        self.timing = None;
        self.backoff = (self.backoff + 1).min(Self::MAX_BACKOFF);
    }

    /// Incorporate a clean sample (Jacobson/Karels constants: g = 1/8,
    /// h = 1/4) and reset the backoff.
    pub fn sample(&mut self, rtt: Duration) {
        let m = rtt.total_micros() as f64;
        if self.seeded {
            let err = m - self.srtt;
            self.srtt += err / 8.0;
            self.rttvar += (err.abs() - self.rttvar) / 4.0;
        } else {
            self.srtt = m;
            self.rttvar = m / 2.0;
            self.seeded = true;
        }
        self.backoff = 0;
        self.samples += 1;
    }

    /// Current backoff exponent (for tests and traces).
    pub fn backoff(&self) -> u32 {
        self.backoff
    }

    /// Whether a segment is currently being timed.
    pub fn is_timing(&self) -> bool {
        self.timing.is_some()
    }
}

impl Default for RttEstimator {
    fn default() -> Self {
        RttEstimator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_rto_is_one_second() {
        let est = RttEstimator::new();
        assert_eq!(est.rto(), Duration::from_secs(1));
        assert!(est.srtt().is_none());
    }

    #[test]
    fn first_sample_seeds_estimator() {
        let mut est = RttEstimator::new();
        est.sample(Duration::from_millis(100));
        assert_eq!(est.srtt(), Some(Duration::from_millis(100)));
        // RTO = srtt + 4 * (srtt/2) = 300 ms.
        assert_eq!(est.rto(), Duration::from_millis(300));
    }

    #[test]
    fn estimator_converges_on_stable_rtt() {
        let mut est = RttEstimator::new();
        for _ in 0..100 {
            est.sample(Duration::from_millis(50));
        }
        let srtt = est.srtt().unwrap();
        assert!((49..=51).contains(&srtt.total_millis()), "srtt={srtt}");
        // Variance decays toward zero, so the RTO approaches the floor.
        assert!(est.rto() < Duration::from_millis(250));
    }

    #[test]
    fn variance_widens_rto() {
        let mut est = RttEstimator::new();
        for i in 0..50 {
            let rtt = if i % 2 == 0 { 20 } else { 180 };
            est.sample(Duration::from_millis(rtt));
        }
        // Oscillating RTT keeps rttvar large; RTO well above the mean.
        assert!(est.rto() > Duration::from_millis(200));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut est = RttEstimator::new();
        est.sample(Duration::from_millis(100)); // RTO 300 ms
        est.on_retransmit();
        assert_eq!(est.rto(), Duration::from_millis(600));
        est.on_retransmit();
        assert_eq!(est.rto(), Duration::from_millis(1_200));
        for _ in 0..20 {
            est.on_retransmit();
        }
        assert_eq!(est.rto(), RttEstimator::MAX_RTO);
    }

    #[test]
    fn clean_sample_resets_backoff() {
        let mut est = RttEstimator::new();
        est.sample(Duration::from_millis(100));
        est.on_retransmit();
        est.on_retransmit();
        assert!(est.backoff() == 2);
        est.sample(Duration::from_millis(100));
        assert_eq!(est.backoff(), 0);
        // rttvar decays toward zero on identical samples, so the RTO is
        // at most the original 300 ms and strictly above srtt.
        assert!(est.rto() <= Duration::from_millis(300));
        assert!(est.rto() > Duration::from_millis(100));
    }

    #[test]
    fn timing_lifecycle_takes_one_sample() {
        let mut est = RttEstimator::new();
        est.start_timing(Instant::from_millis(0), 1000);
        assert!(est.is_timing());
        // A second start while timing is ignored.
        est.start_timing(Instant::from_millis(10), 2000);
        // ACK covering only an earlier marker: no sample.
        est.on_ack(Instant::from_millis(40), |m| m < 500);
        assert!(est.is_timing());
        // ACK covering the timed marker: sample of 80 ms.
        est.on_ack(Instant::from_millis(80), |m| m <= 1000);
        assert!(!est.is_timing());
        assert_eq!(est.samples, 1);
        assert_eq!(est.srtt(), Some(Duration::from_millis(80)));
    }

    #[test]
    fn karns_rule_discards_ambiguous_sample() {
        let mut est = RttEstimator::new();
        est.start_timing(Instant::from_millis(0), 1000);
        est.on_retransmit();
        // The ACK eventually covering the marker must NOT produce a sample.
        est.on_ack(Instant::from_millis(500), |_| true);
        assert_eq!(est.samples, 0);
        assert!(est.srtt().is_none());
    }

    #[test]
    fn rto_respects_floor() {
        let mut est = RttEstimator::new();
        for _ in 0..50 {
            est.sample(Duration::from_micros(100)); // sub-ms LAN RTT
        }
        assert_eq!(est.rto(), RttEstimator::MIN_RTO);
    }
}
