//! The TCP socket: RFC 793 state machine with 1988-era extensions.
//!
//! Sans-IO design in the smoltcp idiom: the socket never touches the
//! network. [`Socket::process`] consumes a parsed [`TcpRepr`] + payload,
//! [`Socket::dispatch`] produces the next segment to transmit (call it
//! until it returns `None`), and [`Socket::poll_at`] says when the next
//! timer needs service. All conversation state — windows, buffers,
//! timers, estimators — lives in this struct and nowhere else in the
//! network: that is fate-sharing, the paper's answer to survivability.

use crate::assembler::OutOfOrderBuffer;
use crate::congestion::{CongestionAlgo, CongestionControl, DupAckAction};
use crate::rtt::RttEstimator;
use catenet_sim::{Duration, Instant};
use catenet_wire::{Ipv4Address, TcpControl, TcpRepr, TcpSeqNumber};
use std::collections::VecDeque;

/// A transport endpoint: address and port.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Endpoint {
    /// The IPv4 address.
    pub addr: Ipv4Address,
    /// The port number.
    pub port: u16,
}

impl Endpoint {
    /// Construct an endpoint.
    pub const fn new(addr: Ipv4Address, port: u16) -> Endpoint {
        Endpoint { addr, port }
    }

    /// Whether both address and port are unspecified.
    pub fn is_unspecified(&self) -> bool {
        self.addr.is_unspecified() && self.port == 0
    }
}

impl core::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}:{}", self.addr, self.port)
    }
}

/// The RFC 793 connection states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// No connection.
    Closed,
    /// Passive open: waiting for a SYN.
    Listen,
    /// Active open: SYN sent, awaiting SYN-ACK.
    SynSent,
    /// SYN received, SYN-ACK sent, awaiting ACK.
    SynReceived,
    /// Data transfer.
    Established,
    /// We closed first; FIN sent, awaiting its ACK.
    FinWait1,
    /// Our FIN acked; awaiting the peer's FIN.
    FinWait2,
    /// Peer closed first; we may still send.
    CloseWait,
    /// Simultaneous close: both FINs in flight.
    Closing,
    /// We closed after the peer; awaiting the final ACK.
    LastAck,
    /// Both sides closed; draining old segments for 2·MSL.
    TimeWait,
}

impl State {
    /// Whether the connection is synchronized (RFC 793 terminology).
    pub fn is_synchronized(&self) -> bool {
        !matches!(self, State::Closed | State::Listen | State::SynSent | State::SynReceived)
    }
}

impl core::fmt::Display for State {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Errors surfaced to the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpError {
    /// The operation is illegal in the current state.
    InvalidState,
    /// The peer reset the connection.
    ConnectionReset,
    /// The peer closed its sending direction and the buffer is drained.
    Finished,
    /// The connection gave up after too many consecutive retransmission
    /// timeouts (RFC 1122's R2 threshold).
    TimedOut,
}

impl core::fmt::Display for TcpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TcpError::InvalidState => write!(f, "invalid state for operation"),
            TcpError::ConnectionReset => write!(f, "connection reset by peer"),
            TcpError::Finished => write!(f, "connection finished"),
            TcpError::TimedOut => write!(f, "connection timed out"),
        }
    }
}

impl std::error::Error for TcpError {}

/// Tunable parameters of a socket.
#[derive(Debug, Clone)]
pub struct SocketConfig {
    /// Transmit buffer capacity in bytes.
    pub tx_capacity: usize,
    /// Receive buffer capacity in bytes (bounds the advertised window).
    pub rx_capacity: usize,
    /// Our maximum segment size (advertised in the SYN). 536 was the
    /// 1988 default for non-local destinations.
    pub mss: usize,
    /// Whether Nagle's algorithm coalesces small writes.
    pub nagle: bool,
    /// Congestion-control algorithm.
    pub congestion: CongestionAlgo,
    /// Delayed-ACK interval; `None` acks every segment immediately.
    pub delayed_ack: Option<Duration>,
    /// Maximum segment lifetime (TIME-WAIT lasts 2·MSL).
    pub msl: Duration,
    /// Give up the connection after this many *consecutive* RTO
    /// expirations with no forward progress (RFC 1122 §4.2.3.5's "R2"
    /// threshold). `None` retries forever — the 1980s default, and the
    /// default here so survivability experiments show the architecture's
    /// patience rather than the host's.
    pub max_retries: Option<u32>,
    /// Initial send sequence number (the stack supplies randomness).
    pub initial_seq: u32,
    /// Carry a CRC32C over every data segment's payload as a TCP option
    /// (kind 253), closing the Internet checksum's ~1/65536 escape
    /// classes at a cost of 8 header bytes per data segment. Off by
    /// default: the off arm emits byte-identical segments to a stack
    /// without the feature. Receivers verify whenever the option is
    /// present, so no negotiation is needed.
    pub payload_crc: bool,
}

impl Default for SocketConfig {
    fn default() -> SocketConfig {
        SocketConfig {
            tx_capacity: 65_535,
            rx_capacity: 65_535,
            mss: 536,
            nagle: true,
            congestion: CongestionAlgo::Tahoe,
            delayed_ack: Some(Duration::from_millis(200)),
            msl: Duration::from_secs(30),
            max_retries: None,
            initial_seq: 0x1000,
            payload_crc: false,
        }
    }
}

/// Counters for the experiment harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct SocketStats {
    /// Segments emitted (all kinds).
    pub segs_sent: u64,
    /// Segments accepted by `process`.
    pub segs_received: u64,
    /// Payload bytes emitted, including retransmissions.
    pub bytes_sent: u64,
    /// Payload bytes cumulatively acknowledged.
    pub bytes_acked: u64,
    /// Payload bytes delivered to the application in order.
    pub bytes_received: u64,
    /// Segments re-emitted (timeout or fast retransmit).
    pub retransmits: u64,
    /// Duplicate ACKs observed.
    pub dup_acks: u64,
    /// Zero-window probes sent.
    pub probes_sent: u64,
    /// RTO expirations.
    pub timeouts: u64,
    /// ICMP source quenches applied.
    pub quenches: u64,
}

/// A TCP socket.
#[derive(Debug, Clone)]
pub struct Socket {
    config: SocketConfig,
    state: State,
    local: Endpoint,
    remote: Endpoint,

    // Send sequence space.
    iss: TcpSeqNumber,
    /// Oldest unacknowledged sequence number.
    snd_una: TcpSeqNumber,
    /// Next sequence number to transmit (pulled back on retransmission).
    snd_nxt: TcpSeqNumber,
    /// Highest sequence number ever transmitted (+1).
    snd_max: TcpSeqNumber,
    /// Peer's advertised window.
    snd_wnd: usize,
    /// Segment seq/ack used for the last window update.
    snd_wl1: TcpSeqNumber,
    snd_wl2: TcpSeqNumber,
    /// Sequence number of tx_buffer[0].
    tx_base_seq: TcpSeqNumber,
    tx_buffer: VecDeque<u8>,
    /// Application requested close; FIN pending or sent.
    fin_queued: bool,
    /// Sequence number our FIN occupies, once determined.
    fin_seq: Option<TcpSeqNumber>,

    // Receive sequence space.
    irs: TcpSeqNumber,
    rcv_nxt: TcpSeqNumber,
    rx_buffer: VecDeque<u8>,
    ooo: OutOfOrderBuffer,
    /// Peer's FIN has been received and sequenced.
    rx_fin: bool,

    // Adaptive machinery.
    rtt: RttEstimator,
    cc: CongestionControl,
    /// Effective MSS (min of ours and the peer's advertisement).
    effective_mss: usize,
    dup_ack_count: u32,

    // Timers and pending actions.
    retransmit_at: Option<Instant>,
    delayed_ack_at: Option<Instant>,
    probe_at: Option<Instant>,
    time_wait_until: Option<Instant>,
    ack_pending: bool,
    segs_since_ack: u8,
    /// Set when the peer reset the connection.
    reset_by_peer: bool,
    /// Set when the connection gave up after R2 consecutive timeouts.
    timed_out_conn: bool,
    /// Consecutive RTO expirations since the last forward progress.
    consecutive_timeouts: u32,
    /// Set to emit an RST (on abort).
    rst_pending: bool,

    /// Counters.
    pub stats: SocketStats,
}

impl Socket {
    /// A closed socket with the given configuration.
    pub fn new(config: SocketConfig) -> Socket {
        assert!(config.mss >= 64, "MSS unreasonably small");
        let cc = CongestionControl::new(config.congestion, config.mss);
        let ooo = OutOfOrderBuffer::new(config.rx_capacity);
        Socket {
            config,
            state: State::Closed,
            local: Endpoint::default(),
            remote: Endpoint::default(),
            iss: TcpSeqNumber(0),
            snd_una: TcpSeqNumber(0),
            snd_nxt: TcpSeqNumber(0),
            snd_max: TcpSeqNumber(0),
            snd_wnd: 0,
            snd_wl1: TcpSeqNumber(0),
            snd_wl2: TcpSeqNumber(0),
            tx_base_seq: TcpSeqNumber(0),
            tx_buffer: VecDeque::new(),
            fin_queued: false,
            fin_seq: None,
            irs: TcpSeqNumber(0),
            rcv_nxt: TcpSeqNumber(0),
            rx_buffer: VecDeque::new(),
            ooo,
            rx_fin: false,
            rtt: RttEstimator::new(),
            cc,
            effective_mss: 536,
            dup_ack_count: 0,
            retransmit_at: None,
            delayed_ack_at: None,
            probe_at: None,
            time_wait_until: None,
            ack_pending: false,
            segs_since_ack: 0,
            reset_by_peer: false,
            timed_out_conn: false,
            consecutive_timeouts: 0,
            rst_pending: false,
            stats: SocketStats::default(),
        }
    }

    // ------------------------------------------------------- accessors

    /// The connection state.
    pub fn state(&self) -> State {
        self.state
    }

    /// The local endpoint.
    pub fn local(&self) -> Endpoint {
        self.local
    }

    /// The remote endpoint (unspecified while listening).
    pub fn remote(&self) -> Endpoint {
        self.remote
    }

    /// The effective (negotiated) maximum segment size.
    pub fn effective_mss(&self) -> usize {
        self.effective_mss
    }

    /// The congestion controller (for experiment introspection).
    pub fn congestion(&self) -> &CongestionControl {
        &self.cc
    }

    /// The RTT estimator (for experiment introspection).
    pub fn rtt(&self) -> &RttEstimator {
        &self.rtt
    }

    /// Whether the socket is fully dead (Closed with nothing pending).
    pub fn is_closed(&self) -> bool {
        self.state == State::Closed && !self.rst_pending
    }

    /// Whether the connection is usefully open in at least one direction.
    pub fn is_active(&self) -> bool {
        !matches!(self.state, State::Closed | State::Listen | State::TimeWait)
    }

    /// Whether the application may call `send_slice`.
    pub fn may_send(&self) -> bool {
        matches!(self.state, State::Established | State::CloseWait) && !self.fin_queued
    }

    /// Whether data may yet arrive (or is already buffered).
    pub fn may_recv(&self) -> bool {
        !self.rx_buffer.is_empty()
            || matches!(
                self.state,
                State::Established | State::FinWait1 | State::FinWait2 | State::SynReceived
            )
    }

    /// Bytes waiting in the receive buffer.
    pub fn recv_queue_len(&self) -> usize {
        self.rx_buffer.len()
    }

    /// Bytes waiting in the transmit buffer (unacked + unsent).
    pub fn send_queue_len(&self) -> usize {
        self.tx_buffer.len()
    }

    /// Whether every byte the application wrote has been acknowledged.
    pub fn all_acked(&self) -> bool {
        self.tx_buffer.is_empty()
    }

    fn rcv_wnd(&self) -> usize {
        self.config
            .rx_capacity
            .saturating_sub(self.rx_buffer.len())
            .min(65_535)
    }

    // ------------------------------------------------------ open/close

    /// Passive open on `local`.
    pub fn listen(&mut self, local: Endpoint) -> Result<(), TcpError> {
        if self.state != State::Closed {
            return Err(TcpError::InvalidState);
        }
        self.local = local;
        self.remote = Endpoint::default();
        self.state = State::Listen;
        Ok(())
    }

    /// Active open from `local` to `remote` at time `now`.
    pub fn connect(&mut self, local: Endpoint, remote: Endpoint, now: Instant) -> Result<(), TcpError> {
        if self.state != State::Closed {
            return Err(TcpError::InvalidState);
        }
        if remote.addr.is_unspecified() || remote.port == 0 || local.port == 0 {
            return Err(TcpError::InvalidState);
        }
        self.local = local;
        self.remote = remote;
        self.iss = TcpSeqNumber(self.config.initial_seq);
        self.snd_una = self.iss;
        self.snd_nxt = self.iss;
        self.snd_max = self.iss;
        self.tx_base_seq = self.iss + 1;
        self.state = State::SynSent;
        let _ = now;
        Ok(())
    }

    /// Graceful close: send remaining data, then FIN.
    pub fn close(&mut self) {
        match self.state {
            State::Listen | State::SynSent => {
                self.state = State::Closed;
            }
            State::SynReceived | State::Established => {
                self.fin_queued = true;
                self.state = State::FinWait1;
            }
            State::CloseWait => {
                self.fin_queued = true;
                self.state = State::LastAck;
            }
            _ => {}
        }
    }

    /// Hard abort: emit RST (if synchronized) and drop all state.
    pub fn abort(&mut self) {
        if self.state.is_synchronized() {
            self.rst_pending = true;
        }
        self.reset_to_closed();
    }

    /// Whether the connection gave up after `max_retries` consecutive
    /// RTO expirations (RFC 1122's R2). The closed state it leaves
    /// behind is an *error* outcome, not a graceful close — callers
    /// inspecting only [`Socket::state`] would confuse the two.
    pub fn has_timed_out(&self) -> bool {
        self.timed_out_conn
    }

    fn reset_to_closed(&mut self) {
        self.state = State::Closed;
        self.tx_buffer.clear();
        self.rx_buffer.clear();
        self.ooo.clear();
        self.fin_queued = false;
        self.fin_seq = None;
        self.retransmit_at = None;
        self.delayed_ack_at = None;
        self.probe_at = None;
        self.time_wait_until = None;
        self.ack_pending = false;
    }

    // ----------------------------------------------------- application

    /// Free space in the transmit buffer: the number of bytes the next
    /// [`send_slice`](Socket::send_slice) would accept. Lets an
    /// application size (or skip) its chunk instead of materializing
    /// data the buffer has no room for.
    pub fn send_room(&self) -> usize {
        self.config.tx_capacity - self.tx_buffer.len()
    }

    /// Append data to the transmit buffer; returns bytes accepted.
    pub fn send_slice(&mut self, data: &[u8]) -> Result<usize, TcpError> {
        if self.reset_by_peer {
            return Err(TcpError::ConnectionReset);
        }
        if self.timed_out_conn {
            return Err(TcpError::TimedOut);
        }
        match self.state {
            State::Established | State::CloseWait => {}
            State::SynSent | State::SynReceived => {} // queue before handshake completes
            _ => return Err(TcpError::InvalidState),
        }
        if self.fin_queued {
            return Err(TcpError::InvalidState);
        }
        let room = self.config.tx_capacity - self.tx_buffer.len();
        let take = data.len().min(room);
        self.tx_buffer.extend(&data[..take]);
        Ok(take)
    }

    /// Read received data into `buf`; returns bytes read (possibly 0).
    pub fn recv_slice(&mut self, buf: &mut [u8]) -> Result<usize, TcpError> {
        if self.rx_buffer.is_empty() {
            if self.reset_by_peer {
                return Err(TcpError::ConnectionReset);
            }
            if self.timed_out_conn {
                return Err(TcpError::TimedOut);
            }
            if self.rx_fin || matches!(self.state, State::Closed | State::TimeWait) {
                return Err(TcpError::Finished);
            }
            return Ok(0);
        }
        let n = buf.len().min(self.rx_buffer.len());
        for slot in buf[..n].iter_mut() {
            *slot = self.rx_buffer.pop_front().expect("n bounded by len");
        }
        Ok(n)
    }

    /// An ICMP source quench arrived for this connection: the network
    /// (a 1988 gateway under buffer pressure) asked us to slow down.
    pub fn on_source_quench(&mut self) {
        self.cc.on_quench();
        self.stats.quenches += 1;
    }

    // ---------------------------------------------------------- timers

    /// When the socket next needs `dispatch` called for timer service.
    pub fn poll_at(&self) -> Option<Instant> {
        if self.wants_to_transmit_now() {
            return Some(Instant::ZERO); // immediately
        }
        [
            self.retransmit_at,
            self.delayed_ack_at,
            self.probe_at,
            self.time_wait_until,
        ]
        .into_iter()
        .flatten()
        .min()
    }

    fn wants_to_transmit_now(&self) -> bool {
        if self.rst_pending || self.ack_pending {
            return true;
        }
        match self.state {
            State::SynSent | State::SynReceived => self.snd_nxt == self.iss,
            _ => self.has_sendable_data() || self.fin_ready_to_send(),
        }
    }

    fn end_of_data_seq(&self) -> TcpSeqNumber {
        self.tx_base_seq + self.tx_buffer.len()
    }

    fn has_sendable_data(&self) -> bool {
        if !self.state.is_synchronized() && self.state != State::SynReceived {
            return false;
        }
        if self.snd_nxt < self.tx_base_seq {
            // SYN still unacknowledged and at the front of the send queue.
            return false;
        }
        let unsent = (self.end_of_data_seq() - self.snd_nxt).max(0) as usize;
        if unsent == 0 {
            return false;
        }
        self.usable_window() > 0 && self.segment_would_pass_nagle(unsent)
    }

    fn fin_ready_to_send(&self) -> bool {
        self.fin_queued
            && self.fin_seq.is_none()
            && self.snd_nxt == self.end_of_data_seq()
            && self.snd_nxt >= self.tx_base_seq
    }

    fn usable_window(&self) -> usize {
        let flow = self.snd_wnd.min(self.cc.window());
        let in_flight = (self.snd_nxt - self.snd_una).max(0) as usize;
        flow.saturating_sub(in_flight)
    }

    fn segment_would_pass_nagle(&self, unsent: usize) -> bool {
        if !self.config.nagle {
            return true;
        }
        // Retransmissions always pass.
        if self.snd_nxt < self.snd_max {
            return true;
        }
        let in_flight = (self.snd_nxt - self.snd_una).max(0) as usize;
        // Full segment, or nothing outstanding, or closing (flush).
        unsent.min(self.usable_window()) >= self.effective_mss
            || in_flight == 0
            || self.fin_queued
    }

    fn service_timers(&mut self, now: Instant) {
        if let Some(at) = self.time_wait_until {
            if now >= at {
                self.reset_to_closed();
                return;
            }
        }
        if let Some(at) = self.delayed_ack_at {
            if now >= at {
                self.delayed_ack_at = None;
                self.ack_pending = true;
            }
        }
        if let Some(at) = self.retransmit_at {
            if now >= at && self.snd_max > self.snd_una {
                // RTO: rewind the cursor; congestion collapse; Karn.
                self.stats.timeouts += 1;
                self.consecutive_timeouts += 1;
                if let Some(limit) = self.config.max_retries {
                    if self.consecutive_timeouts > limit {
                        // RFC 1122 R2: the peer is gone; stop trying.
                        self.timed_out_conn = true;
                        self.reset_to_closed();
                        return;
                    }
                }
                let flight = (self.snd_max - self.snd_una).max(0) as usize;
                self.cc.on_timeout(flight);
                self.rtt.on_retransmit();
                self.snd_nxt = self.snd_una;
                self.dup_ack_count = 0;
                self.retransmit_at = Some(now + self.rtt.rto());
            } else if self.snd_max == self.snd_una {
                self.retransmit_at = None;
            }
        }
    }

    // -------------------------------------------------------- dispatch

    /// Produce the next segment to transmit, if any. Call repeatedly
    /// until `None`. The returned payload length always equals
    /// `repr.payload_len`.
    pub fn dispatch(&mut self, now: Instant) -> Option<(TcpRepr, Vec<u8>)> {
        self.service_timers(now);

        if self.rst_pending {
            self.rst_pending = false;
            let repr = TcpRepr {
                src_port: self.local.port,
                dst_port: self.remote.port,
                control: TcpControl::Rst,
                seq_number: self.snd_nxt,
                ack_number: Some(self.rcv_nxt),
                window_len: 0,
                max_seg_size: None,
                payload_crc: None,
                payload_len: 0,
            };
            self.stats.segs_sent += 1;
            return Some((repr, Vec::new()));
        }

        match self.state {
            State::Closed | State::Listen | State::TimeWait => {
                // TIME-WAIT only ACKs retransmitted FINs (via ack_pending).
                if self.state == State::TimeWait && self.ack_pending {
                    return Some(self.make_ack());
                }
                None
            }
            State::SynSent => {
                if self.snd_nxt == self.iss {
                    Some(self.make_syn(now, false))
                } else {
                    None
                }
            }
            State::SynReceived => {
                if self.snd_nxt == self.iss {
                    Some(self.make_syn(now, true))
                } else if self.ack_pending {
                    Some(self.make_ack())
                } else {
                    None
                }
            }
            _ => self.dispatch_synchronized(now),
        }
    }

    fn make_syn(&mut self, now: Instant, is_syn_ack: bool) -> (TcpRepr, Vec<u8>) {
        let repr = TcpRepr {
            src_port: self.local.port,
            dst_port: self.remote.port,
            control: TcpControl::Syn,
            seq_number: self.iss,
            ack_number: is_syn_ack.then_some(self.rcv_nxt),
            window_len: self.rcv_wnd() as u16,
            max_seg_size: Some(self.config.mss as u16),
            payload_crc: None,
            payload_len: 0,
        };
        self.snd_nxt = self.iss + 1;
        if self.snd_max < self.snd_nxt {
            self.snd_max = self.snd_nxt;
        } else {
            self.stats.retransmits += 1;
        }
        self.rtt.start_timing(now, (self.iss + 1).to_u32());
        self.retransmit_at = Some(now + self.rtt.rto());
        self.ack_pending = false;
        self.stats.segs_sent += 1;
        (repr, Vec::new())
    }

    fn make_ack(&mut self) -> (TcpRepr, Vec<u8>) {
        self.ack_pending = false;
        self.delayed_ack_at = None;
        self.segs_since_ack = 0;
        let repr = TcpRepr {
            src_port: self.local.port,
            dst_port: self.remote.port,
            control: TcpControl::None,
            seq_number: self.snd_nxt.max(self.snd_una),
            ack_number: Some(self.rcv_nxt),
            window_len: self.rcv_wnd() as u16,
            max_seg_size: None,
            payload_crc: None,
            payload_len: 0,
        };
        self.stats.segs_sent += 1;
        (repr, Vec::new())
    }

    fn dispatch_synchronized(&mut self, now: Instant) -> Option<(TcpRepr, Vec<u8>)> {
        // 1. Data (or FIN) within the window.
        if let Some(seg) = self.make_data_segment(now) {
            return Some(seg);
        }
        // 2. Zero-window probe.
        if let Some(at) = self.probe_at {
            if now >= at && self.snd_wnd == 0 && !self.tx_buffer.is_empty() {
                return Some(self.make_probe(now));
            }
        }
        if self.snd_wnd == 0 && !self.tx_buffer.is_empty() && self.probe_at.is_none() {
            self.probe_at = Some(now + self.rtt.rto());
        }
        // 3. Pure ACK.
        if self.ack_pending {
            return Some(self.make_ack());
        }
        None
    }

    fn make_data_segment(&mut self, now: Instant) -> Option<(TcpRepr, Vec<u8>)> {
        if self.snd_nxt < self.tx_base_seq {
            // Our SYN occupies the cursor position: handled by state
            // machine (SynSent/SynReceived), not here. For synchronized
            // states this means a retransmit rewound to an acked SYN —
            // skip forward.
            self.snd_nxt = self.tx_base_seq;
        }
        let end_of_data = self.end_of_data_seq();
        let unsent = (end_of_data - self.snd_nxt).max(0) as usize;
        let window = self.usable_window();

        let send_fin_here = self.fin_queued
            && self.snd_nxt + unsent.min(window).min(self.effective_mss) == end_of_data
            && match self.fin_seq {
                None => true,
                // FIN retransmission: cursor rewound at or before it.
                Some(fin_seq) => self.snd_nxt <= fin_seq,
            };

        if unsent == 0 && !send_fin_here {
            return None;
        }
        if unsent > 0 && window == 0 {
            return None;
        }
        if unsent > 0 && !self.segment_would_pass_nagle(unsent) {
            return None;
        }

        let len = unsent.min(window).min(self.effective_mss);
        let offset = (self.snd_nxt - self.tx_base_seq).max(0) as usize;
        let payload: Vec<u8> = self
            .tx_buffer
            .iter()
            .skip(offset)
            .take(len)
            .copied()
            .collect();

        let fin_now = send_fin_here && offset + len == self.tx_buffer.len();
        // FIN needs window room only conceptually; RFC allows FIN even
        // with zero window. We allow it.
        let control = if fin_now {
            TcpControl::Fin
        } else if payload.is_empty() {
            return None;
        } else {
            TcpControl::Psh
        };

        let seq = self.snd_nxt;
        let seg_len = payload.len() + control.len();
        let is_retransmit = seq < self.snd_max;
        if fin_now {
            self.fin_seq = Some(seq + payload.len());
        }
        self.snd_nxt = seq + seg_len;
        if self.snd_max < self.snd_nxt {
            self.snd_max = self.snd_nxt;
            self.rtt.start_timing(now, self.snd_nxt.to_u32());
        }
        if is_retransmit {
            self.stats.retransmits += 1;
        }
        self.retransmit_at = Some(now + self.rtt.rto());

        let repr = TcpRepr {
            src_port: self.local.port,
            dst_port: self.remote.port,
            control,
            seq_number: seq,
            ack_number: Some(self.rcv_nxt),
            window_len: self.rcv_wnd() as u16,
            max_seg_size: None,
            payload_crc: (self.config.payload_crc && !payload.is_empty())
                .then(|| catenet_wire::crc32c(&payload)),
            payload_len: payload.len(),
        };
        self.ack_pending = false;
        self.delayed_ack_at = None;
        self.segs_since_ack = 0;
        self.stats.segs_sent += 1;
        self.stats.bytes_sent += payload.len() as u64;
        Some((repr, payload))
    }

    fn make_probe(&mut self, now: Instant) -> (TcpRepr, Vec<u8>) {
        // Send one byte beyond the window to force a window update.
        let offset = (self.snd_nxt - self.tx_base_seq).max(0) as usize;
        let payload: Vec<u8> = if offset < self.tx_buffer.len() {
            vec![self.tx_buffer[offset]]
        } else {
            Vec::new()
        };
        let repr = TcpRepr {
            src_port: self.local.port,
            dst_port: self.remote.port,
            control: TcpControl::None,
            seq_number: self.snd_nxt,
            ack_number: Some(self.rcv_nxt),
            window_len: self.rcv_wnd() as u16,
            max_seg_size: None,
            payload_crc: (self.config.payload_crc && !payload.is_empty())
                .then(|| catenet_wire::crc32c(&payload)),
            payload_len: payload.len(),
        };
        // The probe byte occupies sequence space: if the receiver has
        // room after all, its ACK covers it and must be creditable.
        self.snd_nxt = self.snd_nxt + payload.len();
        if self.snd_max < self.snd_nxt {
            self.snd_max = self.snd_nxt;
        }
        self.stats.bytes_sent += payload.len() as u64;
        // Back the probe timer off.
        self.rtt.on_retransmit();
        self.probe_at = Some(now + self.rtt.rto());
        self.stats.probes_sent += 1;
        self.stats.segs_sent += 1;
        (repr, payload)
    }

    // --------------------------------------------------------- process

    /// Whether this socket should be offered `repr` (endpoint match).
    pub fn accepts(&self, local_addr: Ipv4Address, remote_addr: Ipv4Address, repr: &TcpRepr) -> bool {
        if self.state == State::Closed {
            return false;
        }
        if repr.dst_port != self.local.port {
            return false;
        }
        if !self.local.addr.is_unspecified() && self.local.addr != local_addr {
            return false;
        }
        if self.state == State::Listen {
            return repr.control == TcpControl::Syn && repr.ack_number.is_none();
        }
        self.remote.port == repr.src_port && self.remote.addr == remote_addr
    }

    /// Process an incoming segment. `local_addr`/`remote_addr` are the IP
    /// addresses of the carrying datagram (destination and source).
    pub fn process(
        &mut self,
        now: Instant,
        local_addr: Ipv4Address,
        remote_addr: Ipv4Address,
        repr: &TcpRepr,
        payload: &[u8],
    ) {
        debug_assert_eq!(repr.payload_len, payload.len());
        self.stats.segs_received += 1;
        self.service_timers(now);

        match self.state {
            State::Closed => {}
            State::Listen => self.process_listen(now, local_addr, remote_addr, repr),
            State::SynSent => self.process_syn_sent(now, repr),
            _ => self.process_general(now, repr, payload),
        }
    }

    fn process_listen(
        &mut self,
        _now: Instant,
        local_addr: Ipv4Address,
        remote_addr: Ipv4Address,
        repr: &TcpRepr,
    ) {
        if repr.control != TcpControl::Syn || repr.ack_number.is_some() {
            return; // stray segment; the stack-level RST handles it
        }
        self.local = Endpoint::new(local_addr, repr.dst_port);
        self.remote = Endpoint::new(remote_addr, repr.src_port);
        self.irs = repr.seq_number;
        self.rcv_nxt = repr.seq_number + 1;
        self.iss = TcpSeqNumber(self.config.initial_seq);
        self.snd_una = self.iss;
        self.snd_nxt = self.iss;
        self.snd_max = self.iss;
        self.tx_base_seq = self.iss + 1;
        self.snd_wnd = usize::from(repr.window_len);
        self.snd_wl1 = repr.seq_number;
        self.snd_wl2 = self.iss;
        if let Some(mss) = repr.max_seg_size {
            self.effective_mss = self.config.mss.min(usize::from(mss));
        } else {
            self.effective_mss = self.config.mss.min(536);
        }
        self.cc = CongestionControl::new(self.config.congestion, self.effective_mss);
        self.state = State::SynReceived;
    }

    fn process_syn_sent(&mut self, now: Instant, repr: &TcpRepr) {
        match (repr.control, repr.ack_number) {
            (TcpControl::Rst, ack)
                // Only a RST acking our SYN kills us.
                if ack == Some(self.iss + 1) => {
                    self.reset_by_peer = true;
                    self.reset_to_closed();
                }
            (TcpControl::Syn, Some(ack)) => {
                if ack != self.iss + 1 {
                    // Half-open remnant: tell them to go away.
                    self.rst_pending = false; // stack sends RST via challenge
                    return;
                }
                self.establish_from_syn(now, repr);
                self.snd_una = ack;
                self.state = State::Established;
                self.rtt.on_ack(now, |marker| {
                    (TcpSeqNumber(marker) - self.snd_una) <= 0
                });
                self.retransmit_at = None;
                self.ack_pending = true;
            }
            (TcpControl::Syn, None) => {
                // Simultaneous open.
                self.establish_from_syn(now, repr);
                self.snd_nxt = self.iss; // re-send as SYN-ACK
                self.state = State::SynReceived;
            }
            _ => {}
        }
    }

    fn establish_from_syn(&mut self, _now: Instant, repr: &TcpRepr) {
        self.irs = repr.seq_number;
        self.rcv_nxt = repr.seq_number + 1;
        self.snd_wnd = usize::from(repr.window_len);
        self.snd_wl1 = repr.seq_number;
        self.snd_wl2 = self.snd_una;
        if let Some(mss) = repr.max_seg_size {
            self.effective_mss = self.config.mss.min(usize::from(mss));
        } else {
            self.effective_mss = self.config.mss.min(536);
        }
        self.cc = CongestionControl::new(self.config.congestion, self.effective_mss);
    }

    fn process_general(&mut self, now: Instant, repr: &TcpRepr, payload: &[u8]) {
        // --- RST.
        if repr.control == TcpControl::Rst {
            // Accept only if in-window (blind-reset hardening).
            let in_window = (repr.seq_number - self.rcv_nxt) >= 0
                && ((repr.seq_number - self.rcv_nxt) as usize) < self.rcv_wnd().max(1);
            if in_window || repr.seq_number == self.rcv_nxt {
                self.reset_by_peer = true;
                self.reset_to_closed();
            }
            return;
        }

        // --- A SYN in a synchronized state: challenge-ACK.
        if repr.control == TcpControl::Syn && self.state != State::SynReceived {
            self.ack_pending = true;
            return;
        }

        // --- Sequence acceptability (RFC 793 p.26).
        let seg_len = payload.len() + repr.control.len();
        let seq = repr.seq_number;
        let window = self.rcv_wnd();
        let seq_offset = seq - self.rcv_nxt; // may be negative (old data)
        let acceptable = if seg_len == 0 {
            if window == 0 {
                seq == self.rcv_nxt
            } else {
                seq_offset >= -(65_535i32) && (seq_offset as i64) < window as i64
            }
        } else {
            // Some part of the segment must fall in the window (or abut
            // rcv_nxt from the left — pure retransmission).
            let seg_end = seq_offset as i64 + seg_len as i64;
            seg_end > 0 && (seq_offset as i64) < window as i64
        };
        if !acceptable {
            // Simultaneous open: the peer's SYN-ACK re-uses the SYN's
            // sequence number we already consumed, so it fails the window
            // check — but its ACK of our SYN is still valid and must
            // establish the connection, or both sides deadlock until RTO.
            if self.state == State::SynReceived && repr.control == TcpControl::Syn {
                if let Some(ack) = repr.ack_number {
                    if ack == self.iss + 1 {
                        self.snd_una = ack;
                        self.retransmit_at = None;
                        self.state = State::Established;
                    }
                }
            }
            // Old or far-future segment: re-ACK so the peer resyncs.
            self.ack_pending = true;
            return;
        }

        // --- ACK processing.
        if let Some(ack) = repr.ack_number {
            self.process_ack(now, repr, ack, payload.len());
        }

        // In SynReceived, an acceptable ACK of our SYN promotes us.
        if self.state == State::SynReceived {
            if let Some(ack) = repr.ack_number {
                if ack == self.iss + 1 {
                    self.state = State::Established;
                }
            }
        }

        // --- Payload.
        if !payload.is_empty() {
            self.process_payload(now, seq, payload);
        }

        // --- FIN.
        if repr.control == TcpControl::Fin {
            let fin_seq = seq + payload.len();
            if fin_seq == self.rcv_nxt {
                self.rcv_nxt = self.rcv_nxt + 1;
                self.rx_fin = true;
                self.ack_pending = true;
                match self.state {
                    State::SynReceived | State::Established => self.state = State::CloseWait,
                    State::FinWait1 => {
                        // Did they also ack our FIN?
                        if self.fin_acked() {
                            self.enter_time_wait(now);
                        } else {
                            self.state = State::Closing;
                        }
                    }
                    State::FinWait2 => self.enter_time_wait(now),
                    State::TimeWait => {
                        // Retransmitted FIN: restart 2MSL.
                        self.enter_time_wait(now);
                    }
                    _ => {}
                }
            } else if (fin_seq - self.rcv_nxt) > 0 {
                // FIN beyond a gap — ACK what we have; sender retransmits.
                self.ack_pending = true;
            } else {
                // Duplicate FIN (already sequenced): re-ACK it.
                self.ack_pending = true;
            }
        }
    }

    fn fin_acked(&self) -> bool {
        match self.fin_seq {
            Some(fin_seq) => (self.snd_una - (fin_seq + 1)) >= 0,
            None => false,
        }
    }

    fn enter_time_wait(&mut self, now: Instant) {
        self.state = State::TimeWait;
        self.time_wait_until = Some(now + self.config.msl * 2);
        self.retransmit_at = None;
        self.probe_at = None;
        self.ack_pending = true;
    }

    fn process_ack(&mut self, now: Instant, repr: &TcpRepr, ack: TcpSeqNumber, payload_len: usize) {
        // Ignore ACKs of data we never sent.
        if (ack - self.snd_max) > 0 {
            self.ack_pending = true;
            return;
        }

        let advance = (ack - self.snd_una).max(0) as usize;
        if advance > 0 {
            // Count data bytes (exclude SYN/FIN sequence units).
            let mut data_acked = advance;
            if (self.snd_una - (self.iss + 1)) < 0 && (ack - (self.iss + 1)) >= 0 {
                data_acked -= 1; // SYN consumed one unit
            }
            if let Some(fin_seq) = self.fin_seq {
                if (self.snd_una - (fin_seq + 1)) < 0 && (ack - (fin_seq + 1)) >= 0 {
                    data_acked -= 1; // FIN consumed one unit
                }
            }
            // Release acknowledged bytes from the transmit buffer.
            let buf_acked = {
                let past_base = (ack - self.tx_base_seq).max(0) as usize;
                past_base.min(self.tx_buffer.len())
            };
            for _ in 0..buf_acked {
                self.tx_buffer.pop_front();
            }
            self.tx_base_seq = self.tx_base_seq + buf_acked;
            self.snd_una = ack;
            if self.snd_nxt < ack {
                self.snd_nxt = ack;
            }
            self.stats.bytes_acked += data_acked as u64;
            self.dup_ack_count = 0;
            self.consecutive_timeouts = 0;
            self.rtt.on_ack(now, |marker| (TcpSeqNumber(marker) - ack) <= 0);
            self.cc.on_ack(data_acked);
            // Timer: restart if data remains, clear otherwise.
            self.retransmit_at = if self.snd_max > self.snd_una {
                Some(now + self.rtt.rto())
            } else {
                None
            };
            // Our FIN acked?
            if self.fin_acked() {
                match self.state {
                    State::FinWait1 => self.state = State::FinWait2,
                    State::Closing => self.enter_time_wait(now),
                    State::LastAck => self.reset_to_closed(),
                    _ => {}
                }
            }
        } else if payload_len == 0
            && ack == self.snd_una
            && self.snd_max > self.snd_una
            && usize::from(repr.window_len) == self.snd_wnd
        {
            // Duplicate ACK.
            self.dup_ack_count += 1;
            self.stats.dup_acks += 1;
            let flight = (self.snd_max - self.snd_una).max(0) as usize;
            if let DupAckAction::FastRetransmit = self.cc.on_dup_ack(self.dup_ack_count, flight) {
                self.snd_nxt = self.snd_una;
                self.rtt.on_retransmit();
            }
        }

        // Window update (RFC 793 p.72 condition).
        let seq = repr.seq_number;
        if (seq - self.snd_wl1) > 0
            || (seq == self.snd_wl1 && (ack - self.snd_wl2) >= 0)
        {
            let new_wnd = usize::from(repr.window_len);
            if self.snd_wnd == 0 && new_wnd > 0 {
                self.probe_at = None;
            }
            self.snd_wnd = new_wnd;
            self.snd_wl1 = seq;
            self.snd_wl2 = ack;
        }
    }

    fn process_payload(&mut self, now: Instant, seq: TcpSeqNumber, payload: &[u8]) {
        let offset = seq - self.rcv_nxt;
        if offset < 0 {
            // Left-trim retransmitted prefix.
            let skip = (-offset) as usize;
            if skip >= payload.len() {
                self.ack_pending = true;
                return;
            }
            self.accept_in_order(now, &payload[skip..]);
        } else if offset == 0 {
            self.accept_in_order(now, payload);
        } else {
            // Out of order: buffer and demand the gap with an instant ACK.
            self.ooo.insert(offset as usize, payload);
            self.ack_pending = true;
        }
    }

    fn accept_in_order(&mut self, _now: Instant, data: &[u8]) {
        // Right-trim to the receive window.
        let room = self.rcv_wnd();
        let take = data.len().min(room);
        if take == 0 {
            self.ack_pending = true;
            return;
        }
        self.rx_buffer.extend(&data[..take]);
        self.rcv_nxt = self.rcv_nxt + take;
        self.stats.bytes_received += take as u64;
        // Pull any newly contiguous out-of-order data.
        self.ooo.advance(take);
        let extra = self.ooo.take_contiguous();
        if !extra.is_empty() {
            let room = self
                .config
                .rx_capacity
                .saturating_sub(self.rx_buffer.len());
            let keep = extra.len().min(room);
            self.rx_buffer.extend(&extra[..keep]);
            self.rcv_nxt = self.rcv_nxt + keep;
            self.stats.bytes_received += keep as u64;
            // Anything we couldn't keep is dropped; sender retransmits.
        }
        // ACK policy: immediate every second segment, else delayed.
        self.segs_since_ack += 1;
        if self.segs_since_ack >= 2 || self.config.delayed_ack.is_none() || self.rx_fin {
            self.ack_pending = true;
        } else if self.delayed_ack_at.is_none() {
            self.delayed_ack_at =
                Some(_now + self.config.delayed_ack.unwrap_or(Duration::ZERO));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A_ADDR: Ipv4Address = Ipv4Address::new(10, 0, 0, 1);
    const B_ADDR: Ipv4Address = Ipv4Address::new(10, 0, 0, 2);

    fn pair() -> (Socket, Socket) {
        let mut client_cfg = SocketConfig {
            initial_seq: 100,
            mss: 1000,
            ..SocketConfig::default()
        };
        client_cfg.delayed_ack = None;
        let mut server_cfg = SocketConfig {
            initial_seq: 900_000,
            mss: 1000,
            ..SocketConfig::default()
        };
        server_cfg.delayed_ack = None;
        let mut client = Socket::new(client_cfg);
        let mut server = Socket::new(server_cfg);
        server.listen(Endpoint::new(B_ADDR, 80)).unwrap();
        client
            .connect(
                Endpoint::new(A_ADDR, 49152),
                Endpoint::new(B_ADDR, 80),
                Instant::ZERO,
            )
            .unwrap();
        (client, server)
    }

    /// Shuttle segments between the two sockets until both go quiet.
    /// `drop_nth` drops the i-th segment observed (0-based) if given.
    fn exchange(a: &mut Socket, b: &mut Socket, now: Instant, drop: &mut dyn FnMut(u64) -> bool) {
        let mut counter = 0u64;
        for _ in 0..200 {
            let mut progressed = false;
            while let Some((repr, payload)) = a.dispatch(now) {
                progressed = true;
                let n = counter;
                counter += 1;
                if !drop(n) {
                    b.process(now, B_ADDR, A_ADDR, &repr, &payload);
                }
            }
            while let Some((repr, payload)) = b.dispatch(now) {
                progressed = true;
                let n = counter;
                counter += 1;
                if !drop(n) {
                    a.process(now, A_ADDR, B_ADDR, &repr, &payload);
                }
            }
            if !progressed {
                break;
            }
        }
    }

    fn no_drop(a: &mut Socket, b: &mut Socket, now: Instant) {
        exchange(a, b, now, &mut |_| false);
    }

    #[test]
    fn three_way_handshake() {
        let (mut client, mut server) = pair();
        assert_eq!(client.state(), State::SynSent);
        assert_eq!(server.state(), State::Listen);
        no_drop(&mut client, &mut server, Instant::ZERO);
        assert_eq!(client.state(), State::Established);
        assert_eq!(server.state(), State::Established);
        assert_eq!(server.remote(), Endpoint::new(A_ADDR, 49152));
        // MSS negotiated to the minimum of the two.
        assert_eq!(client.effective_mss(), 1000);
        assert_eq!(server.effective_mss(), 1000);
    }

    #[test]
    fn data_transfer_client_to_server() {
        let (mut client, mut server) = pair();
        no_drop(&mut client, &mut server, Instant::ZERO);
        assert_eq!(client.send_slice(b"hello, catenet").unwrap(), 14);
        no_drop(&mut client, &mut server, Instant::from_millis(1));
        let mut buf = [0u8; 64];
        let n = server.recv_slice(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello, catenet");
        assert!(client.all_acked());
    }

    #[test]
    fn bidirectional_transfer() {
        let (mut client, mut server) = pair();
        no_drop(&mut client, &mut server, Instant::ZERO);
        client.send_slice(b"ping").unwrap();
        server.send_slice(b"pong").unwrap();
        no_drop(&mut client, &mut server, Instant::from_millis(1));
        let mut buf = [0u8; 16];
        assert_eq!(server.recv_slice(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"ping");
        assert_eq!(client.recv_slice(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"pong");
    }

    #[test]
    fn large_transfer_respects_mss() {
        let (mut client, mut server) = pair();
        no_drop(&mut client, &mut server, Instant::ZERO);
        let data: Vec<u8> = (0..10_000).map(|i| (i % 256) as u8).collect();
        let mut sent = 0;
        let mut now = Instant::from_millis(1);
        let mut received = Vec::new();
        for _ in 0..200 {
            sent += client.send_slice(&data[sent..]).unwrap();
            no_drop(&mut client, &mut server, now);
            let mut buf = [0u8; 4096];
            loop {
                let n = server.recv_slice(&mut buf).unwrap();
                if n == 0 {
                    break;
                }
                received.extend_from_slice(&buf[..n]);
            }
            now += Duration::from_millis(10);
            if received.len() == data.len() {
                break;
            }
        }
        assert_eq!(received, data);
    }

    #[test]
    fn graceful_close_full_sequence() {
        let (mut client, mut server) = pair();
        no_drop(&mut client, &mut server, Instant::ZERO);
        client.send_slice(b"bye").unwrap();
        client.close();
        assert_eq!(client.state(), State::FinWait1);
        let now = Instant::from_millis(5);
        no_drop(&mut client, &mut server, now);
        // Server sees data then EOF.
        let mut buf = [0u8; 8];
        assert_eq!(server.recv_slice(&mut buf).unwrap(), 3);
        assert_eq!(server.recv_slice(&mut buf).unwrap_err(), TcpError::Finished);
        assert_eq!(server.state(), State::CloseWait);
        assert_eq!(client.state(), State::FinWait2);
        // Server closes its side.
        server.close();
        assert_eq!(server.state(), State::LastAck);
        no_drop(&mut client, &mut server, now + Duration::from_millis(5));
        assert_eq!(server.state(), State::Closed);
        assert_eq!(client.state(), State::TimeWait);
        // 2 MSL later the client is gone too.
        let after = now + Duration::from_secs(61);
        assert!(client.dispatch(after).is_none());
        assert_eq!(client.state(), State::Closed);
    }

    #[test]
    fn simultaneous_close_reaches_closed() {
        let (mut client, mut server) = pair();
        no_drop(&mut client, &mut server, Instant::ZERO);
        client.close();
        server.close();
        assert_eq!(client.state(), State::FinWait1);
        assert_eq!(server.state(), State::FinWait1);
        no_drop(&mut client, &mut server, Instant::from_millis(1));
        // Both end in TimeWait (or Closed after expiry) — never stuck.
        for s in [client.state(), server.state()] {
            assert!(
                matches!(s, State::TimeWait | State::Closed),
                "stuck in {s:?}"
            );
        }
    }

    #[test]
    fn lost_data_segment_is_retransmitted() {
        let (mut client, mut server) = pair();
        no_drop(&mut client, &mut server, Instant::ZERO);
        client.send_slice(b"important").unwrap();
        // Drop the first data segment.
        let mut dropped = false;
        exchange(
            &mut client,
            &mut server,
            Instant::from_millis(1),
            &mut |_| {
                if !dropped {
                    dropped = true;
                    true
                } else {
                    false
                }
            },
        );
        let mut buf = [0u8; 16];
        assert_eq!(server.recv_slice(&mut buf).unwrap(), 0, "segment was dropped");
        // Advance past the RTO; the timer fires and retransmission occurs.
        let later = Instant::from_millis(1) + RttEstimator::INITIAL_RTO + Duration::from_millis(700);
        no_drop(&mut client, &mut server, later);
        let n = server.recv_slice(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"important");
        assert!(client.stats.retransmits >= 1);
        assert!(client.stats.timeouts >= 1);
    }

    #[test]
    fn lost_syn_is_retransmitted() {
        let (mut client, mut server) = pair();
        // Drop the very first SYN.
        let mut first = true;
        exchange(&mut client, &mut server, Instant::ZERO, &mut |_| {
            let d = first;
            first = false;
            d
        });
        assert_eq!(client.state(), State::SynSent);
        no_drop(&mut client, &mut server, Instant::from_secs(2));
        assert_eq!(client.state(), State::Established);
        assert_eq!(server.state(), State::Established);
    }

    /// A pair with congestion control and Nagle disabled, so dispatch
    /// produces as many segments as the receive window allows.
    fn unthrottled_pair() -> (Socket, Socket) {
        let mut client = Socket::new(SocketConfig {
            initial_seq: 100,
            mss: 1000,
            nagle: false,
            congestion: CongestionAlgo::None,
            delayed_ack: None,
            ..SocketConfig::default()
        });
        let mut server = Socket::new(SocketConfig {
            initial_seq: 900_000,
            mss: 1000,
            delayed_ack: None,
            ..SocketConfig::default()
        });
        server.listen(Endpoint::new(B_ADDR, 80)).unwrap();
        client
            .connect(
                Endpoint::new(A_ADDR, 49152),
                Endpoint::new(B_ADDR, 80),
                Instant::ZERO,
            )
            .unwrap();
        (client, server)
    }

    #[test]
    fn out_of_order_segments_reassembled() {
        let (mut client, mut server) = unthrottled_pair();
        no_drop(&mut client, &mut server, Instant::ZERO);
        // Generate three segments by sending 2.5 MSS of data, but deliver
        // them to the server out of order by capturing first.
        let data: Vec<u8> = (0..2500).map(|i| (i % 256) as u8).collect();
        client.send_slice(&data).unwrap();
        let now = Instant::from_millis(1);
        let mut segs = Vec::new();
        while let Some(seg) = client.dispatch(now) {
            segs.push(seg);
        }
        assert!(segs.len() >= 3);
        segs.reverse();
        for (repr, payload) in &segs {
            server.process(now, B_ADDR, A_ADDR, repr, payload);
        }
        let mut buf = vec![0u8; 4096];
        let n = server.recv_slice(&mut buf).unwrap();
        assert_eq!(&buf[..n], &data[..n]);
        assert_eq!(n, 2500);
    }

    #[test]
    fn fast_retransmit_on_triple_dup_ack() {
        let (mut client, mut server) = pair();
        no_drop(&mut client, &mut server, Instant::ZERO);
        // Open the congestion window a bit first.
        let warm: Vec<u8> = vec![0xAA; 30_000];
        client.send_slice(&warm).unwrap();
        let mut now = Instant::from_millis(1);
        for _ in 0..10 {
            no_drop(&mut client, &mut server, now);
            now += Duration::from_millis(20);
        }
        let mut sink = vec![0u8; 16_384];
        while server.recv_slice(&mut sink).unwrap() > 0 {}

        // Send 7 segments; drop the first, deliver the rest → dup ACKs.
        // (The first returning ACK merely resynchronizes the advertised
        // window after the drain above; the following ones are genuine
        // duplicates.)
        let data: Vec<u8> = (0..7000).map(|i| (i % 256) as u8).collect();
        client.send_slice(&data).unwrap();
        let mut segs = Vec::new();
        while let Some(seg) = client.dispatch(now) {
            segs.push(seg);
        }
        assert!(segs.len() >= 6, "window too small: {} segs", segs.len());
        // Deliver each out-of-order segment and let the server's
        // immediate duplicate ACK flow back before the next arrives
        // (as it would on a real path).
        for (repr, payload) in segs.iter().skip(1) {
            server.process(now, B_ADDR, A_ADDR, repr, payload);
            while let Some((ack, ack_payload)) = server.dispatch(now) {
                client.process(now, A_ADDR, B_ADDR, &ack, &ack_payload);
            }
        }
        assert!(client.stats.dup_acks >= 3, "dup acks: {}", client.stats.dup_acks);
        // Client should have rewound and be ready to retransmit the hole
        // *without* waiting for the RTO.
        let before_timeout = now + Duration::from_millis(1);
        no_drop(&mut client, &mut server, before_timeout);
        let mut buf = vec![0u8; 16_384];
        let n = server.recv_slice(&mut buf).unwrap();
        assert_eq!(n, 7000);
        assert_eq!(&buf[..n], &data[..]);
        assert_eq!(client.stats.timeouts, 0, "fast retransmit, not RTO");
        assert!(client.congestion().fast_retransmits >= 1);
    }

    #[test]
    fn zero_window_blocks_then_probe_resumes() {
        // A server with a tiny receive buffer whose application reads
        // nothing: the window slams shut, and only probing reopens it.
        let mut client = Socket::new(SocketConfig {
            initial_seq: 100,
            mss: 1000,
            nagle: false,
            congestion: CongestionAlgo::None,
            delayed_ack: None,
            ..SocketConfig::default()
        });
        let mut server = Socket::new(SocketConfig {
            initial_seq: 200,
            mss: 1000,
            rx_capacity: 2_000,
            delayed_ack: None,
            ..SocketConfig::default()
        });
        server.listen(Endpoint::new(B_ADDR, 80)).unwrap();
        client
            .connect(Endpoint::new(A_ADDR, 49152), Endpoint::new(B_ADDR, 80), Instant::ZERO)
            .unwrap();
        no_drop(&mut client, &mut server, Instant::ZERO);

        let data = vec![0x55u8; 10_000];
        assert_eq!(client.send_slice(&data).unwrap(), 10_000);
        let mut now = Instant::from_millis(1);
        for _ in 0..10 {
            no_drop(&mut client, &mut server, now);
            now += Duration::from_millis(50);
        }
        // Server's 2 kB buffer is full; client saw window 0 and stopped.
        assert_eq!(server.recv_queue_len(), 2_000);
        assert!(client.send_queue_len() > 0, "client holds unsendable data");

        // Drain the server repeatedly; probe-elicited ACKs reopen the
        // window and the rest flows.
        let mut sink = vec![0u8; 4_096];
        let mut drained = 0;
        for _ in 0..200 {
            loop {
                let n = server.recv_slice(&mut sink).unwrap();
                if n == 0 {
                    break;
                }
                drained += n;
            }
            no_drop(&mut client, &mut server, now);
            now += Duration::from_millis(300);
            if drained == 10_000 {
                break;
            }
        }
        assert_eq!(drained, 10_000, "all data eventually delivered");
        assert_eq!(client.send_queue_len(), 0);
        assert!(client.stats.probes_sent >= 1, "probes: {}", client.stats.probes_sent);
    }

    #[test]
    fn nagle_coalesces_small_writes() {
        let (mut client, mut server) = pair();
        no_drop(&mut client, &mut server, Instant::ZERO);
        let now = Instant::from_millis(1);
        // First small write goes out immediately (nothing in flight).
        client.send_slice(b"a").unwrap();
        let (first, _) = client.dispatch(now).expect("first tinygram sent");
        assert_eq!(first.payload_len, 1);
        // Subsequent small writes are held while the first is unacked.
        client.send_slice(b"b").unwrap();
        client.send_slice(b"c").unwrap();
        assert!(client.dispatch(now).is_none(), "Nagle holds tinygrams");
        // ACK arrives → the held bytes go out as one segment.
        server.process(now, B_ADDR, A_ADDR, &first, b"a");
        while let Some((repr, payload)) = server.dispatch(now) {
            client.process(now, A_ADDR, B_ADDR, &repr, &payload);
        }
        let (second, payload) = client.dispatch(now).expect("coalesced segment");
        assert_eq!(second.payload_len, 2);
        assert_eq!(payload, b"bc");
    }

    #[test]
    fn nagle_off_sends_immediately() {
        let mut cfg = SocketConfig {
            nagle: false,
            initial_seq: 5,
            ..SocketConfig::default()
        };
        cfg.delayed_ack = None;
        let mut client = Socket::new(cfg);
        let mut server = Socket::new(SocketConfig {
            initial_seq: 7,
            delayed_ack: None,
            ..SocketConfig::default()
        });
        server.listen(Endpoint::new(B_ADDR, 80)).unwrap();
        client
            .connect(Endpoint::new(A_ADDR, 1000), Endpoint::new(B_ADDR, 80), Instant::ZERO)
            .unwrap();
        no_drop(&mut client, &mut server, Instant::ZERO);
        let now = Instant::from_millis(1);
        client.send_slice(b"a").unwrap();
        assert!(client.dispatch(now).is_some());
        client.send_slice(b"b").unwrap();
        assert!(client.dispatch(now).is_some(), "no Nagle: b goes immediately");
    }

    #[test]
    fn abort_sends_rst_and_peer_sees_reset() {
        let (mut client, mut server) = pair();
        no_drop(&mut client, &mut server, Instant::ZERO);
        client.abort();
        assert_eq!(client.state(), State::Closed);
        let (repr, payload) = client.dispatch(Instant::from_millis(1)).expect("RST");
        assert_eq!(repr.control, TcpControl::Rst);
        server.process(Instant::from_millis(1), B_ADDR, A_ADDR, &repr, &payload);
        assert_eq!(server.state(), State::Closed);
        let mut buf = [0u8; 4];
        assert_eq!(
            server.recv_slice(&mut buf).unwrap_err(),
            TcpError::ConnectionReset
        );
    }

    #[test]
    fn send_after_close_rejected() {
        let (mut client, mut server) = pair();
        no_drop(&mut client, &mut server, Instant::ZERO);
        client.close();
        assert_eq!(client.send_slice(b"x").unwrap_err(), TcpError::InvalidState);
    }

    #[test]
    fn connect_from_non_closed_rejected() {
        let (mut client, _server) = pair();
        assert_eq!(
            client
                .connect(Endpoint::new(A_ADDR, 1), Endpoint::new(B_ADDR, 2), Instant::ZERO)
                .unwrap_err(),
            TcpError::InvalidState
        );
    }

    #[test]
    fn rtt_estimator_seeds_from_handshake_or_data() {
        let (mut client, mut server) = pair();
        no_drop(&mut client, &mut server, Instant::ZERO);
        client.send_slice(b"time me").unwrap();
        no_drop(&mut client, &mut server, Instant::from_millis(40));
        assert!(client.rtt().samples >= 1);
    }

    #[test]
    fn duplicate_segment_reacked_not_redelivered() {
        let (mut client, mut server) = pair();
        no_drop(&mut client, &mut server, Instant::ZERO);
        client.send_slice(b"once").unwrap();
        let now = Instant::from_millis(1);
        let (repr, payload) = client.dispatch(now).unwrap();
        server.process(now, B_ADDR, A_ADDR, &repr, &payload);
        server.process(now, B_ADDR, A_ADDR, &repr, &payload); // duplicate
        let mut buf = [0u8; 16];
        assert_eq!(server.recv_slice(&mut buf).unwrap(), 4);
        assert_eq!(server.recv_slice(&mut buf).unwrap(), 0, "no double delivery");
    }

    #[test]
    fn listen_then_close_returns_to_closed() {
        let mut socket = Socket::new(SocketConfig::default());
        socket.listen(Endpoint::new(B_ADDR, 9)).unwrap();
        socket.close();
        assert_eq!(socket.state(), State::Closed);
    }

    #[test]
    fn accepts_matches_endpoints() {
        let (client, server) = pair();
        let syn = TcpRepr {
            src_port: 49152,
            dst_port: 80,
            control: TcpControl::Syn,
            seq_number: TcpSeqNumber(1),
            ack_number: None,
            window_len: 1000,
            max_seg_size: None,
            payload_crc: None,
            payload_len: 0,
        };
        assert!(server.accepts(B_ADDR, A_ADDR, &syn));
        let wrong_port = TcpRepr { dst_port: 81, ..syn };
        assert!(!server.accepts(B_ADDR, A_ADDR, &wrong_port));
        // Client in SynSent accepts only its own 4-tuple.
        let resp = TcpRepr {
            src_port: 80,
            dst_port: 49152,
            ..syn
        };
        assert!(client.accepts(A_ADDR, B_ADDR, &resp));
        assert!(!client.accepts(A_ADDR, Ipv4Address::new(9, 9, 9, 9), &resp));
    }

    #[test]
    fn simultaneous_open_converges() {
        let mut a = Socket::new(SocketConfig {
            initial_seq: 11,
            delayed_ack: None,
            ..SocketConfig::default()
        });
        let mut b = Socket::new(SocketConfig {
            initial_seq: 22,
            delayed_ack: None,
            ..SocketConfig::default()
        });
        a.connect(Endpoint::new(A_ADDR, 5000), Endpoint::new(B_ADDR, 6000), Instant::ZERO)
            .unwrap();
        b.connect(Endpoint::new(B_ADDR, 6000), Endpoint::new(A_ADDR, 5000), Instant::ZERO)
            .unwrap();
        // Exchange the crossing SYNs by hand.
        let (syn_a, _) = a.dispatch(Instant::ZERO).unwrap();
        let (syn_b, _) = b.dispatch(Instant::ZERO).unwrap();
        a.process(Instant::ZERO, A_ADDR, B_ADDR, &syn_b, &[]);
        b.process(Instant::ZERO, B_ADDR, A_ADDR, &syn_a, &[]);
        assert_eq!(a.state(), State::SynReceived);
        assert_eq!(b.state(), State::SynReceived);
        no_drop(&mut a, &mut b, Instant::from_millis(1));
        assert_eq!(a.state(), State::Established);
        assert_eq!(b.state(), State::Established);
    }

    #[test]
    fn poll_at_reports_retransmit_deadline() {
        let (mut client, mut server) = pair();
        no_drop(&mut client, &mut server, Instant::ZERO);
        client.send_slice(b"x").unwrap();
        let now = Instant::from_millis(10);
        let _ = client.dispatch(now).unwrap();
        // Something is in flight: poll_at must report a deadline.
        let at = client.poll_at().expect("retransmit timer armed");
        assert!(at > now);
        assert!(at <= now + RttEstimator::MAX_RTO);
    }

    #[test]
    fn connection_gives_up_after_r2_consecutive_timeouts() {
        let mut client = Socket::new(SocketConfig {
            initial_seq: 5,
            delayed_ack: None,
            max_retries: Some(3),
            ..SocketConfig::default()
        });
        let mut server = Socket::new(SocketConfig {
            initial_seq: 6,
            delayed_ack: None,
            ..SocketConfig::default()
        });
        server.listen(Endpoint::new(B_ADDR, 80)).unwrap();
        client
            .connect(Endpoint::new(A_ADDR, 9000), Endpoint::new(B_ADDR, 80), Instant::ZERO)
            .unwrap();
        no_drop(&mut client, &mut server, Instant::ZERO);
        client.send_slice(b"into the void").unwrap();
        // The path is cut: dispatch into nothing, advancing past each RTO.
        let mut now = Instant::from_millis(1);
        for _ in 0..64 {
            while client.dispatch(now).is_some() {}
            now += Duration::from_secs(70); // beyond even the max RTO
            if client.state() == State::Closed {
                break;
            }
        }
        assert_eq!(client.state(), State::Closed, "gave up");
        assert_eq!(
            client.send_slice(b"more").unwrap_err(),
            TcpError::TimedOut
        );
        let mut buf = [0u8; 4];
        assert_eq!(client.recv_slice(&mut buf).unwrap_err(), TcpError::TimedOut);
        assert!(client.stats.timeouts >= 4);
    }

    #[test]
    fn progress_resets_the_give_up_counter() {
        // Two timeouts, then an ACK, then two more timeouts: with
        // max_retries = 3 the connection must still be alive.
        let mut client = Socket::new(SocketConfig {
            initial_seq: 5,
            delayed_ack: None,
            max_retries: Some(3),
            nagle: false,
            ..SocketConfig::default()
        });
        let mut server = Socket::new(SocketConfig {
            initial_seq: 6,
            delayed_ack: None,
            ..SocketConfig::default()
        });
        server.listen(Endpoint::new(B_ADDR, 80)).unwrap();
        client
            .connect(Endpoint::new(A_ADDR, 9001), Endpoint::new(B_ADDR, 80), Instant::ZERO)
            .unwrap();
        no_drop(&mut client, &mut server, Instant::ZERO);
        let mut now = Instant::from_millis(1);
        client.send_slice(b"first").unwrap();
        // Two lost transmissions (timeouts 1 and 2).
        for _ in 0..2 {
            while client.dispatch(now).is_some() {}
            now += Duration::from_secs(70);
        }
        // Third attempt is delivered: progress.
        no_drop(&mut client, &mut server, now);
        assert!(client.all_acked());
        // Two more losses on new data: counter restarted, still alive.
        client.send_slice(b"second").unwrap();
        for _ in 0..2 {
            while client.dispatch(now).is_some() {}
            now += Duration::from_secs(70);
        }
        assert_ne!(client.state(), State::Closed, "counter was reset by progress");
        no_drop(&mut client, &mut server, now);
        assert!(client.all_acked());
    }

    #[test]
    fn repacketization_on_retransmit_combines_small_segments() {
        // The paper's byte-sequencing argument: after loss, the sender may
        // combine previously separate small packets into one.
        let mut cfg = SocketConfig {
            nagle: false, // allow tinygrams out
            initial_seq: 3,
            delayed_ack: None,
            mss: 1000,
            ..SocketConfig::default()
        };
        cfg.congestion = CongestionAlgo::None;
        let mut client = Socket::new(cfg);
        let mut server = Socket::new(SocketConfig {
            initial_seq: 9,
            delayed_ack: None,
            ..SocketConfig::default()
        });
        server.listen(Endpoint::new(B_ADDR, 80)).unwrap();
        client
            .connect(Endpoint::new(A_ADDR, 1234), Endpoint::new(B_ADDR, 80), Instant::ZERO)
            .unwrap();
        no_drop(&mut client, &mut server, Instant::ZERO);
        let now = Instant::from_millis(1);
        // Three tiny segments, all lost.
        for chunk in [&b"aa"[..], b"bb", b"cc"] {
            client.send_slice(chunk).unwrap();
            let seg = client.dispatch(now);
            assert!(seg.is_some()); // emitted and dropped on the floor
        }
        // RTO fires: the retransmission is ONE segment carrying all 6 bytes.
        let later = now + Duration::from_secs(2);
        let (repr, payload) = client.dispatch(later).expect("retransmission");
        assert_eq!(payload, b"aabbcc", "repacketized into one segment");
        assert_eq!(repr.payload_len, 6);
    }
}
