//! # catenet-tcp
//!
//! The Transmission Control Protocol — the "reliable stream" type of
//! service whose separation *out* of the internet layer is the central
//! story of Clark's 1988 paper (§4, "types of service"). The internet
//! layer guarantees nothing; everything an application perceives as
//! reliability is manufactured here, at the endpoints, out of
//! retransmission, sequencing and checksums. That placement is
//! fate-sharing: all state describing a conversation lives in the two
//! communicating hosts, so no gateway failure can destroy it.
//!
//! The implementation is 1988-faithful:
//!
//! - RFC 793 state machine (including simultaneous open and the full
//!   close sequence with TIME-WAIT),
//! - **byte-based** sequence numbers with repacketization on retransmit
//!   (the paper's argued-for design; the packet-sequenced baseline lives
//!   in `catenet-core::baseline` for comparison),
//! - Jacobson/Karels RTT estimation with Karn's rule and exponential
//!   backoff (the 1988 refresh of RFC 793's estimator),
//! - Van Jacobson congestion control (Tahoe: slow start, congestion
//!   avoidance, loss → cwnd collapse), with Reno fast-retransmit/fast-
//!   recovery available as the "one year later" comparison point,
//! - Nagle's algorithm, delayed ACKs, zero-window probing.
//!
//! The socket is sans-IO in the smoltcp idiom: [`Socket::process`]
//! accepts parsed segments, [`Socket::dispatch`] produces segments to
//! send, and [`Socket::poll_at`] reports when the next timer fires. The
//! stack in `catenet-core` owns encapsulation and delivery.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod assembler;
pub mod congestion;
pub mod rtt;
pub mod socket;

pub use assembler::OutOfOrderBuffer;
pub use congestion::{CongestionAlgo, CongestionControl};
pub use rtt::RttEstimator;
pub use socket::{Endpoint, Socket, SocketConfig, SocketStats, State, TcpError};
