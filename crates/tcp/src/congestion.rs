//! Congestion control: Van Jacobson's 1988 algorithms.
//!
//! Clark's paper (§7) concedes that "the goal of cost effectiveness"
//! suffers when lost packets are retransmitted end to end; what it could
//! not yet cite — the two papers are from the same SIGCOMM — is Jacobson's
//! demonstration that *unregulated* end-to-end retransmission collapses
//! the network entirely. Tahoe (slow start + congestion avoidance +
//! collapse-on-loss) is therefore the default here, with Reno's fast
//! retransmit / fast recovery available for comparison, and `None`
//! (pre-1988 TCP) available as the ablation baseline.

/// Which congestion-control algorithm a socket runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CongestionAlgo {
    /// Pre-1988 TCP: the window is whatever the receiver advertises.
    None,
    /// Slow start + congestion avoidance; any loss collapses cwnd to 1 MSS.
    #[default]
    Tahoe,
    /// Tahoe plus fast retransmit and fast recovery (halve on dup-ACKs).
    Reno,
}

/// The congestion-control state machine.
#[derive(Debug, Clone)]
pub struct CongestionControl {
    algo: CongestionAlgo,
    mss: usize,
    /// Congestion window, in bytes.
    cwnd: usize,
    /// Slow-start threshold, in bytes.
    ssthresh: usize,
    /// Bytes acked since the last cwnd increment (congestion avoidance).
    acked_since_bump: usize,
    /// Whether we are inside Reno fast recovery.
    in_fast_recovery: bool,
    /// Counters for the experiment harness.
    pub loss_events: u64,
    /// Number of times fast retransmit fired.
    pub fast_retransmits: u64,
}

/// What the socket should do after a duplicate-ACK notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DupAckAction {
    /// Nothing yet.
    None,
    /// Retransmit the oldest unacked segment now (fast retransmit).
    FastRetransmit,
}

impl CongestionControl {
    /// Initial window: 1 MSS (the 1988 rule; RFC 5681's larger IW came later).
    pub fn new(algo: CongestionAlgo, mss: usize) -> CongestionControl {
        assert!(mss > 0);
        CongestionControl {
            algo,
            mss,
            cwnd: mss,
            ssthresh: 65_535,
            acked_since_bump: 0,
            in_fast_recovery: false,
            loss_events: 0,
            fast_retransmits: 0,
        }
    }

    /// The algorithm in use.
    pub fn algo(&self) -> CongestionAlgo {
        self.algo
    }

    /// The current congestion window in bytes. With `None` this is
    /// unbounded (the receiver window alone limits the sender).
    pub fn window(&self) -> usize {
        match self.algo {
            CongestionAlgo::None => usize::MAX,
            _ => self.cwnd,
        }
    }

    /// The slow-start threshold (for tests and traces).
    pub fn ssthresh(&self) -> usize {
        self.ssthresh
    }

    /// Whether the sender is in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Whether Reno fast recovery is active.
    pub fn in_fast_recovery(&self) -> bool {
        self.in_fast_recovery
    }

    /// New data was cumulatively acknowledged.
    pub fn on_ack(&mut self, acked_bytes: usize) {
        if self.algo == CongestionAlgo::None || acked_bytes == 0 {
            return;
        }
        if self.in_fast_recovery {
            // Reno: leaving fast recovery on the ACK of new data.
            self.cwnd = self.ssthresh;
            self.in_fast_recovery = false;
            self.acked_since_bump = 0;
            return;
        }
        if self.in_slow_start() {
            // Exponential: one MSS per acked segment.
            self.cwnd = self.cwnd.saturating_add(acked_bytes.min(self.mss));
        } else {
            // Additive: one MSS per window's worth of ACKs.
            self.acked_since_bump += acked_bytes;
            if self.acked_since_bump >= self.cwnd {
                self.acked_since_bump -= self.cwnd;
                self.cwnd = self.cwnd.saturating_add(self.mss);
            }
        }
    }

    /// A retransmission timeout fired: multiplicative decrease to 1 MSS,
    /// remembering half the flight size as the new threshold.
    pub fn on_timeout(&mut self, flight_size: usize) {
        if self.algo == CongestionAlgo::None {
            return;
        }
        self.ssthresh = (flight_size / 2).max(2 * self.mss);
        self.cwnd = self.mss;
        self.acked_since_bump = 0;
        self.in_fast_recovery = false;
        self.loss_events += 1;
    }

    /// An ICMP source quench arrived — the 1988-era congestion signal
    /// (RFC 792 / RFC 1122 §4.2.3.9): enter slow start without touching
    /// ssthresh, as 4.3BSD did.
    pub fn on_quench(&mut self) {
        if self.algo == CongestionAlgo::None {
            return;
        }
        self.cwnd = self.mss;
        self.acked_since_bump = 0;
        self.in_fast_recovery = false;
    }

    /// A duplicate ACK arrived; `count` is the consecutive total.
    pub fn on_dup_ack(&mut self, count: u32, flight_size: usize) -> DupAckAction {
        match self.algo {
            CongestionAlgo::None => DupAckAction::None,
            CongestionAlgo::Tahoe => {
                if count == 3 {
                    // Fast retransmit, but no fast recovery: collapse.
                    self.ssthresh = (flight_size / 2).max(2 * self.mss);
                    self.cwnd = self.mss;
                    self.acked_since_bump = 0;
                    self.loss_events += 1;
                    self.fast_retransmits += 1;
                    DupAckAction::FastRetransmit
                } else {
                    DupAckAction::None
                }
            }
            CongestionAlgo::Reno => {
                if count == 3 && !self.in_fast_recovery {
                    self.ssthresh = (flight_size / 2).max(2 * self.mss);
                    self.cwnd = self.ssthresh + 3 * self.mss;
                    self.in_fast_recovery = true;
                    self.loss_events += 1;
                    self.fast_retransmits += 1;
                    DupAckAction::FastRetransmit
                } else if count > 3 && self.in_fast_recovery {
                    // Window inflation per extra dup ACK.
                    self.cwnd = self.cwnd.saturating_add(self.mss);
                    DupAckAction::None
                } else {
                    DupAckAction::None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: usize = 1000;

    #[test]
    fn none_algo_never_limits() {
        let mut cc = CongestionControl::new(CongestionAlgo::None, MSS);
        assert_eq!(cc.window(), usize::MAX);
        cc.on_timeout(10 * MSS);
        assert_eq!(cc.window(), usize::MAX);
        assert_eq!(cc.on_dup_ack(3, 10 * MSS), DupAckAction::None);
        assert_eq!(cc.loss_events, 0);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut cc = CongestionControl::new(CongestionAlgo::Tahoe, MSS);
        assert_eq!(cc.window(), MSS);
        assert!(cc.in_slow_start());
        // Simulate one RTT: every outstanding segment acked.
        let mut per_rtt = Vec::new();
        for _ in 0..5 {
            let w = cc.window();
            per_rtt.push(w);
            for _ in 0..w / MSS {
                cc.on_ack(MSS);
            }
        }
        assert_eq!(per_rtt, vec![MSS, 2 * MSS, 4 * MSS, 8 * MSS, 16 * MSS]);
    }

    #[test]
    fn congestion_avoidance_is_linear() {
        let mut cc = CongestionControl::new(CongestionAlgo::Tahoe, MSS);
        cc.on_timeout(20 * MSS); // ssthresh = 10 MSS, cwnd = 1
        assert_eq!(cc.ssthresh(), 10 * MSS);
        // Grow back through slow start to the threshold.
        while cc.in_slow_start() {
            cc.on_ack(MSS);
        }
        let at_threshold = cc.window();
        assert!(at_threshold >= 10 * MSS);
        // One full window of ACKs → exactly one MSS of growth.
        let before = cc.window();
        let mut acked = 0;
        while acked < before {
            cc.on_ack(MSS);
            acked += MSS;
        }
        assert_eq!(cc.window(), before + MSS);
    }

    #[test]
    fn timeout_collapses_to_one_mss() {
        let mut cc = CongestionControl::new(CongestionAlgo::Tahoe, MSS);
        for _ in 0..20 {
            cc.on_ack(MSS);
        }
        let flight = cc.window();
        cc.on_timeout(flight);
        assert_eq!(cc.window(), MSS);
        assert_eq!(cc.ssthresh(), flight / 2);
        assert_eq!(cc.loss_events, 1);
    }

    #[test]
    fn ssthresh_floor_is_two_mss() {
        let mut cc = CongestionControl::new(CongestionAlgo::Tahoe, MSS);
        cc.on_timeout(MSS); // tiny flight
        assert_eq!(cc.ssthresh(), 2 * MSS);
    }

    #[test]
    fn tahoe_fast_retransmit_collapses() {
        let mut cc = CongestionControl::new(CongestionAlgo::Tahoe, MSS);
        for _ in 0..10 {
            cc.on_ack(MSS);
        }
        assert_eq!(cc.on_dup_ack(1, 8 * MSS), DupAckAction::None);
        assert_eq!(cc.on_dup_ack(2, 8 * MSS), DupAckAction::None);
        assert_eq!(cc.on_dup_ack(3, 8 * MSS), DupAckAction::FastRetransmit);
        assert_eq!(cc.window(), MSS); // Tahoe collapses
        assert!(!cc.in_fast_recovery());
        assert_eq!(cc.fast_retransmits, 1);
    }

    #[test]
    fn reno_fast_recovery_halves_and_inflates() {
        let mut cc = CongestionControl::new(CongestionAlgo::Reno, MSS);
        for _ in 0..16 {
            cc.on_ack(MSS);
        }
        let flight = 16 * MSS;
        assert_eq!(cc.on_dup_ack(3, flight), DupAckAction::FastRetransmit);
        assert!(cc.in_fast_recovery());
        assert_eq!(cc.ssthresh(), 8 * MSS);
        assert_eq!(cc.window(), 8 * MSS + 3 * MSS);
        // Additional dup ACKs inflate.
        cc.on_dup_ack(4, flight);
        assert_eq!(cc.window(), 12 * MSS);
        // New data acked: deflate to ssthresh and exit.
        cc.on_ack(MSS);
        assert!(!cc.in_fast_recovery());
        assert_eq!(cc.window(), 8 * MSS);
    }

    #[test]
    fn reno_does_not_reenter_recovery_on_more_dups() {
        let mut cc = CongestionControl::new(CongestionAlgo::Reno, MSS);
        for _ in 0..16 {
            cc.on_ack(MSS);
        }
        cc.on_dup_ack(3, 16 * MSS);
        let events = cc.loss_events;
        assert_eq!(cc.on_dup_ack(3, 16 * MSS), DupAckAction::None);
        assert_eq!(cc.loss_events, events);
    }

    #[test]
    fn slow_start_exits_at_threshold() {
        let mut cc = CongestionControl::new(CongestionAlgo::Tahoe, MSS);
        cc.on_timeout(8 * MSS); // ssthresh 4 MSS
        while cc.in_slow_start() {
            cc.on_ack(MSS);
        }
        assert!(cc.window() >= 4 * MSS);
        assert!(cc.window() <= 5 * MSS);
    }
}
