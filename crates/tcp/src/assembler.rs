//! Out-of-order segment buffering for the receive side.
//!
//! The internet layer may reorder datagrams freely (another "minimal
//! assumptions" consequence), so TCP receivers hold early segments until
//! the gap before them fills. This buffer stores byte ranges keyed by
//! their offset from the current `rcv_nxt` and releases the contiguous
//! prefix as it forms.

use std::collections::BTreeMap;

/// A bounded buffer of out-of-order byte ranges.
#[derive(Debug, Clone)]
pub struct OutOfOrderBuffer {
    /// Segments keyed by offset from the current in-order point.
    segments: BTreeMap<usize, Vec<u8>>,
    /// Total bytes buffered (bounded by the receive window, enforced by
    /// the caller; this cap is a hard backstop).
    buffered: usize,
    capacity: usize,
}

impl OutOfOrderBuffer {
    /// A buffer that will hold at most `capacity` bytes.
    pub fn new(capacity: usize) -> OutOfOrderBuffer {
        OutOfOrderBuffer {
            segments: BTreeMap::new(),
            buffered: 0,
            capacity,
        }
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.buffered
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Store `data` starting `offset` bytes past the in-order point.
    /// Overlapping or duplicate ranges are tolerated (first writer wins
    /// on overlap, matching the original-transmission-wins convention).
    /// Data beyond capacity is silently dropped — the sender will
    /// retransmit, exactly as if the network had lost it.
    pub fn insert(&mut self, offset: usize, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        // Trim against an existing segment that covers our start.
        let mut start = offset;
        let mut slice = data;
        if let Some((&seg_off, seg)) = self.segments.range(..=offset).next_back() {
            let seg_end = seg_off + seg.len();
            if seg_end >= offset + data.len() {
                return; // fully covered
            }
            if seg_end > offset {
                let skip = seg_end - offset;
                start = seg_end;
                slice = &data[skip..];
            }
        }
        // Trim against segments that start inside our range.
        let mut remaining: Vec<(usize, Vec<u8>)> = Vec::new();
        let end = start + slice.len();
        let mut cursor = start;
        let covered: Vec<(usize, usize)> = self
            .segments
            .range(start..end)
            .map(|(&o, s)| (o, o + s.len()))
            .collect();
        for (seg_start, seg_end) in covered {
            if seg_start > cursor {
                remaining.push((cursor, slice[cursor - start..seg_start - start].to_vec()));
            }
            cursor = cursor.max(seg_end);
        }
        if cursor < end {
            remaining.push((cursor, slice[cursor - start..].to_vec()));
        }
        for (piece_start, piece) in remaining {
            if self.buffered + piece.len() > self.capacity {
                break; // backstop: drop; the sender retransmits
            }
            self.buffered += piece.len();
            self.segments.insert(piece_start, piece);
        }
    }

    /// Remove and return the contiguous run starting at offset zero, if
    /// any. The caller advances `rcv_nxt` by the returned length and then
    /// calls [`OutOfOrderBuffer::advance`]... no — this method performs
    /// the advance itself: all remaining offsets are shifted down.
    pub fn take_contiguous(&mut self) -> Vec<u8> {
        let mut out = Vec::new();
        while let Some(entry) = self.segments.first_entry() {
            if *entry.key() == out.len() {
                let data = entry.remove();
                self.buffered -= data.len();
                out.extend_from_slice(&data);
            } else {
                break;
            }
        }
        if !out.is_empty() && !self.segments.is_empty() {
            let shift = out.len();
            let old = core::mem::take(&mut self.segments);
            for (offset, data) in old {
                debug_assert!(offset >= shift);
                self.segments.insert(offset - shift, data);
            }
        }
        out
    }

    /// Shift all offsets down by `n` (used when in-order data arrived
    /// directly, moving the in-order point past buffered ranges' origin).
    /// Buffered bytes that fall before the new origin are discarded.
    pub fn advance(&mut self, n: usize) {
        if n == 0 || self.segments.is_empty() {
            return;
        }
        let old = core::mem::take(&mut self.segments);
        self.buffered = 0;
        for (offset, data) in old {
            if offset >= n {
                self.buffered += data.len();
                self.segments.insert(offset - n, data);
            } else if offset + data.len() > n {
                let keep = data[n - offset..].to_vec();
                self.buffered += keep.len();
                self.segments.insert(0, keep);
            }
            // else: entirely before the new origin; drop.
        }
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.segments.clear();
        self.buffered = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_data_released_immediately() {
        let mut buf = OutOfOrderBuffer::new(1024);
        buf.insert(0, b"hello");
        assert_eq!(buf.take_contiguous(), b"hello");
        assert!(buf.is_empty());
    }

    #[test]
    fn gap_holds_data_back() {
        let mut buf = OutOfOrderBuffer::new(1024);
        buf.insert(5, b"world");
        assert_eq!(buf.take_contiguous(), b"");
        assert_eq!(buf.len(), 5);
        buf.insert(0, b"hello");
        assert_eq!(buf.take_contiguous(), b"helloworld");
        assert!(buf.is_empty());
    }

    #[test]
    fn multiple_gaps_fill_in_any_order() {
        let mut buf = OutOfOrderBuffer::new(1024);
        buf.insert(10, b"ccccc");
        buf.insert(0, b"aaaaa");
        buf.insert(5, b"bbbbb");
        assert_eq!(buf.take_contiguous(), b"aaaaabbbbbccccc");
    }

    #[test]
    fn duplicate_segment_ignored() {
        let mut buf = OutOfOrderBuffer::new(1024);
        buf.insert(3, b"xyz");
        buf.insert(3, b"xyz");
        assert_eq!(buf.len(), 3);
        buf.insert(0, b"abc");
        assert_eq!(buf.take_contiguous(), b"abcxyz");
    }

    #[test]
    fn overlap_first_writer_wins() {
        let mut buf = OutOfOrderBuffer::new(1024);
        buf.insert(2, b"BBBB"); // covers 2..6
        buf.insert(0, b"aaaaaa"); // covers 0..6, overlapping
        let out = buf.take_contiguous();
        assert_eq!(out.len(), 6);
        assert_eq!(&out[..2], b"aa");
        assert_eq!(&out[2..6], b"BBBB"); // the earlier arrival's bytes stay
    }

    #[test]
    fn partial_overlap_extends() {
        let mut buf = OutOfOrderBuffer::new(1024);
        buf.insert(0, b"abcd");
        buf.insert(2, b"cdEF"); // 2..6, overlapping 2..4
        assert_eq!(buf.take_contiguous(), b"abcdEF");
    }

    #[test]
    fn take_shifts_remaining_offsets() {
        let mut buf = OutOfOrderBuffer::new(1024);
        buf.insert(0, b"ab");
        buf.insert(4, b"ef");
        assert_eq!(buf.take_contiguous(), b"ab");
        // The 4-offset segment is now at offset 2.
        buf.insert(0, b"cd");
        assert_eq!(buf.take_contiguous(), b"cdef");
    }

    #[test]
    fn advance_discards_stale_bytes() {
        let mut buf = OutOfOrderBuffer::new(1024);
        buf.insert(2, b"abcdef"); // 2..8
        buf.advance(5); // new origin at 5: keep bytes 5..8 = "def"
        assert_eq!(buf.take_contiguous(), b"def");
    }

    #[test]
    fn advance_past_everything_empties() {
        let mut buf = OutOfOrderBuffer::new(1024);
        buf.insert(0, b"abc");
        buf.insert(10, b"xyz");
        buf.advance(20);
        assert!(buf.is_empty());
        assert_eq!(buf.len(), 0);
    }

    #[test]
    fn capacity_backstop_drops_excess() {
        let mut buf = OutOfOrderBuffer::new(8);
        buf.insert(0, b"aaaa");
        buf.insert(100, b"bbbbbbbb"); // would exceed 8 bytes total
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.take_contiguous(), b"aaaa");
    }

    #[test]
    fn empty_insert_is_noop() {
        let mut buf = OutOfOrderBuffer::new(8);
        buf.insert(3, b"");
        assert!(buf.is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut buf = OutOfOrderBuffer::new(1024);
        buf.insert(1, b"zz");
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.len(), 0);
    }
}
