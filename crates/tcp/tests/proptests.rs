//! Property tests for the TCP crate's data structures: the out-of-order
//! buffer must always reconstruct the exact byte stream, and the RTT
//! estimator must stay within its documented bounds for any sample
//! sequence. Inputs are drawn from the simulator's seeded `Rng`, so
//! every case is reproducible from its case number.

use catenet_sim::{Duration, Rng};
use catenet_tcp::{OutOfOrderBuffer, RttEstimator};

fn case_rng(name: &str, case: u64) -> Rng {
    let tag: u64 = name.bytes().fold(0xcbf2_9ce4_8422_2325, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    });
    Rng::from_seed(tag ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

#[test]
fn out_of_order_buffer_reconstructs_stream() {
    for case in 0..256 {
        let mut rng = case_rng("ooo_reconstruct", case);
        let stream: Vec<u8> = (0..rng.range(1, 512)).map(|_| rng.below(256) as u8).collect();
        let cut_count = rng.below(12) as usize;
        let cuts: Vec<usize> = (0..cut_count).map(|_| rng.range(1, 64) as usize).collect();
        let order_seed = u64::from(rng.next_u32()) << 32 | u64::from(rng.next_u32());
        let duplicate_first = rng.chance(0.5);

        // Cut the stream into segments at the given widths.
        let mut segments: Vec<(usize, Vec<u8>)> = Vec::new();
        let mut offset = 0;
        let mut cuts = cuts.into_iter();
        while offset < stream.len() {
            let width = cuts.next().unwrap_or(stream.len()).min(stream.len() - offset);
            segments.push((offset, stream[offset..offset + width].to_vec()));
            offset += width;
        }
        // Deterministic shuffle.
        let mut state = order_seed | 1;
        for i in (1..segments.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            segments.swap(i, j);
        }
        if duplicate_first && !segments.is_empty() {
            let dup = segments[0].clone();
            segments.push(dup);
        }
        let mut buffer = OutOfOrderBuffer::new(4096);
        let mut out = Vec::new();
        for (seg_offset, data) in segments {
            // Offsets are relative to the current in-order point;
            // overlaps are allowed, insert handles them.
            if seg_offset >= out.len() {
                buffer.insert(seg_offset - out.len(), &data);
            }
            out.extend_from_slice(&buffer.take_contiguous());
        }
        out.extend_from_slice(&buffer.take_contiguous());
        assert_eq!(out, stream, "case {case}");
        assert!(buffer.is_empty());
    }
}

#[test]
fn rtt_estimator_bounds_hold_for_any_samples() {
    for case in 0..256 {
        let mut rng = case_rng("rtt_bounds", case);
        let count = rng.range(1, 64) as usize;
        let mut est = RttEstimator::new();
        for _ in 0..count {
            if rng.chance(0.5) {
                est.on_retransmit();
            } else {
                est.sample(Duration::from_micros(rng.range(1, 10_000_000)));
            }
            let rto = est.rto();
            assert!(rto >= RttEstimator::MIN_RTO, "rto {rto} below floor");
            assert!(rto <= RttEstimator::MAX_RTO, "rto {rto} above ceiling");
            // After a clean sample the RTO covers the smoothed RTT.
            if let Some(srtt) = est.srtt() {
                if est.backoff() == 0 {
                    assert!(
                        rto >= srtt.min(RttEstimator::MAX_RTO).max(RttEstimator::MIN_RTO).min(rto),
                        "rto {rto} vs srtt {srtt}"
                    );
                }
            }
        }
    }
}

#[test]
fn backoff_is_monotone_nondecreasing_in_rto() {
    for case in 0..128 {
        let mut rng = case_rng("rtt_backoff", case);
        let base_ms = rng.range(1, 1000);
        let backoffs = rng.range(1, 12);
        let mut est = RttEstimator::new();
        est.sample(Duration::from_millis(base_ms));
        let mut last = est.rto();
        for _ in 0..backoffs {
            est.on_retransmit();
            let rto = est.rto();
            assert!(rto >= last, "backoff shrank the RTO");
            last = rto;
        }
    }
}
