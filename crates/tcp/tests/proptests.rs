//! Property tests for the TCP crate's data structures: the out-of-order
//! buffer must always reconstruct the exact byte stream, and the RTT
//! estimator must stay within its documented bounds for any sample
//! sequence.

use catenet_sim::Duration;
use catenet_tcp::{OutOfOrderBuffer, RttEstimator};
use proptest::prelude::*;

proptest! {
    #[test]
    fn out_of_order_buffer_reconstructs_stream(
        stream in proptest::collection::vec(any::<u8>(), 1..512),
        cuts in proptest::collection::vec(1usize..64, 0..12),
        order_seed in any::<u64>(),
        duplicate_first in any::<bool>(),
    ) {
        // Cut the stream into segments at the given widths.
        let mut segments: Vec<(usize, Vec<u8>)> = Vec::new();
        let mut offset = 0;
        let mut cuts = cuts.into_iter();
        while offset < stream.len() {
            let width = cuts.next().unwrap_or(stream.len()).min(stream.len() - offset);
            segments.push((offset, stream[offset..offset + width].to_vec()));
            offset += width;
        }
        // Deterministic shuffle.
        let mut state = order_seed | 1;
        for i in (1..segments.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            segments.swap(i, j);
        }
        if duplicate_first && !segments.is_empty() {
            let dup = segments[0].clone();
            segments.push(dup);
        }
        let mut buffer = OutOfOrderBuffer::new(4096);
        let mut out = Vec::new();
        for (seg_offset, data) in segments {
            // Offsets are relative to the current in-order point.
            prop_assert!(seg_offset >= out.len() || seg_offset + data.len() <= out.len() ||
                         true); // overlaps allowed; insert handles them
            if seg_offset >= out.len() {
                buffer.insert(seg_offset - out.len(), &data);
            }
            out.extend_from_slice(&buffer.take_contiguous());
        }
        out.extend_from_slice(&buffer.take_contiguous());
        prop_assert_eq!(out, stream);
        prop_assert!(buffer.is_empty());
    }

    #[test]
    fn rtt_estimator_bounds_hold_for_any_samples(
        samples in proptest::collection::vec(1u64..10_000_000, 1..64),
        retransmits in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        let mut est = RttEstimator::new();
        for (i, &micros) in samples.iter().enumerate() {
            if retransmits.get(i).copied().unwrap_or(false) {
                est.on_retransmit();
            } else {
                est.sample(Duration::from_micros(micros));
            }
            let rto = est.rto();
            prop_assert!(rto >= RttEstimator::MIN_RTO, "rto {rto} below floor");
            prop_assert!(rto <= RttEstimator::MAX_RTO, "rto {rto} above ceiling");
            // After a clean sample the RTO covers the smoothed RTT.
            if let Some(srtt) = est.srtt() {
                if est.backoff() == 0 {
                    prop_assert!(
                        rto >= srtt.min(RttEstimator::MAX_RTO)
                            .max(RttEstimator::MIN_RTO)
                            .min(rto),
                        "rto {rto} vs srtt {srtt}"
                    );
                }
            }
        }
    }

    #[test]
    fn backoff_is_monotone_nondecreasing_in_rto(
        base_ms in 1u64..1000,
        backoffs in 1usize..12,
    ) {
        let mut est = RttEstimator::new();
        est.sample(Duration::from_millis(base_ms));
        let mut last = est.rto();
        for _ in 0..backoffs {
            est.on_retransmit();
            let rto = est.rto();
            prop_assert!(rto >= last, "backoff shrank the RTO");
            last = rto;
        }
    }
}
