//! Cross-crate integration tests: whole-stack scenarios through the
//! public API of the root `catenet` crate.

use catenet::sim::{Duration, LinkClass, LinkParams};
use catenet::stack::app::{BulkSender, SinkServer, UdpEchoServer};
use catenet::stack::iface::Framing;
use catenet::stack::{Endpoint, Network, TcpConfig};
use std::sync::Arc;

/// h1 — g1 — g2 — h2 over the given trunk classes.
fn two_gateway_net(seed: u64, trunk1: LinkClass, trunk2: LinkClass) -> (Network, usize, usize) {
    let mut net = Network::new(seed);
    let h1 = net.add_host("h1");
    let g1 = net.add_gateway("g1");
    let g2 = net.add_gateway("g2");
    let h2 = net.add_host("h2");
    net.connect(h1, g1, LinkClass::EthernetLan);
    net.connect(g1, g2, trunk1);
    net.connect(g2, h2, trunk2);
    net.converge_routing(Duration::from_secs(60));
    (net, h1, h2)
}

#[test]
fn bulk_transfer_over_corrupting_satellite_path() {
    // Corruption (not just loss) must be caught by the end-to-end
    // checksums and repaired by retransmission — data integrity is the
    // endpoint's job, per the end-to-end argument.
    let mut net = Network::new(97);
    let h1 = net.add_host("h1");
    let g1 = net.add_gateway("g1");
    let g2 = net.add_gateway("g2");
    let h2 = net.add_host("h2");
    net.connect(h1, g1, LinkClass::EthernetLan);
    net.connect_with(
        g1,
        g2,
        LinkParams {
            corruption: 0.02,
            loss: 0.01,
            ..LinkClass::Satellite.params()
        },
        Framing::RawIp,
    );
    net.connect(g2, h2, LinkClass::EthernetLan);
    net.converge_routing(Duration::from_secs(60));

    let dst = net.node(h2).primary_addr();
    let sink = SinkServer::new(80, TcpConfig::default());
    let received = Arc::clone(&sink.received);
    net.attach_app(h2, Box::new(sink));
    let start = net.now();
    let sender = BulkSender::new(Endpoint::new(dst, 80), 150_000, TcpConfig::default(), start);
    let result = sender.result_handle();
    net.attach_app(h1, Box::new(sender));
    net.run_for(Duration::from_secs(300));

    assert!(result.lock().unwrap().completed_at.is_some(), "completed despite corruption");
    assert_eq!(*received.lock().unwrap(), 150_000, "every byte intact");
    assert!(result.lock().unwrap().retransmits > 0, "corruption forced retransmission");
    // The receiving host must have discarded corrupted segments.
    let h2_stats = net.node(h2).stats;
    assert!(
        h2_stats.dropped_transport_checksum + h2_stats.dropped_malformed > 0,
        "checksums caught in-flight corruption"
    );
}

#[test]
fn host_crash_kills_its_own_conversations_only() {
    // Fate-sharing, the destructive direction: when the *endpoint* dies,
    // its conversations die with it — and with the host rebooted, the
    // peer's next segment meets an RST.
    let (mut net, h1, h2) = two_gateway_net(98, LinkClass::T1Terrestrial, LinkClass::T1Terrestrial);
    let dst = net.node(h2).primary_addr();
    net.node_mut(h2).tcp_listen(80, TcpConfig::default());
    let now = net.now();
    let handle = net
        .node_mut(h1)
        .tcp_connect(Endpoint::new(dst, 80), TcpConfig::default(), now)
        .unwrap();
    net.kick(h1);
    net.run_for(Duration::from_secs(3));
    assert_eq!(net.node(h1).tcp_sockets[handle].state(), catenet::tcp::State::Established);

    // The server host dies and reboots. Its socket is gone forever.
    net.crash_node(h2);
    net.restart_node(h2);
    assert!(net.node(h2).tcp_sockets.is_empty());

    // Client sends into the void; the rebooted host answers with RST.
    net.node_mut(h1).tcp_sockets[handle].send_slice(b"hello?").unwrap();
    net.kick(h1);
    net.run_for(Duration::from_secs(10));
    assert_eq!(
        net.node(h1).tcp_sockets[handle].state(),
        catenet::tcp::State::Closed,
        "peer's RST tore the connection down"
    );
    let mut buf = [0u8; 8];
    assert!(net.node_mut(h1).tcp_sockets[handle].recv_slice(&mut buf).is_err());
}

#[test]
fn udp_echo_across_heterogeneous_path_with_fragmentation() {
    let (mut net, h1, h2) = two_gateway_net(99, LinkClass::ArpanetTrunk, LinkClass::SlipLine);
    let dst = net.node(h2).primary_addr();
    let echoed = {
        let server = UdpEchoServer::new(7);
        let echoed = Arc::clone(&server.echoed);
        net.attach_app(h2, Box::new(server));
        echoed
    };
    let sock = net.node_mut(h1).udp_bind(50_000);
    // 900 bytes: fragments on the 296-MTU serial line, both directions.
    let payload: Vec<u8> = (0..900).map(|i| (i % 251) as u8).collect();
    net.node_mut(h1).udp_sockets[sock].send_to(Endpoint::new(dst, 7), &payload);
    net.kick(h1);
    net.run_for(Duration::from_secs(30));
    assert_eq!(*echoed.lock().unwrap(), 1);
    let back = net.node_mut(h1).udp_sockets[sock].recv().expect("echo returned");
    assert_eq!(back.payload, payload, "fragmented, reassembled, twice, intact");
}

#[test]
fn workspace_level_determinism() {
    // The same seed produces the identical universe through the full
    // public API — the property all experiment tables rest on.
    let run = |seed: u64| -> (u64, u64, Vec<u64>) {
        let (mut net, h1, h2) =
            two_gateway_net(seed, LinkClass::PacketRadio, LinkClass::T1Terrestrial);
        let dst = net.node(h2).primary_addr();
        let sink = SinkServer::new(80, TcpConfig::default());
        let received = Arc::clone(&sink.received);
        net.attach_app(h2, Box::new(sink));
        let start = net.now();
        let sender = BulkSender::new(Endpoint::new(dst, 80), 30_000, TcpConfig::default(), start);
        let result = sender.result_handle();
        net.attach_app(h1, Box::new(sender));
        net.run_for(Duration::from_secs(120));
        // One guard for both reads: two `lock()` temporaries in a single
        // statement would deadlock (the first guard lives to the `;`).
        let r = result.lock().unwrap();
        let timings = vec![r.completed_at.map(|t| t.total_micros()).unwrap_or(0), r.retransmits];
        drop(r);
        let received = *received.lock().unwrap();
        (received, net.frames_offered, timings)
    };
    assert_eq!(run(1234), run(1234));
    assert_ne!(run(1234).1, run(4321).1, "different seed, different loss pattern");
}

#[test]
fn tos_marking_survives_end_to_end() {
    use catenet::wire::Tos;
    let (mut net, h1, h2) = two_gateway_net(100, LinkClass::T1Terrestrial, LinkClass::T1Terrestrial);
    let dst = net.node(h2).primary_addr();
    net.node_mut(h2).udp_bind(5060);
    let sock = net.node_mut(h1).udp_bind(5061);
    net.node_mut(h1).udp_sockets[sock].tos = Tos::new(5, true, false, false);
    net.node_mut(h1).udp_sockets[sock].send_to(Endpoint::new(dst, 5060), b"urgent voice");
    net.kick(h1);
    net.run_for(Duration::from_secs(2));
    // Delivery implies the marked datagram crossed both gateways; the
    // ToS octet is carried, not interpreted — exactly per RFC 791.
    assert!(net.node_mut(h2).udp_sockets[0].recv().is_some());
}
