//! Proptest-style (seeded, reproducible) properties of the accounting
//! subsystem's crash reconciliation.
//!
//! Clark lists accountability as the *least* important goal of the 1988
//! architecture and the paper admits the resulting tooling is weak:
//! gateways meter datagrams, not bills, and a gateway reboot wipes
//! whatever its ledger held. The accounting crate's answer is an
//! explicit conservation law — every byte a ledger ever records ends up
//! in exactly one of three buckets: a flushed report, a crash-forfeited
//! tail, or the live in-memory tail. These tests drive randomized
//! record/flush/crash schedules (pure data-structure level) and
//! randomized crash storms (full simulator level) against that law.
//!
//! Each case derives its RNG from the printed case number alone, so a
//! failure reproduces from the assertion message.

use catenet::accounting::ledger::Ledger;
use catenet::accounting::report::ReportCollector;
use catenet::ip::build_ipv4;
use catenet::sim::Rng;
use catenet::stack::ShardKind;
use catenet::wire::{IpProtocol, Ipv4Address, Ipv4Repr, Tos};
use catenet_bench::e16_accountability::{run_reconcile, run_reconcile_barrier_crash};

fn case_rng(name: &str, case: u64) -> Rng {
    let tag: u64 = name.bytes().fold(0xcbf2_9ce4_8422_2325, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    });
    Rng::from_seed(tag ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// A well-formed datagram of a raw (non-TCP, non-UDP) protocol, so the
/// ledger's payload accounting is exactly the IP payload length.
fn raw_datagram(rng: &mut Rng) -> (Vec<u8>, u64) {
    let payload: Vec<u8> = (0..rng.range(1, 200)).map(|_| rng.below(256) as u8).collect();
    let repr = Ipv4Repr {
        // A handful of sources and two destinations, so accounts merge.
        src_addr: Ipv4Address::new(10, 0, 0, rng.range(1, 5) as u8),
        dst_addr: Ipv4Address::new(10, 9, 0, rng.range(1, 3) as u8),
        protocol: IpProtocol::from(99),
        payload_len: payload.len(),
        hop_limit: 32,
        tos: Tos(0),
    };
    let len = payload.len() as u64;
    (build_ipv4(&repr, rng.below(65_536) as u16, false, &payload), len)
}

/// Conservation across arbitrary record/flush/crash schedules: flushed
/// reports + forfeited tails + the live tail account for every packet
/// and every payload byte the ledger ever recorded — and the per-epoch
/// report sequence has no gaps the collector can't explain.
#[test]
fn randomized_schedules_conserve_every_recorded_byte() {
    for case in 0..64u64 {
        let mut rng = case_rng("conserve", case);
        let mut ledger = Ledger::new();
        let mut collector = ReportCollector::new();
        let (mut packets, mut payload, mut garbage) = (0u64, 0u64, 0u64);
        let mut crashes = 0u64;

        for _ in 0..rng.range(50, 300) {
            match rng.below(100) {
                // Record a well-formed datagram.
                0..=69 => {
                    let (datagram, len) = raw_datagram(&mut rng);
                    ledger.record(&datagram);
                    packets += 1;
                    payload += len;
                }
                // Record garbage: too short to parse, lands in the
                // unattributed tally rather than vanishing.
                70..=79 => {
                    ledger.record(&[0x45, 0x00]);
                    garbage += 1;
                }
                // Periodic flush into the administration's collector.
                80..=89 => {
                    if let Some(report) = ledger.flush("gw") {
                        collector.absorb(report);
                    }
                }
                // Crash: the oracle captures the tail at the crash
                // instant, then the reboot wipes the ledger.
                _ => {
                    if let Some(tail) = ledger.peek_tail("gw") {
                        collector.forfeit(tail);
                    }
                    ledger.clear();
                    crashes += 1;
                }
            }
        }

        let rec = collector.reconcile(ledger.peek_tail("gw"));
        let totals = rec.gateway("gw");
        let (got_packets, got_payload, got_garbage) = totals
            .map(|t| (t.total_packets(), t.total_payload_bytes(), t.unattributed))
            .unwrap_or((0, 0, 0));
        assert_eq!(got_packets, packets, "case {case}: packets leaked");
        assert_eq!(got_payload, payload, "case {case}: payload bytes leaked");
        assert_eq!(got_garbage, garbage, "case {case}: unattributed leaked");
        assert!(
            collector.missing_seqs("gw").is_empty(),
            "case {case}: unexplained report gap"
        );
        if let Some(t) = totals {
            assert!(
                t.max_epoch <= crashes,
                "case {case}: epoch {} outran {crashes} crashes",
                t.max_epoch
            );
        }
    }
}

/// The end-to-end bound under randomized crash storms, on seeds the E16
/// battery never uses: for every gateway on the path, reconciled
/// payload sits between receiver goodput and sender transmissions —
/// crash-forfeited tails included — and the transfer itself survives
/// (fate-sharing: the endpoints own the state that matters).
#[test]
fn crash_storms_respect_the_retransmission_inflation_bound() {
    for seed in [5u64, 19, 101] {
        let r = run_reconcile(seed, true);
        assert!(r.faults > 0, "seed {seed}: storm never fired");
        assert!(r.bounds_hold, "seed {seed}: {r:?}");
        assert!(r.completed, "seed {seed}: transfer did not survive the storm");
        assert!(
            r.goodput <= r.sent,
            "seed {seed}: goodput {} over sent {}",
            r.goodput,
            r.sent
        );
    }
}

/// A crash landing *exactly* on a ledger-flush instant — which in
/// sharded execution is also a coordinator barrier — must forfeit the
/// identical ledger tail under K=1 and K>1. Faults apply before
/// flushes at a shared instant (a power cut does not wait for
/// bookkeeping), and that fault→sample→flush ordering is the likeliest
/// thing lane windows could break: a lane that ran its window past the
/// barrier before the crash applied would let the flush report bytes
/// the crash should have forfeited. Seeded, so a failure names the
/// (seed, K) pair that reproduces it.
#[test]
fn barrier_instant_crash_forfeits_the_same_tail_at_every_shard_count() {
    for seed in [11u64, 19, 101] {
        let (reference, ref_dumps) = run_reconcile_barrier_crash(seed, ShardKind::Single);
        assert_eq!(reference.faults, 2, "seed {seed}: crash + restart applied");
        assert!(reference.mid_epochs >= 1, "seed {seed}: the ledger saw the crash");
        assert!(
            reference.forfeited >= 1,
            "seed {seed}: the colliding flush must lose to the crash — \
             the tail is forfeited, not reported: {reference:?}"
        );
        assert!(reference.bounds_hold, "seed {seed}: {reference:?}");
        for shards in [2usize, 5] {
            let (sharded, dumps) =
                run_reconcile_barrier_crash(seed, ShardKind::Sharded { shards });
            assert_eq!(
                reference, sharded,
                "seed {seed} shards={shards}: books diverged at the barrier"
            );
            assert_eq!(
                ref_dumps, dumps,
                "seed {seed} shards={shards}: telemetry diverged at the barrier"
            );
        }
    }
}

/// With no faults the books agree across administrative boundaries: all
/// three gateways report identical byte counts, within one warm-up
/// retransmission of goodput, and nothing is forfeited.
#[test]
fn clean_runs_reconcile_across_gateways() {
    let r = run_reconcile(7, false);
    assert!(r.completed && r.bounds_hold, "{r:?}");
    assert!(
        r.reconciled.iter().all(|&c| c == r.reconciled[0]),
        "gateways disagree: {:?}",
        r.reconciled
    );
    assert!(r.reconciled[0] - r.goodput <= 2 * 536, "{r:?}");
    assert_eq!(r.forfeited, 0, "{r:?}");
}
