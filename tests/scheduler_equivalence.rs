//! Differential proof that the timer-wheel scheduler is observably
//! identical to the binary heap it replaced.
//!
//! The wheel is the default backend (`SchedulerKind::Wheel`), so every
//! simulation result in this repo now rests on it. This harness earns
//! that trust three ways:
//!
//! 1. **System level, chaos**: the full E11 survivability gauntlet —
//!    all 15 scenarios across all 5 standard seeds — run once per
//!    backend, asserting the complete [`RunArtifacts`] are equal:
//!    outcome, delivered-stream digest, metrics dump, time-series dump
//!    and flight-recorder ring, byte for byte.
//! 2. **System level, routing**: the E12 reconvergence experiment —
//!    every ring size × fault kind — compared the same way.
//! 3. **Property level**: thousands of seeded random schedule/pop
//!    interleavings driven through both backends in lockstep
//!    ([`catenet_sim::diffsched::run_lockstep`]), which checks every
//!    observable (`peek_time`, `len`, `now`, each popped `(at,
//!    payload)` pair) after every single op — FIFO tie-breaking and
//!    the expired-timer clamp included.
//!
//! If the backends ever diverge, the failure message names the
//! scenario/seed (or the op index) that exposed it, which is exactly
//! the reproduction recipe.
//!
//! [`RunArtifacts`]: catenet_bench::e11_gauntlet::RunArtifacts

use catenet_bench::e11_gauntlet::{run_with, scenarios};
use catenet_bench::{e12_reconvergence, SEEDS};
use catenet_sim::diffsched::{random_ops, run_lockstep};
use catenet_sim::{Rng, SchedulerKind};

/// E11: every gauntlet scenario, every standard seed, both backends.
/// `RunArtifacts` equality covers the scored outcome (including the
/// delivered-stream digest) and all three telemetry dumps.
#[test]
fn e11_battery_is_bit_identical_across_backends() {
    for scenario in scenarios() {
        for &seed in SEEDS.iter() {
            let heap = run_with(scenario, seed, SchedulerKind::Heap);
            let wheel = run_with(scenario, seed, SchedulerKind::Wheel);
            assert_eq!(
                heap.outcome, wheel.outcome,
                "outcome diverged: scenario={} seed={seed}",
                scenario.name
            );
            assert_eq!(
                heap.metrics, wheel.metrics,
                "metrics dump diverged: scenario={} seed={seed}",
                scenario.name
            );
            assert_eq!(
                heap.series, wheel.series,
                "series dump diverged: scenario={} seed={seed}",
                scenario.name
            );
            assert_eq!(
                heap.flight, wheel.flight,
                "flight ring diverged: scenario={} seed={seed}",
                scenario.name
            );
            // Either the transfer finished or it ended with an explicit
            // error — a hung run would make "equal" vacuous.
            assert!(
                heap.outcome.completed || heap.outcome.aborted,
                "unresolved run: scenario={} seed={seed}",
                scenario.name
            );
        }
    }
}

/// E12: one disruption-then-heal cycle per (ring size, fault kind),
/// comparing the reconvergence measurements and all telemetry dumps.
#[test]
fn e12_reconvergence_is_bit_identical_across_backends() {
    for &gateways in e12_reconvergence::RING_SIZES.iter() {
        for fault in e12_reconvergence::FaultKind::all() {
            for &seed in &SEEDS[..2] {
                let (recs_h, dumps_h) =
                    e12_reconvergence::run_with(gateways, fault, seed, SchedulerKind::Heap);
                let (recs_w, dumps_w) =
                    e12_reconvergence::run_with(gateways, fault, seed, SchedulerKind::Wheel);
                assert_eq!(
                    recs_h,
                    recs_w,
                    "reconvergence diverged: ring={gateways} fault={} seed={seed}",
                    fault.name()
                );
                for (i, name) in ["metrics", "series", "flight"].iter().enumerate() {
                    assert_eq!(
                        dumps_h[i],
                        dumps_w[i],
                        "{name} dump diverged: ring={gateways} fault={} seed={seed}",
                        fault.name()
                    );
                }
                assert!(
                    !recs_h.is_empty(),
                    "no heals measured: ring={gateways} fault={} seed={seed}",
                    fault.name()
                );
            }
        }
    }
}

/// Property test: 2400 seeded random interleavings of schedule-after /
/// schedule-at(-in-the-past) / pop, each driven through both backends
/// in lockstep with every observable compared after every op. Workload
/// lengths vary so drain points land at different depths; the
/// distribution is biased toward timer-wheel edge cases (same-instant
/// bursts, far-future overflow, scheduling mid-drain, expired clamps).
#[test]
fn random_interleavings_never_diverge() {
    const CASES: u64 = 2400;
    let mut total_pops = 0u64;
    for case in 0..CASES {
        let mut rng = Rng::from_seed(0x5EED_D1FF_0000_0000 | case);
        let len = 80 + (case as usize % 9) * 35;
        let ops = random_ops(&mut rng, len);
        let (pops, fingerprint) = run_lockstep(&ops);
        total_pops += pops;
        // Replaying the identical workload must reproduce the identical
        // pop sequence — spot-checked on a slice of cases to keep the
        // suite fast.
        if case % 240 == 0 {
            assert_eq!(
                run_lockstep(&ops),
                (pops, fingerprint),
                "case {case} is not deterministic"
            );
        }
    }
    // Sanity: the property wasn't satisfied vacuously.
    assert!(total_pops > 100_000, "only {total_pops} pops across all cases");
}
