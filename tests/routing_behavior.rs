//! Network-level routing behavior: policy boundaries, path preference,
//! TTL exhaustion, and routing-protocol hygiene — the "distributed
//! management" goal exercised through the full stack.

use catenet::routing::ExportPolicy;
use catenet::sim::{Duration, LinkClass};
use catenet::stack::Network;
use catenet::wire::{Icmpv4Message, TimeExceeded};

#[test]
fn export_policy_can_hide_a_region() {
    // as1(h1—g1) — g2(border) — as2(g3—h2). The border gateway g2
    // refuses to export anything toward g1: h1 can reach g2's own
    // networks but nothing beyond — policy, not topology, decides.
    let mut net = Network::new(61);
    let h1 = net.add_host("h1");
    let g1 = net.add_gateway("g1");
    let g2 = net.add_gateway("g2");
    let g3 = net.add_gateway("g3");
    let h2 = net.add_host("h2");
    net.connect(h1, g1, LinkClass::EthernetLan);
    net.connect(g1, g2, LinkClass::T1Terrestrial); // g2's iface 0
    net.connect(g2, g3, LinkClass::T1Terrestrial);
    net.connect(g3, h2, LinkClass::EthernetLan);
    // g2 exports NOTHING toward g1.
    net.node_mut(g2).dv_policies[0] = ExportPolicy::Only(vec![]);
    net.converge_routing(Duration::from_secs(90));

    let dst = net.node(h2).primary_addr();
    let now = net.now();
    net.node_mut(h1).send_ping(dst, 1, 1, 16, now);
    net.kick(h1);
    net.run_for(Duration::from_secs(3));
    let events = net.node_mut(h1).take_icmp_events();
    assert!(
        !events
            .iter()
            .any(|e| matches!(e.message, Icmpv4Message::EchoReply { .. })),
        "policy hid the far region: {events:?}"
    );
    // g1 knows no route, so it reports unreachable.
    assert!(
        events
            .iter()
            .any(|e| matches!(e.message, Icmpv4Message::DstUnreachable(_))),
        "got an unreachable report: {events:?}"
    );
}

#[test]
fn shorter_path_preferred_and_used() {
    // Two paths to h2: 1 hop (g1—g3) and 2 hops (g1—g2—g3). All traffic
    // must use the short one; the long path's middle gateway forwards
    // nothing.
    let mut net = Network::new(62);
    let h1 = net.add_host("h1");
    let g1 = net.add_gateway("g1");
    let g2 = net.add_gateway("g2");
    let g3 = net.add_gateway("g3");
    let h2 = net.add_host("h2");
    net.connect(h1, g1, LinkClass::EthernetLan);
    net.connect(g1, g2, LinkClass::T1Terrestrial);
    net.connect(g2, g3, LinkClass::T1Terrestrial);
    net.connect(g1, g3, LinkClass::T1Terrestrial); // the shortcut
    net.connect(g3, h2, LinkClass::EthernetLan);
    net.converge_routing(Duration::from_secs(90));

    let dst = net.node(h2).primary_addr();
    for seq in 0..5 {
        let now = net.now();
        net.node_mut(h1).send_ping(dst, 2, seq, 16, now);
        net.kick(h1);
        net.run_for(Duration::from_secs(1));
    }
    let replies = net
        .node_mut(h1)
        .take_icmp_events()
        .iter()
        .filter(|e| matches!(e.message, Icmpv4Message::EchoReply { .. }))
        .count();
    assert_eq!(replies, 5);
    assert_eq!(
        net.node(g2).stats.ip_forwarded,
        0,
        "the long path carried no data traffic"
    );
}

#[test]
fn ttl_exhaustion_in_a_long_chain_reports_time_exceeded() {
    let mut net = Network::new(63);
    let h1 = net.add_host("h1");
    let mut prev = net.add_gateway("g1");
    net.connect(h1, prev, LinkClass::EthernetLan);
    for i in 2..=6 {
        let g = net.add_gateway(format!("g{i}"));
        net.connect(prev, g, LinkClass::T1Terrestrial);
        prev = g;
    }
    let h2 = net.add_host("h2");
    net.connect(prev, h2, LinkClass::EthernetLan);
    net.converge_routing(Duration::from_secs(180));

    let dst = net.node(h2).primary_addr();
    // TTL 3 dies inside the chain (needs 7 hops).
    net.node_mut(h1).default_ttl = 3;
    let now = net.now();
    net.node_mut(h1).send_ping(dst, 3, 1, 16, now);
    net.kick(h1);
    net.run_for(Duration::from_secs(3));
    let events = net.node_mut(h1).take_icmp_events();
    assert!(
        events.iter().any(|e| matches!(
            e.message,
            Icmpv4Message::TimeExceeded(TimeExceeded::TtlExpired)
        )),
        "time exceeded reported: {events:?}"
    );
    // With enough TTL the same probe succeeds.
    net.node_mut(h1).default_ttl = 64;
    let now = net.now();
    net.node_mut(h1).send_ping(dst, 3, 2, 16, now);
    net.kick(h1);
    net.run_for(Duration::from_secs(3));
    assert!(net
        .node_mut(h1)
        .take_icmp_events()
        .iter()
        .any(|e| matches!(e.message, Icmpv4Message::EchoReply { .. })));
}

#[test]
fn routing_chatter_is_bounded_in_steady_state() {
    // A quiet converged network exchanges only periodic advertisements:
    // one message per interface per update interval.
    let mut net = Network::new(64);
    let g1 = net.add_gateway("g1");
    let g2 = net.add_gateway("g2");
    let g3 = net.add_gateway("g3");
    net.connect(g1, g2, LinkClass::T1Terrestrial);
    net.connect(g2, g3, LinkClass::T1Terrestrial);
    net.converge_routing(Duration::from_secs(60));
    let before: u64 = [g1, g2, g3]
        .iter()
        .map(|&g| net.node(g).dv.as_ref().unwrap().updates_received)
        .sum();
    net.run_for(Duration::from_secs(30)); // 10 update intervals (3 s each)
    let after: u64 = [g1, g2, g3]
        .iter()
        .map(|&g| net.node(g).dv.as_ref().unwrap().updates_received)
        .sum();
    let received = after - before;
    // 4 interface-endpoints between gateways × 10 intervals = 40 expected.
    assert!(
        (30..=60).contains(&received),
        "steady-state chatter {received} messages in 30 s"
    );
}

#[test]
fn new_link_is_discovered_without_restart() {
    // Plug a new gateway into a running internetwork: its networks
    // become reachable with no operator action anywhere else.
    let mut net = Network::new(65);
    let h1 = net.add_host("h1");
    let g1 = net.add_gateway("g1");
    net.connect(h1, g1, LinkClass::EthernetLan);
    net.converge_routing(Duration::from_secs(30));

    let g_new = net.add_gateway("g-new");
    let h_new = net.add_host("h-new");
    net.connect(g1, g_new, LinkClass::T1Terrestrial);
    net.connect(g_new, h_new, LinkClass::EthernetLan);
    net.converge_routing(Duration::from_secs(60));

    let dst = net.node(h_new).primary_addr();
    let now = net.now();
    net.node_mut(h1).send_ping(dst, 9, 1, 16, now);
    net.kick(h1);
    net.run_for(Duration::from_secs(2));
    assert_eq!(
        net.node_mut(h1)
            .take_icmp_events()
            .iter()
            .filter(|e| matches!(e.message, Icmpv4Message::EchoReply { .. }))
            .count(),
        1,
        "the grown internetwork carries traffic"
    );
}
