//! Network-level TCP behavior: MSS vs MTU interactions, fairness between
//! competing connections, and the R2 give-up threshold under partition.

use catenet::sim::{Duration, LinkClass};
use catenet::stack::app::{BulkSender, SinkServer};
use catenet::stack::{Endpoint, Network, TcpConfig};
use std::sync::Arc;

#[test]
fn tcp_crosses_a_smaller_mtu_than_its_mss_via_ip_fragmentation() {
    // MSS 536 segments (576-byte datagrams) over a 296-MTU serial line:
    // the gateway fragments, the receiving host reassembles, TCP never
    // notices — layering exactly as the architecture intends.
    let mut net = Network::new(71);
    let h1 = net.add_host("h1");
    let g = net.add_gateway("g");
    let h2 = net.add_host("h2");
    net.connect(h1, g, LinkClass::T1Terrestrial);
    net.connect(g, h2, LinkClass::SlipLine);
    net.converge_routing(Duration::from_secs(30));

    let dst = net.node(h2).primary_addr();
    let sink = SinkServer::new(80, TcpConfig::default());
    let received = Arc::clone(&sink.received);
    net.attach_app(h2, Box::new(sink));
    let start = net.now();
    let sender = BulkSender::new(Endpoint::new(dst, 80), 20_000, TcpConfig::default(), start);
    let result = sender.result_handle();
    net.attach_app(h1, Box::new(sender));
    net.run_for(Duration::from_secs(120));

    assert!(result.lock().unwrap().completed_at.is_some(), "{:?}", result.lock().unwrap());
    assert_eq!(*received.lock().unwrap(), 20_000);
    assert!(
        net.node(g).stats.frags_created > 0,
        "the gateway fragmented TCP segments"
    );
    assert!(net.node(h2).reassembler().completed > 0);
}

#[test]
fn competing_connections_share_a_bottleneck_fairly_enough() {
    // Two Tahoe connections share one T1: neither starves. "Fair enough"
    // for 1988 means both finish and the slower one takes less than 3×
    // the faster one's time.
    let mut net = Network::new(72);
    let g1 = net.add_gateway("g1");
    let g2 = net.add_gateway("g2");
    net.connect(g1, g2, LinkClass::T1Terrestrial);
    let mut results = Vec::new();
    for i in 0..2 {
        let src = net.add_host(format!("src{i}"));
        let dst = net.add_host(format!("dst{i}"));
        net.connect(src, g1, LinkClass::EthernetLan);
        net.connect(dst, g2, LinkClass::EthernetLan);
        let _ = (src, dst);
        results.push((src, dst));
    }
    net.converge_routing(Duration::from_secs(60));
    let start = net.now();
    let mut handles = Vec::new();
    for &(src, dst) in &results {
        let dst_addr = net.node(dst).primary_addr();
        let sink = SinkServer::new(80, TcpConfig::default());
        net.attach_app(dst, Box::new(sink));
        let sender = BulkSender::new(
            Endpoint::new(dst_addr, 80),
            150_000,
            TcpConfig::default(),
            start + Duration::from_millis(100),
        );
        handles.push(sender.result_handle());
        net.attach_app(src, Box::new(sender));
    }
    net.run_for(Duration::from_secs(300));
    let durations: Vec<f64> = handles
        .iter()
        .map(|h| {
            h.lock().unwrap()
                .duration()
                .expect("both transfers complete")
                .secs_f64()
        })
        .collect();
    let (fast, slow) = (
        durations.iter().cloned().fold(f64::INFINITY, f64::min),
        durations.iter().cloned().fold(0.0, f64::max),
    );
    assert!(
        slow / fast < 3.0,
        "gross unfairness: {durations:?}"
    );
}

#[test]
fn r2_gives_up_during_a_permanent_partition() {
    // With max_retries configured, a connection across a permanently
    // severed path dies cleanly instead of retrying forever.
    let mut net = Network::new(73);
    let h1 = net.add_host("h1");
    let g = net.add_gateway("g");
    let h2 = net.add_host("h2");
    net.connect(h1, g, LinkClass::EthernetLan);
    let trunk = net.connect(g, h2, LinkClass::T1Terrestrial);
    net.converge_routing(Duration::from_secs(30));

    let dst = net.node(h2).primary_addr();
    net.node_mut(h2).tcp_listen(80, TcpConfig::default());
    let config = TcpConfig {
        max_retries: Some(4),
        ..TcpConfig::default()
    };
    let now = net.now();
    let handle = net
        .node_mut(h1)
        .tcp_connect(Endpoint::new(dst, 80), config, now)
        .unwrap();
    net.kick(h1);
    net.run_for(Duration::from_secs(2));
    assert_eq!(
        net.node(h1).tcp_sockets[handle].state(),
        catenet::tcp::State::Established
    );

    net.node_mut(h1).tcp_sockets[handle]
        .send_slice(b"doomed")
        .unwrap();
    net.set_link_up(trunk, false); // permanent partition
    net.kick(h1);
    // 4 retries with exponential backoff fit comfortably in 5 minutes.
    net.run_for(Duration::from_secs(300));
    assert_eq!(
        net.node(h1).tcp_sockets[handle].state(),
        catenet::tcp::State::Closed,
        "R2 fired"
    );
    let mut buf = [0u8; 4];
    assert_eq!(
        net.node_mut(h1).tcp_sockets[handle]
            .recv_slice(&mut buf)
            .unwrap_err(),
        catenet::tcp::TcpError::TimedOut
    );
}

#[test]
fn many_sequential_connections_reuse_the_listener_host() {
    // A server host accepts 5 connections one after another (each with
    // its own listening socket, smoltcp-style), exercising TIME-WAIT
    // coexistence and ephemeral port allocation.
    let mut net = Network::new(74);
    let h1 = net.add_host("client");
    let g = net.add_gateway("g");
    let h2 = net.add_host("server");
    net.connect(h1, g, LinkClass::EthernetLan);
    net.connect(g, h2, LinkClass::T1Terrestrial);
    net.converge_routing(Duration::from_secs(30));
    let dst = net.node(h2).primary_addr();

    for round in 0..5 {
        let sink = SinkServer::new(8000 + round, TcpConfig::default());
        let received = Arc::clone(&sink.received);
        net.attach_app(h2, Box::new(sink));
        let start = net.now();
        let sender = BulkSender::new(
            Endpoint::new(dst, 8000 + round),
            5_000,
            TcpConfig::default(),
            start,
        );
        let result = sender.result_handle();
        net.attach_app(h1, Box::new(sender));
        net.run_for(Duration::from_secs(30));
        assert!(
            result.lock().unwrap().completed_at.is_some(),
            "round {round}: {:?}",
            result.lock().unwrap()
        );
        assert_eq!(*received.lock().unwrap(), 5_000, "round {round}");
    }
    // Distinct ephemeral ports were used for each connection.
    let ports: std::collections::HashSet<u16> = net
        .node(h1)
        .tcp_sockets
        .iter()
        .map(|s| s.local().port)
        .collect();
    assert_eq!(ports.len(), 5);
}
