//! Regression tests for the per-pair lane-window protocol's two known
//! failure shapes — pinned as *counters*, never as byte divergence.
//!
//! The conservative window protocol (`crates/core/src/network.rs`,
//! `run_until`) promises that lane count and lookahead mode change
//! performance only: every telemetry dump stays byte-identical to the
//! single-lane reference. The two topologies most likely to break that
//! promise in spirit (correct bytes, useless speedup) are:
//!
//! 1. **A zero-latency link crossing a lane boundary.** The per-pair
//!    lookahead collapses the receiving lane's window to a single
//!    instant (the 1 µs serialization floor is all the slack there is).
//!    Correctness must survive — and `ShardStats::collapsed` must
//!    report the collapse instead of letting the run silently degrade
//!    to lockstep.
//! 2. **A fault plan denser than the lookahead window.** Every round
//!    is truncated by a pending coordinator op, so the barrier
//!    serializes on the plan. The batched dispatch (all same-instant
//!    actions in one interruption, only lanes with due events
//!    executed) must show up in `barrier_stalls`/`op_batches`/
//!    `lanes_skipped`, and the dumps must stay byte-identical at every
//!    K — including under the PR 8 global-lookahead baseline arm,
//!    which dispatches every lane every round.

use catenet::sim::{Duration, FaultAction, FaultPlan, Instant, LinkClass};
use catenet::stack::app::{CbrSink, CbrSource};
use catenet::stack::iface::Framing;
use catenet::stack::{Endpoint, Network, ShardKind, ShardStats};

/// h0 — g1 —(zero-propagation trunk)— g2 — h3, CBR both ways. With
/// K = 2 the boundary falls between g1 and g2, exactly on the
/// zero-latency link.
fn zero_boundary_net(seed: u64, shard: ShardKind) -> Network {
    let mut net = Network::with_shards(seed, shard);
    let h0 = net.add_host("h0");
    let g1 = net.add_gateway("g1");
    let g2 = net.add_gateway("g2");
    let h3 = net.add_host("h3");
    net.connect(h0, g1, LinkClass::EthernetLan);
    let mut zero = LinkClass::EthernetLan.params();
    zero.propagation = Duration::ZERO;
    zero.jitter = Duration::ZERO;
    net.connect_with(g1, g2, zero, Framing::Ethernet);
    net.connect(g2, h3, LinkClass::EthernetLan);
    let a0 = net.node(h0).primary_addr();
    let a3 = net.node(h3).primary_addr();
    net.attach_app(h3, Box::new(CbrSink::new(5000)));
    net.attach_app(
        h0,
        Box::new(CbrSource::new(
            Endpoint::new(a3, 5000),
            Duration::from_millis(50),
            120,
            Instant::from_secs(1),
            Instant::from_secs(4),
        )),
    );
    net.attach_app(h0, Box::new(CbrSink::new(5001)));
    net.attach_app(
        h3,
        Box::new(CbrSource::new(
            Endpoint::new(a0, 5001),
            Duration::from_millis(50),
            120,
            Instant::from_secs(1),
            Instant::from_secs(4),
        )),
    );
    net
}

fn dumps(net: &Network) -> [String; 3] {
    [net.metrics_dump(), net.series_dump(), net.flight_dump()]
}

#[test]
fn zero_latency_boundary_link_is_byte_identical_and_counted() {
    let run = |shard| {
        let mut net = zero_boundary_net(7, shard);
        net.run_for(Duration::from_secs(5));
        (dumps(&net), net.shard_stats())
    };
    let (reference, single_stats) = run(ShardKind::Single);
    // The single-lane arm never touches the window counters.
    assert_eq!(single_stats, ShardStats::default());
    for shard in [
        ShardKind::Sharded { shards: 2 },
        ShardKind::Parallel { shards: 2 },
    ] {
        let (d, stats) = run(shard);
        assert_eq!(d, reference, "dumps diverged under {shard:?}");
        assert!(stats.windows > 0, "rounds ran under {shard:?}");
        // The receiving lane's window collapses to the round-start
        // instant nearly every round: the peer's next event plus the
        // 1 µs floor is all the lookahead a zero-propagation boundary
        // link leaves. The counter is the alarm.
        assert!(
            stats.collapsed > 0,
            "zero-latency boundary must be reported: {stats:?}"
        );
        assert_eq!(
            stats.lanes_dispatched + stats.lanes_skipped,
            stats.windows * 2,
            "every round accounts for both lanes: {stats:?}"
        );
    }
}

/// Interleaved ring — g0,h0,g1,h1,g2,h2,g3,h3 with T1 trunks between
/// consecutive gateways — so every K ∈ {2, 4} boundary cuts a trunk,
/// never a LAN. CBR h0 ↔ h2 crosses the ring both ways.
fn ring_net(seed: u64, shard: ShardKind) -> (Network, Vec<usize>) {
    let mut net = Network::with_shards(seed, shard);
    let mut gs = Vec::new();
    let mut hs = Vec::new();
    for i in 0..4 {
        let g = net.add_gateway(format!("g{i}"));
        let h = net.add_host(format!("h{i}"));
        net.connect(h, g, LinkClass::EthernetLan);
        gs.push(g);
        hs.push(h);
    }
    let mut trunks = Vec::new();
    for i in 0..4 {
        trunks.push(net.connect(gs[i], gs[(i + 1) % 4], LinkClass::T1Terrestrial));
    }
    let a0 = net.node(hs[0]).primary_addr();
    let a2 = net.node(hs[2]).primary_addr();
    net.attach_app(hs[2], Box::new(CbrSink::new(6000)));
    net.attach_app(
        hs[0],
        Box::new(CbrSource::new(
            Endpoint::new(a2, 6000),
            Duration::from_millis(50),
            160,
            Instant::from_secs(5),
            Instant::from_secs(12),
        )),
    );
    net.attach_app(hs[0], Box::new(CbrSink::new(6001)));
    net.attach_app(
        hs[2],
        Box::new(CbrSource::new(
            Endpoint::new(a0, 6001),
            Duration::from_millis(50),
            160,
            Instant::from_secs(5),
            Instant::from_secs(12),
        )),
    );
    (net, trunks)
}

/// Two same-instant delay-spike/restore actions every 5 ms from t=6 s
/// to t=9 s — six times denser than the 30 ms T1 lookahead, so every
/// traffic round in that span is op-truncated.
fn dense_plan(trunks: &[usize]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    let mut at = Instant::from_secs(6);
    let step = Duration::from_millis(5);
    let mut spiked = false;
    while at < Instant::from_secs(9) {
        for &link in &trunks[..2] {
            let action = if spiked {
                FaultAction::RestoreDelay { link }
            } else {
                FaultAction::DelaySpike {
                    link,
                    extra: Duration::from_millis(1),
                    jitter: Duration::ZERO,
                }
            };
            plan.push(at, action);
        }
        spiked = !spiked;
        at += step;
    }
    plan
}

#[test]
fn dense_fault_plan_is_byte_identical_and_batches_dispatch() {
    let run = |shard, global: bool| {
        let (mut net, trunks) = ring_net(21, shard);
        if global {
            net.set_global_lookahead(true);
        }
        net.attach_fault_plan(dense_plan(&trunks));
        net.run_for(Duration::from_secs(15));
        (dumps(&net), net.shard_stats())
    };
    let (reference, _) = run(ShardKind::Single, false);
    let mut per_pair_skipped = 0;
    for k in [2usize, 4] {
        let (d, stats) = run(ShardKind::Sharded { shards: k }, false);
        assert_eq!(d, reference, "dumps diverged at K={k}");
        // Batching: every plan instant carries two fault actions and
        // both land in one coordinator interruption, so applied ops
        // strictly outnumber batches (telemetry samples ride along as
        // single-op batches, which is why this is `>` and not `== 2×`).
        assert!(
            stats.ops_applied > stats.op_batches && stats.op_batches > 0,
            "same-instant actions must share a batch: {stats:?}"
        );
        // The plan is denser than the lookahead: rounds are truncated
        // by a pending op, and the counter says so.
        assert!(stats.barrier_stalls > 0, "dense plan must stall: {stats:?}");
        // Only lanes with due events run; idle lanes are skipped, the
        // batched-dispatch win over running every lane every round.
        assert!(stats.lanes_skipped > 0, "idle lanes must be skipped: {stats:?}");
        assert_eq!(
            stats.lanes_dispatched + stats.lanes_skipped,
            stats.windows * k as u64,
            "every round accounts for every lane: {stats:?}"
        );
        // Trunk-only cuts: no window collapses (contrast with the
        // zero-latency boundary test above).
        assert_eq!(stats.collapsed, 0, "T1 cuts never collapse: {stats:?}");
        if k == 2 {
            per_pair_skipped = stats.lanes_skipped;
        }
    }
    // The PR 8 baseline arm on the same topology: byte-identical too,
    // but it dispatches every lane every round — the A/B that shows
    // what batched dispatch saves.
    let (d, stats) = run(ShardKind::Sharded { shards: 2 }, true);
    assert_eq!(d, reference, "global-lookahead arm diverged");
    assert_eq!(stats.lanes_skipped, 0, "baseline runs every lane: {stats:?}");
    assert_eq!(stats.lanes_dispatched, stats.windows * 2);
    assert!(
        per_pair_skipped > 0,
        "per-pair arm skipped lanes where the baseline could not"
    );
    // Threaded arm: same bytes, same skipping, through real threads.
    let (d, stats) = run(ShardKind::Parallel { shards: 2 }, false);
    assert_eq!(d, reference, "threaded arm diverged");
    assert!(stats.lanes_skipped > 0);
}
