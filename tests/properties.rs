//! Property-based tests (seeded deterministic loops) on the stack's core
//! invariants: wire-format round-trips, fragmentation/reassembly,
//! sequence-number arithmetic, the routing table against a naive model,
//! and TCP delivering exactly the written byte stream under arbitrary
//! loss.
//!
//! Each property draws its inputs from `catenet::sim::Rng`, so every
//! case is reproducible from its printed case number alone.

use catenet::ip::{build_ipv4, fragment, Reassembler, RoutingTable};
use catenet::sim::{Duration, Instant, Rng};
use catenet::tcp::{Endpoint, Socket, SocketConfig};
use catenet::wire::{
    checksum, IpProtocol, Ipv4Address, Ipv4Cidr, Ipv4Packet, Ipv4Repr, TcpSeqNumber, Tos,
    UdpPacket, UdpRepr,
};

fn case_rng(name: &str, case: u64) -> Rng {
    let tag: u64 = name.bytes().fold(0xcbf2_9ce4_8422_2325, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    });
    Rng::from_seed(tag ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

fn bytes(rng: &mut Rng, lo: usize, hi: usize) -> Vec<u8> {
    let len = rng.range(lo as u64, hi as u64) as usize;
    (0..len).map(|_| rng.below(256) as u8).collect()
}

fn addr(rng: &mut Rng) -> Ipv4Address {
    let a = rng.range(1, 224) as u8;
    let b = rng.below(256) as u8;
    let c = rng.below(256) as u8;
    let d = rng.range(1, 255) as u8;
    let mut addr = Ipv4Address::new(a, b, c, d);
    if addr.is_loopback() || !addr.is_unicast() {
        addr = Ipv4Address::new(10, b, c, d);
    }
    addr
}

#[test]
fn checksum_verifies_after_fill() {
    // checksum(data || checksum-field) verifies — provided the checksum
    // lands 16-bit aligned, as it does in every real protocol header
    // (odd-length payloads are conceptually zero-padded *after* the
    // checksum field, not before it).
    let check = |data: &[u8]| {
        let mut buf = data.to_vec();
        if !buf.len().is_multiple_of(2) {
            buf.push(0);
        }
        let csum = checksum::checksum(&buf);
        buf.extend_from_slice(&csum.to_be_bytes());
        assert!(checksum::verify(&buf), "failed for {data:?}");
    };
    // Regression case once found by random search: a mostly-zero buffer
    // whose sum is close to the 0xffff fixed point.
    let mut regression = vec![0u8; 108];
    regression[9] = 1;
    regression.extend_from_slice(&[
        27, 252, 179, 233, 116, 7, 250, 62, 222, 94, 165, 223, 161, 242, 159, 201, 154, 154, 244,
        251, 242, 190, 200, 125, 166, 139, 238, 25, 50, 89, 224,
    ]);
    check(&regression);
    check(&[]);
    check(&[0xff; 64]);
    for case in 0..256 {
        let mut rng = case_rng("checksum_fill", case);
        check(&bytes(&mut rng, 0, 256));
    }
}

#[test]
fn checksum_incremental_combine() {
    // combine(sum(a), sum(b)) == checksum(a || b) when a.len() is even
    // (one's-complement sums are position-independent only at 16-bit
    // granularity).
    for case in 0..256 {
        let mut rng = case_rng("checksum_combine", case);
        let mut a = bytes(&mut rng, 0, 128);
        if !a.len().is_multiple_of(2) {
            a.pop();
        }
        let b = bytes(&mut rng, 0, 128);
        let whole: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(
            checksum::combine(&[checksum::sum(&a), checksum::sum(&b)]),
            checksum::checksum(&whole)
        );
    }
}

#[test]
fn ipv4_round_trip() {
    for case in 0..256 {
        let mut rng = case_rng("ipv4_round_trip", case);
        let payload = bytes(&mut rng, 0, 512);
        let repr = Ipv4Repr {
            src_addr: addr(&mut rng),
            dst_addr: addr(&mut rng),
            protocol: IpProtocol::from(rng.below(256) as u8),
            payload_len: payload.len(),
            hop_limit: rng.range(1, 256) as u8,
            tos: Tos(rng.below(256) as u8),
        };
        let ident = rng.below(65536) as u16;
        let buf = build_ipv4(&repr, ident, false, &payload);
        let packet = Ipv4Packet::new_checked(&buf[..]).expect("valid");
        assert!(packet.verify_checksum());
        assert_eq!(Ipv4Repr::parse(&packet).expect("parses"), repr);
        assert_eq!(packet.payload(), &payload[..]);
        assert_eq!(packet.ident(), ident);
    }
}

#[test]
fn ipv4_single_bit_corruption_never_parses_cleanly() {
    // Any single-bit flip in the HEADER must be caught by checksum or
    // structural validation. Exhaustive over all 160 header bit
    // positions, across several payloads.
    for case in 0..8 {
        let mut rng = case_rng("ipv4_corruption", case);
        let payload = bytes(&mut rng, 8, 128);
        let repr = Ipv4Repr {
            src_addr: Ipv4Address::new(10, 0, 0, 1),
            dst_addr: Ipv4Address::new(10, 0, 0, 2),
            protocol: IpProtocol::Udp,
            payload_len: payload.len(),
            hop_limit: 64,
            tos: Tos::default(),
        };
        let clean = build_ipv4(&repr, 7, false, &payload);
        for byte in 0..20 {
            for bit in 0..8 {
                let mut buf = clean.clone();
                buf[byte] ^= 1 << bit;
                let accepted = match Ipv4Packet::new_checked(&buf[..]) {
                    Ok(packet) => packet.verify_checksum(),
                    Err(_) => false,
                };
                assert!(!accepted, "corrupted header accepted (byte {byte} bit {bit})");
            }
        }
    }
}

#[test]
fn udp_round_trip_with_pseudo_header() {
    for case in 0..256 {
        let mut rng = case_rng("udp_round_trip", case);
        let src = addr(&mut rng);
        let dst = addr(&mut rng);
        let payload = bytes(&mut rng, 0, 256);
        let repr = UdpRepr {
            src_port: rng.range(1, 65536) as u16,
            dst_port: rng.range(1, 65536) as u16,
            payload_len: payload.len(),
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut packet = UdpPacket::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        packet.payload_mut().copy_from_slice(&payload);
        packet.fill_checksum(src, dst);
        let parsed = UdpPacket::new_checked(&buf[..]).expect("valid");
        assert!(parsed.verify_checksum(src, dst));
        assert_eq!(UdpRepr::parse(&parsed, src, dst).expect("parses"), repr);
        assert_eq!(parsed.payload(), &payload[..]);
    }
}

fn check_fragmentation_case(payload_len: usize, mtu: usize, shuffle_seed: u64) {
    let payload: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
    let repr = Ipv4Repr {
        src_addr: Ipv4Address::new(10, 0, 0, 1),
        dst_addr: Ipv4Address::new(10, 0, 0, 2),
        protocol: IpProtocol::Udp,
        payload_len,
        hop_limit: 32,
        tos: Tos::default(),
    };
    let datagram = build_ipv4(&repr, 99, false, &payload);
    let mut frags = match fragment(&datagram, mtu) {
        Ok(frags) => frags,
        Err(_) => return, // MTU too small to fragment into: fine
    };
    if frags.len() == 1 {
        // Fits without fragmentation: the stack never hands such a
        // datagram to the reassembler (only `is_fragment()` packets go
        // there), so neither does this test.
        assert_eq!(&frags[0], &datagram);
        return;
    }
    // Deterministic pseudo-shuffle.
    let mut state = shuffle_seed | 1;
    for i in (1..frags.len()).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let j = (state >> 33) as usize % (i + 1);
        frags.swap(i, j);
    }
    let mut reasm = Reassembler::new();
    let mut whole = None;
    for frag in &frags {
        assert!(frag.len() <= mtu);
        if let Some(done) = reasm.push(frag, Instant::ZERO).expect("consistent") {
            whole = Some(done);
        }
    }
    assert_eq!(whole.expect("complete"), datagram);
}

#[test]
fn fragmentation_reassembles_in_any_order() {
    // Regression case once found by random search: a 1-byte payload at
    // the minimum MTU.
    check_fragmentation_case(1, 68, 0);
    for case in 0..256 {
        let mut rng = case_rng("fragmentation", case);
        let payload_len = rng.range(1, 4000) as usize;
        let mtu = rng.range(68, 1500) as usize;
        let shuffle_seed = rng.next_u32() as u64 | (u64::from(rng.next_u32()) << 32);
        check_fragmentation_case(payload_len, mtu, shuffle_seed);
    }
}

#[test]
fn seq_number_ordering_antisymmetric() {
    for case in 0..1024 {
        let mut rng = case_rng("seq_ordering", case);
        let a = rng.next_u32();
        let delta = rng.range(1, 0x7fff_ffff) as u32;
        let x = TcpSeqNumber(a);
        let y = x + delta as usize;
        assert!(y > x);
        assert!(x < y);
        assert_eq!(y - x, delta as i32);
    }
}

#[test]
fn routing_table_matches_naive_model() {
    for case in 0..128 {
        let mut rng = case_rng("routing_model", case);
        let mut table = RoutingTable::new();
        let mut model: Vec<(Ipv4Cidr, u16)> = Vec::new();
        let routes = rng.range(1, 24);
        for _ in 0..routes {
            let len = rng.below(33) as u8;
            let addr = rng.next_u32();
            let value = rng.below(65536) as u16;
            let cidr = Ipv4Cidr::new(Ipv4Address::from_u32(addr), len).network();
            table.insert(cidr, value);
            model.retain(|(existing, _)| *existing != cidr);
            model.push((cidr, value));
        }
        let queries = rng.range(1, 32);
        for _ in 0..queries {
            let q = Ipv4Address::from_u32(rng.next_u32());
            let expected = model
                .iter()
                .filter(|(cidr, _)| cidr.contains(q))
                .max_by_key(|(cidr, _)| cidr.prefix_len())
                .map(|(_, v)| *v);
            assert_eq!(table.lookup(q).copied(), expected);
        }
    }
}

/// Drive a TCP socket pair through a deterministic loss pattern and
/// verify the received byte stream equals the written one exactly.
fn tcp_stream_integrity(writes: &[Vec<u8>], loss_mask: u64) -> bool {
    let a = Ipv4Address::new(10, 0, 0, 1);
    let b = Ipv4Address::new(10, 0, 0, 2);
    let mut client = Socket::new(SocketConfig {
        initial_seq: 11,
        mss: 200,
        delayed_ack: None,
        ..SocketConfig::default()
    });
    let mut server = Socket::new(SocketConfig {
        initial_seq: 22,
        mss: 200,
        delayed_ack: None,
        ..SocketConfig::default()
    });
    server.listen(Endpoint::new(b, 80)).expect("fresh");
    client
        .connect(Endpoint::new(a, 5000), Endpoint::new(b, 80), Instant::ZERO)
        .expect("fresh");
    let total: usize = writes.iter().map(|w| w.len()).sum();
    let expected: Vec<u8> = writes.iter().flatten().copied().collect();
    let mut received = Vec::new();
    let mut cursor = 0usize;
    let mut drop_counter = 0u32;
    let mut now = Instant::ZERO;
    let mut buf = [0u8; 1024];
    for _round in 0..3000 {
        while cursor < writes.len() {
            match client.send_slice(&writes[cursor]) {
                Ok(n) if n == writes[cursor].len() => cursor += 1,
                _ => break,
            }
        }
        let mut progressed = false;
        while let Some((repr, payload)) = client.dispatch(now) {
            progressed = true;
            drop_counter = drop_counter.wrapping_add(1);
            if loss_mask >> (drop_counter % 64) & 1 == 0 {
                server.process(now, b, a, &repr, &payload);
            }
        }
        while let Ok(n) = server.recv_slice(&mut buf) {
            if n == 0 {
                break;
            }
            received.extend_from_slice(&buf[..n]);
        }
        while let Some((repr, payload)) = server.dispatch(now) {
            progressed = true;
            drop_counter = drop_counter.wrapping_add(1);
            if loss_mask >> (drop_counter % 64) & 1 == 0 {
                client.process(now, a, b, &repr, &payload);
            }
        }
        if received.len() >= total && cursor == writes.len() {
            break;
        }
        if !progressed {
            now += Duration::from_millis(200);
        }
    }
    received == expected
}

#[test]
fn tcp_delivers_exactly_the_written_stream() {
    for case in 0..48 {
        let mut rng = case_rng("tcp_stream", case);
        let count = rng.range(1, 12) as usize;
        let writes: Vec<Vec<u8>> = (0..count).map(|_| bytes(&mut rng, 1, 300)).collect();
        // An all-ones mask would drop everything forever; keep at least
        // half the positions clean.
        let raw = rng.next_u32() as u64 | (u64::from(rng.next_u32()) << 32);
        let mask = raw & 0x5555_5555_5555_5555;
        assert!(
            tcp_stream_integrity(&writes, mask),
            "stream corrupted or stalled (case {case})"
        );
    }
}
