//! Property-based tests (proptest) on the stack's core invariants:
//! wire-format round-trips, fragmentation/reassembly, sequence-number
//! arithmetic, the routing table against a naive model, and TCP
//! delivering exactly the written byte stream under arbitrary loss.

use catenet::ip::{build_ipv4, fragment, Reassembler, RoutingTable};
use catenet::sim::{Duration, Instant};
use catenet::tcp::{Endpoint, Socket, SocketConfig};
use catenet::wire::{
    checksum, IpProtocol, Ipv4Address, Ipv4Cidr, Ipv4Packet, Ipv4Repr,
    TcpSeqNumber, Tos, UdpPacket, UdpRepr,
};
use proptest::prelude::*;

fn addr() -> impl Strategy<Value = Ipv4Address> {
    (1u8..=223, any::<u8>(), any::<u8>(), 1u8..=254).prop_map(|(a, b, c, d)| {
        let mut addr = Ipv4Address::new(a, b, c, d);
        if addr.is_loopback() || !addr.is_unicast() {
            addr = Ipv4Address::new(10, b, c, d);
        }
        addr
    })
}

proptest! {
    #[test]
    fn checksum_verifies_after_fill(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        // checksum(data || checksum-field) verifies — provided the
        // checksum lands 16-bit aligned, as it does in every real
        // protocol header (odd-length payloads are conceptually
        // zero-padded *after* the checksum field, not before it).
        let mut buf = data.clone();
        if buf.len() % 2 != 0 {
            buf.push(0);
        }
        let csum = checksum::checksum(&buf);
        buf.extend_from_slice(&csum.to_be_bytes());
        prop_assert!(checksum::verify(&buf));
    }

    #[test]
    fn checksum_incremental_combine(
        a in proptest::collection::vec(any::<u8>(), 0..128),
        b in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        // combine(sum(a), sum(b)) == checksum(a || b) when a.len() is even
        // (one's-complement sums are position-independent only at 16-bit
        // granularity).
        prop_assume!(a.len() % 2 == 0);
        let whole: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(
            checksum::combine(&[checksum::sum(&a), checksum::sum(&b)]),
            checksum::checksum(&whole)
        );
    }

    #[test]
    fn ipv4_round_trip(
        src in addr(),
        dst in addr(),
        proto in any::<u8>(),
        ttl in 1u8..=255,
        tos in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        ident in any::<u16>(),
    ) {
        let repr = Ipv4Repr {
            src_addr: src,
            dst_addr: dst,
            protocol: IpProtocol::from(proto),
            payload_len: payload.len(),
            hop_limit: ttl,
            tos: Tos(tos),
        };
        let buf = build_ipv4(&repr, ident, false, &payload);
        let packet = Ipv4Packet::new_checked(&buf[..]).expect("valid");
        prop_assert!(packet.verify_checksum());
        prop_assert_eq!(Ipv4Repr::parse(&packet).expect("parses"), repr);
        prop_assert_eq!(packet.payload(), &payload[..]);
        prop_assert_eq!(packet.ident(), ident);
    }

    #[test]
    fn ipv4_single_byte_corruption_never_parses_cleanly(
        payload in proptest::collection::vec(any::<u8>(), 8..128),
        byte in 0usize..20,
        bit in 0u8..8,
    ) {
        // Any single-bit flip in the HEADER must be caught by checksum
        // or structural validation.
        let repr = Ipv4Repr {
            src_addr: Ipv4Address::new(10, 0, 0, 1),
            dst_addr: Ipv4Address::new(10, 0, 0, 2),
            protocol: IpProtocol::Udp,
            payload_len: payload.len(),
            hop_limit: 64,
            tos: Tos::default(),
        };
        let mut buf = build_ipv4(&repr, 7, false, &payload);
        buf[byte] ^= 1 << bit;
        let accepted = match Ipv4Packet::new_checked(&buf[..]) {
            Ok(packet) => packet.verify_checksum(),
            Err(_) => false,
        };
        prop_assert!(!accepted, "corrupted header accepted");
    }

    #[test]
    fn udp_round_trip_with_pseudo_header(
        src in addr(),
        dst in addr(),
        sport in 1u16..,
        dport in 1u16..,
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let repr = UdpRepr { src_port: sport, dst_port: dport, payload_len: payload.len() };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut packet = UdpPacket::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        packet.payload_mut().copy_from_slice(&payload);
        packet.fill_checksum(src, dst);
        let parsed = UdpPacket::new_checked(&buf[..]).expect("valid");
        prop_assert!(parsed.verify_checksum(src, dst));
        prop_assert_eq!(UdpRepr::parse(&parsed, src, dst).expect("parses"), repr);
        prop_assert_eq!(parsed.payload(), &payload[..]);
    }

    #[test]
    fn fragmentation_reassembles_in_any_order(
        payload_len in 1usize..4000,
        mtu in 68usize..1500,
        shuffle_seed in any::<u64>(),
    ) {
        let payload: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
        let repr = Ipv4Repr {
            src_addr: Ipv4Address::new(10, 0, 0, 1),
            dst_addr: Ipv4Address::new(10, 0, 0, 2),
            protocol: IpProtocol::Udp,
            payload_len,
            hop_limit: 32,
            tos: Tos::default(),
        };
        let datagram = build_ipv4(&repr, 99, false, &payload);
        let mut frags = match fragment(&datagram, mtu) {
            Ok(frags) => frags,
            Err(_) => return Ok(()), // MTU too small to fragment into: fine
        };
        if frags.len() == 1 {
            // Fits without fragmentation: the stack never hands such a
            // datagram to the reassembler (only `is_fragment()` packets
            // go there), so neither does this test.
            prop_assert_eq!(&frags[0], &datagram);
            return Ok(());
        }
        // Deterministic pseudo-shuffle.
        let mut state = shuffle_seed | 1;
        for i in (1..frags.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            frags.swap(i, j);
        }
        let mut reasm = Reassembler::new();
        let mut whole = None;
        for frag in &frags {
            prop_assert!(frag.len() <= mtu);
            if let Some(done) = reasm.push(frag, Instant::ZERO).expect("consistent") {
                whole = Some(done);
            }
        }
        prop_assert_eq!(whole.expect("complete"), datagram);
    }

    #[test]
    fn seq_number_ordering_antisymmetric(a in any::<u32>(), delta in 1u32..0x7fff_ffff) {
        let x = TcpSeqNumber(a);
        let y = x + delta as usize;
        prop_assert!(y > x);
        prop_assert!(x < y);
        prop_assert_eq!(y - x, delta as i32);
    }

    #[test]
    fn routing_table_matches_naive_model(
        routes in proptest::collection::vec(
            ((0u8..=32), any::<u32>(), any::<u16>()),
            1..24
        ),
        queries in proptest::collection::vec(any::<u32>(), 1..32),
    ) {
        let mut table = RoutingTable::new();
        let mut model: Vec<(Ipv4Cidr, u16)> = Vec::new();
        for (len, addr, value) in routes {
            let cidr = Ipv4Cidr::new(Ipv4Address::from_u32(addr), len).network();
            table.insert(cidr, value);
            model.retain(|(existing, _)| *existing != cidr);
            model.push((cidr, value));
        }
        for query in queries {
            let q = Ipv4Address::from_u32(query);
            let expected = model
                .iter()
                .filter(|(cidr, _)| cidr.contains(q))
                .max_by_key(|(cidr, _)| cidr.prefix_len())
                .map(|(_, v)| *v);
            prop_assert_eq!(table.lookup(q).copied(), expected);
        }
    }
}

/// Drive a TCP socket pair through a deterministic loss pattern and
/// verify the received byte stream equals the written one exactly.
fn tcp_stream_integrity(writes: &[Vec<u8>], loss_mask: u64) -> bool {
    let a = Ipv4Address::new(10, 0, 0, 1);
    let b = Ipv4Address::new(10, 0, 0, 2);
    let mut client = Socket::new(SocketConfig {
        initial_seq: 11,
        mss: 200,
        delayed_ack: None,
        ..SocketConfig::default()
    });
    let mut server = Socket::new(SocketConfig {
        initial_seq: 22,
        mss: 200,
        delayed_ack: None,
        ..SocketConfig::default()
    });
    server.listen(Endpoint::new(b, 80)).expect("fresh");
    client
        .connect(Endpoint::new(a, 5000), Endpoint::new(b, 80), Instant::ZERO)
        .expect("fresh");
    let total: usize = writes.iter().map(|w| w.len()).sum();
    let expected: Vec<u8> = writes.iter().flatten().copied().collect();
    let mut received = Vec::new();
    let mut cursor = 0usize;
    let mut drop_counter = 0u32;
    let mut now = Instant::ZERO;
    let mut buf = [0u8; 1024];
    for _round in 0..3000 {
        while cursor < writes.len() {
            match client.send_slice(&writes[cursor]) {
                Ok(n) if n == writes[cursor].len() => cursor += 1,
                _ => break,
            }
        }
        let mut progressed = false;
        while let Some((repr, payload)) = client.dispatch(now) {
            progressed = true;
            drop_counter = drop_counter.wrapping_add(1);
            if loss_mask >> (drop_counter % 64) & 1 == 0 {
                server.process(now, b, a, &repr, &payload);
            }
        }
        while let Ok(n) = server.recv_slice(&mut buf) {
            if n == 0 {
                break;
            }
            received.extend_from_slice(&buf[..n]);
        }
        while let Some((repr, payload)) = server.dispatch(now) {
            progressed = true;
            drop_counter = drop_counter.wrapping_add(1);
            if loss_mask >> (drop_counter % 64) & 1 == 0 {
                client.process(now, a, b, &repr, &payload);
            }
        }
        if received.len() >= total && cursor == writes.len() {
            break;
        }
        if !progressed {
            now += Duration::from_millis(200);
        }
    }
    received == expected
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn tcp_delivers_exactly_the_written_stream(
        writes in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..300),
            1..12
        ),
        loss_mask in any::<u64>(),
    ) {
        // loss_mask of all-ones would drop everything forever; keep at
        // least half the positions clean.
        let mask = loss_mask & 0x5555_5555_5555_5555;
        prop_assert!(tcp_stream_integrity(&writes, mask), "stream corrupted or stalled");
    }
}
