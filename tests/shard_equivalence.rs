//! Differential proof that sharded execution is observably identical
//! to the single-lane reference event loop.
//!
//! Sharding partitions the node set into K contiguous lanes, each with
//! its own scheduler, running conservative-lookahead windows and
//! exchanging cross-lane frames at barrier instants. Every simulation
//! result in this repo is only as trustworthy as the claim that this
//! changes *nothing observable* — so, exactly as the scheduler-backend
//! harness (`tests/scheduler_equivalence.rs`) earned the timer wheel
//! its default slot, this harness runs the full experiment batteries at
//! K ∈ {1, 2, 4, 8} and asserts byte identity:
//!
//! 1. **E11, chaos**: all 16 gauntlet scenarios across all 5 standard
//!    seeds — outcome, delivered-stream digest, metrics dump,
//!    time-series dump and flight-recorder ring, compared across every
//!    K.
//! 2. **E12, routing**: every ring size × fault kind — reconvergence
//!    measurements and all telemetry dumps.
//! 3. **E16, accounting**: crash-storm and clean reconciliation arms —
//!    ledger books, forfeited-tail counts, and dumps. Flush ordering
//!    across barriers is the likeliest casualty of sharding, so the
//!    books get their own battery here and a barrier-instant crash
//!    regression in `tests/accounting_reconciliation.rs`.
//!
//! The K > 1 arms run `ShardKind::Sharded` — the serial execution of
//! the identical lane/window/barrier protocol — because these
//! experiments attach invariant apps that share `Rc` state across
//! nodes (the gauntlet's sender and sink both hold the stream checker),
//! which the threaded arm forbids. The threaded arm (`Parallel`) runs
//! the same lane code on scoped threads and is proven byte-identical
//! by E17 (`catenet_bench::e17_parallel`, which asserts cross-K digest
//! equality at every run) on a workload built for it.
//!
//! If lanes ever diverge, the failure message names the scenario, seed
//! and shard count that exposed it — the reproduction recipe.

use catenet::stack::ShardKind;
use catenet_bench::e11_gauntlet::{run_with_shards, scenarios};
use catenet_bench::{e12_reconvergence, e16_accountability, SEEDS};

/// The shard counts every battery is swept across. K=1 is the
/// single-lane reference arm (`ShardKind::Single`, the default and CI
/// arm); the rest split the node set into real lanes with barriers.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn kind(k: usize) -> ShardKind {
    if k == 1 {
        ShardKind::Single
    } else {
        ShardKind::Sharded { shards: k }
    }
}

/// E11: every gauntlet scenario, every standard seed, every shard
/// count. `RunArtifacts` equality covers the scored outcome (including
/// the delivered-stream digest) and all three telemetry dumps.
#[test]
fn e11_battery_is_bit_identical_across_shard_counts() {
    for scenario in scenarios() {
        for &seed in SEEDS.iter() {
            let reference = run_with_shards(scenario, seed, kind(1));
            // Either the transfer finished or it ended with an explicit
            // error — a hung run would make "equal" vacuous.
            assert!(
                reference.outcome.completed || reference.outcome.aborted,
                "unresolved run: scenario={} seed={seed}",
                scenario.name
            );
            for &k in &SHARD_COUNTS[1..] {
                let sharded = run_with_shards(scenario, seed, kind(k));
                assert_eq!(
                    reference.outcome, sharded.outcome,
                    "outcome diverged: scenario={} seed={seed} shards={k}",
                    scenario.name
                );
                assert_eq!(
                    reference.metrics, sharded.metrics,
                    "metrics dump diverged: scenario={} seed={seed} shards={k}",
                    scenario.name
                );
                assert_eq!(
                    reference.series, sharded.series,
                    "series dump diverged: scenario={} seed={seed} shards={k}",
                    scenario.name
                );
                assert_eq!(
                    reference.flight, sharded.flight,
                    "flight ring diverged: scenario={} seed={seed} shards={k}",
                    scenario.name
                );
            }
        }
    }
}

/// E12: one disruption-then-heal cycle per (ring size, fault kind),
/// comparing the reconvergence measurements and all telemetry dumps
/// across every shard count.
#[test]
fn e12_reconvergence_is_bit_identical_across_shard_counts() {
    for &gateways in e12_reconvergence::RING_SIZES.iter() {
        for fault in e12_reconvergence::FaultKind::all() {
            for &seed in &SEEDS[..2] {
                let (recs_1, dumps_1) =
                    e12_reconvergence::run_with_shards(gateways, fault, seed, kind(1));
                assert!(
                    !recs_1.is_empty(),
                    "no heals measured: ring={gateways} fault={} seed={seed}",
                    fault.name()
                );
                for &k in &SHARD_COUNTS[1..] {
                    let (recs_k, dumps_k) =
                        e12_reconvergence::run_with_shards(gateways, fault, seed, kind(k));
                    assert_eq!(
                        recs_1,
                        recs_k,
                        "reconvergence diverged: ring={gateways} fault={} seed={seed} shards={k}",
                        fault.name()
                    );
                    for (i, name) in ["metrics", "series", "flight"].iter().enumerate() {
                        assert_eq!(
                            dumps_1[i],
                            dumps_k[i],
                            "{name} dump diverged: ring={gateways} fault={} seed={seed} shards={k}",
                            fault.name()
                        );
                    }
                }
            }
        }
    }
}

/// E16: the reconciliation arms — a crash storm repeatedly wiping the
/// middle gateway's ledger, and the lossless control — produce
/// byte-identical books, forfeited-tail counts, and telemetry at every
/// shard count. This is where fault→sample→flush ordering at shared
/// instants shows up as money, not just telemetry.
#[test]
fn e16_accounting_is_bit_identical_across_shard_counts() {
    let arms: Vec<(u64, bool)> = SEEDS[..2]
        .iter()
        .map(|&s| (s, true))
        .chain([(SEEDS[0], false)])
        .collect();
    for &(seed, storm) in &arms {
        let (run_1, dumps_1) =
            e16_accountability::run_reconcile_shards(seed, storm, kind(1));
        assert!(
            run_1.bounds_hold,
            "reference bound failed: seed={seed} storm={storm}: {run_1:?}"
        );
        for &k in &SHARD_COUNTS[1..] {
            let (run_k, dumps_k) =
                e16_accountability::run_reconcile_shards(seed, storm, kind(k));
            assert_eq!(
                run_1, run_k,
                "reconciliation diverged: seed={seed} storm={storm} shards={k}"
            );
            for (i, name) in ["metrics", "series", "flight"].iter().enumerate() {
                assert_eq!(
                    dumps_1[i], dumps_k[i],
                    "{name} dump diverged: seed={seed} storm={storm} shards={k}"
                );
            }
        }
    }
}
