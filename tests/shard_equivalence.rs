//! Differential proof that sharded execution is observably identical
//! to the single-lane reference event loop.
//!
//! Sharding partitions the node set into K contiguous lanes, each with
//! its own scheduler, running conservative-lookahead windows and
//! exchanging cross-lane frames at barrier instants. Every simulation
//! result in this repo is only as trustworthy as the claim that this
//! changes *nothing observable* — so, exactly as the scheduler-backend
//! harness (`tests/scheduler_equivalence.rs`) earned the timer wheel
//! its default slot, this harness runs the full experiment batteries at
//! K ∈ {1, 2, 4, 8} and asserts byte identity:
//!
//! 1. **E11, chaos**: all 16 gauntlet scenarios across all 5 standard
//!    seeds — outcome, delivered-stream digest, metrics dump,
//!    time-series dump and flight-recorder ring, compared across every
//!    K.
//! 2. **E12, routing**: every ring size × fault kind — reconvergence
//!    measurements and all telemetry dumps.
//! 3. **E16, accounting**: crash-storm and clean reconciliation arms —
//!    ledger books, forfeited-tail counts, and dumps. Flush ordering
//!    across barriers is the likeliest casualty of sharding, so the
//!    books get their own battery here and a barrier-instant crash
//!    regression in `tests/accounting_reconciliation.rs`.
//!
//! Every K > 1 count runs in **both** lane modes: `Sharded` (the
//! serial execution of the lane/window/barrier protocol) and
//! `Parallel` (the same lane code on scoped threads). The chaos
//! batteries attach invariant apps that share state across nodes — the
//! gauntlet's sender and sink both hold the stream checker — which
//! once confined them to the serial arm; now that application handles
//! are `Arc<Mutex>` and `Application: Send`, the threaded arm runs
//! them too, and the barrier's happens-before (lanes touch shared
//! handles only inside their own window; cross-lane frames deliver
//! only after the window threads join) is exactly what this harness
//! pins as byte identity. Two scope notes: attestation-bearing
//! networks (the gauntlet's attested scenario) auto-demote to serial
//! lane execution even under `Parallel`, so those runs check mode
//! selection rather than true concurrency; and the threaded sweep is
//! the representative K=2 slice (E11 on the first two standard seeds)
//! to keep the debug-mode tier-1 suite honest — see [`arms`] for why,
//! and E17 for the cross-K threaded proof on a workload built for it.
//!
//! If lanes ever diverge, the failure message names the scenario, seed,
//! shard count and lane mode that exposed it — the reproduction recipe.

use catenet::stack::ShardKind;
use catenet_bench::e11_gauntlet::{run_with_shards, scenarios};
use catenet_bench::{e12_reconvergence, e16_accountability, SEEDS};

/// The shard counts every battery is swept across. K=1 is the
/// single-lane reference arm (`ShardKind::Single`, the default and CI
/// arm); the rest split the node set into real lanes with barriers.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn kind(k: usize) -> ShardKind {
    if k == 1 {
        ShardKind::Single
    } else {
        ShardKind::Sharded { shards: k }
    }
}

/// The lane modes to sweep at K lanes. Every K runs the serial barrier
/// protocol (`Sharded`); K=2 additionally runs the identical lane code
/// on scoped threads (`Parallel`). The threaded arm spawns K window
/// threads per conservative-lookahead window, and the chaos topologies
/// are small with microsecond lookahead — a full threaded sweep is all
/// spawn overhead and no extra coverage, so the representative K=2
/// slice lives here and the cross-K threaded proof stays with E17's
/// purpose-built workload.
fn arms(k: usize) -> Vec<ShardKind> {
    let mut modes = vec![ShardKind::Sharded { shards: k }];
    if k == 2 {
        modes.push(ShardKind::Parallel { shards: k });
    }
    modes
}

/// E11: every gauntlet scenario, every standard seed, every shard
/// count. `RunArtifacts` equality covers the scored outcome (including
/// the delivered-stream digest) and all three telemetry dumps.
#[test]
fn e11_battery_is_bit_identical_across_shard_counts() {
    for scenario in scenarios() {
        for &seed in SEEDS.iter() {
            let reference = run_with_shards(scenario, seed, kind(1));
            // Either the transfer finished or it ended with an explicit
            // error — a hung run would make "equal" vacuous.
            assert!(
                reference.outcome.completed || reference.outcome.aborted,
                "unresolved run: scenario={} seed={seed}",
                scenario.name
            );
            for &k in &SHARD_COUNTS[1..] {
                for shard in arms(k) {
                    // The threaded sweep is scoped to the first two
                    // seeds (see the module docs); Sharded runs on all.
                    if matches!(shard, ShardKind::Parallel { .. })
                        && !SEEDS[..2].contains(&seed)
                    {
                        continue;
                    }
                    let mode = shard.name();
                    let sharded = run_with_shards(scenario, seed, shard);
                    assert_eq!(
                        reference.outcome, sharded.outcome,
                        "outcome diverged: scenario={} seed={seed} shards={k} mode={mode}",
                        scenario.name
                    );
                    assert_eq!(
                        reference.metrics, sharded.metrics,
                        "metrics dump diverged: scenario={} seed={seed} shards={k} mode={mode}",
                        scenario.name
                    );
                    assert_eq!(
                        reference.series, sharded.series,
                        "series dump diverged: scenario={} seed={seed} shards={k} mode={mode}",
                        scenario.name
                    );
                    assert_eq!(
                        reference.flight, sharded.flight,
                        "flight ring diverged: scenario={} seed={seed} shards={k} mode={mode}",
                        scenario.name
                    );
                }
            }
        }
    }
}

/// E12: one disruption-then-heal cycle per (ring size, fault kind),
/// comparing the reconvergence measurements and all telemetry dumps
/// across every shard count.
#[test]
fn e12_reconvergence_is_bit_identical_across_shard_counts() {
    for &gateways in e12_reconvergence::RING_SIZES.iter() {
        for fault in e12_reconvergence::FaultKind::all() {
            for &seed in &SEEDS[..2] {
                let (recs_1, dumps_1) =
                    e12_reconvergence::run_with_shards(gateways, fault, seed, kind(1));
                assert!(
                    !recs_1.is_empty(),
                    "no heals measured: ring={gateways} fault={} seed={seed}",
                    fault.name()
                );
                for &k in &SHARD_COUNTS[1..] {
                    for shard in arms(k) {
                        let mode = shard.name();
                        let (recs_k, dumps_k) =
                            e12_reconvergence::run_with_shards(gateways, fault, seed, shard);
                        assert_eq!(
                            recs_1,
                            recs_k,
                            "reconvergence diverged: ring={gateways} fault={} seed={seed} \
                             shards={k} mode={mode}",
                            fault.name()
                        );
                        for (i, name) in ["metrics", "series", "flight"].iter().enumerate() {
                            assert_eq!(
                                dumps_1[i],
                                dumps_k[i],
                                "{name} dump diverged: ring={gateways} fault={} seed={seed} \
                                 shards={k} mode={mode}",
                                fault.name()
                            );
                        }
                    }
                }
            }
        }
    }
}

/// E16: the reconciliation arms — a crash storm repeatedly wiping the
/// middle gateway's ledger, and the lossless control — produce
/// byte-identical books, forfeited-tail counts, and telemetry at every
/// shard count. This is where fault→sample→flush ordering at shared
/// instants shows up as money, not just telemetry.
#[test]
fn e16_accounting_is_bit_identical_across_shard_counts() {
    let cases: Vec<(u64, bool)> = SEEDS[..2]
        .iter()
        .map(|&s| (s, true))
        .chain([(SEEDS[0], false)])
        .collect();
    for &(seed, storm) in &cases {
        let (run_1, dumps_1) =
            e16_accountability::run_reconcile_shards(seed, storm, kind(1));
        assert!(
            run_1.bounds_hold,
            "reference bound failed: seed={seed} storm={storm}: {run_1:?}"
        );
        for &k in &SHARD_COUNTS[1..] {
            for shard in arms(k) {
                let mode = shard.name();
                let (run_k, dumps_k) =
                    e16_accountability::run_reconcile_shards(seed, storm, shard);
                assert_eq!(
                    run_1, run_k,
                    "reconciliation diverged: seed={seed} storm={storm} shards={k} mode={mode}"
                );
                for (i, name) in ["metrics", "series", "flight"].iter().enumerate() {
                    assert_eq!(
                        dumps_1[i], dumps_k[i],
                        "{name} dump diverged: seed={seed} storm={storm} shards={k} mode={mode}"
                    );
                }
            }
        }
    }
}
