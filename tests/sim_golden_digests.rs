//! Golden digests of the simulator arm's observable bytes.
//!
//! The substrate layer put the simulator behind a trait and grew a
//! real-I/O sibling next to it; this harness is the in-tree half of
//! the proof that the simulator itself was **not touched** by any of
//! it. It pins FNV-1a-64 digests of representative E11, E12 and E16
//! artifacts — scored outcome, metrics dump, time-series dump, flight
//! ring — to the exact values the pre-substrate tree produced
//! (regenerated from a clean checkout of that commit). Any change that
//! perturbs a single simulated event, sample row or ledger flush shows
//! up here as a digest mismatch naming the artifact.
//!
//! This complements, rather than repeats, the other determinism
//! harnesses: `shard_equivalence` proves K-lane runs equal the
//! single-lane run *of the current tree*, and CI's double-run diffs
//! prove the current tree equals itself; only a pinned golden value
//! proves the current tree equals the *past* tree.
//!
//! If a future PR changes simulator behavior on purpose (new default,
//! new telemetry row), regenerate: run with `--nocapture`, copy the
//! printed digests in, and say so in the PR.

use catenet::stack::ShardKind;
use catenet_bench::e11_gauntlet::{run_with_shards, scenarios};
use catenet_bench::{e12_reconvergence, e16_accountability, SEEDS};

/// FNV-1a 64-bit, the repo's standard content digest.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Compute the digest set: (artifact name, digest).
fn compute() -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let battery = scenarios();
    // The calm control arm and a heavily faulted arm: between them they
    // cover the scheduler, TCP, RIP reconvergence, the fault engine,
    // and all three telemetry surfaces.
    for name in ["calm (control)", "crash-storm"] {
        let scenario = *battery
            .iter()
            .find(|s| s.name == name)
            .expect("battery names are stable");
        let run = run_with_shards(scenario, SEEDS[0], ShardKind::Single);
        out.push((format!("e11/{name}/outcome"), fnv64(format!("{:?}", run.outcome).as_bytes())));
        out.push((format!("e11/{name}/metrics"), fnv64(run.metrics.as_bytes())));
        out.push((format!("e11/{name}/series"), fnv64(run.series.as_bytes())));
        out.push((format!("e11/{name}/flight"), fnv64(run.flight.as_bytes())));
    }
    let (recs, dumps) = e12_reconvergence::run_with_shards(
        5,
        e12_reconvergence::FaultKind::LinkCut,
        SEEDS[0],
        ShardKind::Single,
    );
    out.push(("e12/ring5-linkcut/heals".into(), fnv64(format!("{recs:?}").as_bytes())));
    for (dump, name) in dumps.iter().zip(["metrics", "series", "flight"]) {
        out.push((format!("e12/ring5-linkcut/{name}"), fnv64(dump.as_bytes())));
    }
    let (run, dumps) = e16_accountability::run_reconcile_shards(SEEDS[0], true, ShardKind::Single);
    out.push(("e16/storm/run".into(), fnv64(format!("{run:?}").as_bytes())));
    for (dump, name) in dumps.iter().zip(["metrics", "series", "flight"]) {
        out.push((format!("e16/storm/{name}"), fnv64(dump.as_bytes())));
    }
    out
}

/// The pinned values, generated from a clean checkout of the last
/// pre-substrate commit (`git worktree add … <that commit>`, same
/// computation). Order matches [`compute`].
const GOLDEN: [(&str, u64); 16] = [
    ("e11/calm (control)/outcome", 0x06abe3f915f39ee3),
    ("e11/calm (control)/metrics", 0x1b374556a0117f40),
    ("e11/calm (control)/series", 0x61ac9c3352a7009f),
    ("e11/calm (control)/flight", 0x9125f72a35b27eb8),
    ("e11/crash-storm/outcome", 0x8cfab2e311b74b13),
    ("e11/crash-storm/metrics", 0xf40a6470e1203eb6),
    ("e11/crash-storm/series", 0x8253450a69255c44),
    ("e11/crash-storm/flight", 0x8a4a3c4cd778d933),
    ("e12/ring5-linkcut/heals", 0xdd9ebffd60038cf3),
    ("e12/ring5-linkcut/metrics", 0x6f412f46179b18b7),
    ("e12/ring5-linkcut/series", 0x3e0be6182a360443),
    ("e12/ring5-linkcut/flight", 0x5b585a3d78decf86),
    ("e16/storm/run", 0xfac5fff4fd0ade82),
    ("e16/storm/metrics", 0x185056ea0ee73d2c),
    ("e16/storm/series", 0x605451076f3f981c),
    ("e16/storm/flight", 0xcfa98da4978694f2),
];

#[test]
fn sim_arm_dumps_match_the_pre_substrate_tree() {
    let computed = compute();
    // Print the full set first: on any mismatch this is the
    // regeneration recipe, copy-pasteable into `GOLDEN`.
    for (name, digest) in &computed {
        println!("    (\"{name}\", {digest:#018x}),");
    }
    assert_eq!(computed.len(), GOLDEN.len());
    for ((name, digest), (gold_name, gold)) in computed.iter().zip(GOLDEN.iter()) {
        assert_eq!(name, gold_name, "artifact order drifted");
        assert_eq!(
            *digest, *gold,
            "{name}: simulator bytes diverged from the pinned pre-substrate dump"
        );
    }
}
