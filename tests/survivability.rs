//! Integration tests for the paper's first-priority goal: communication
//! survives partial network loss (§3), exercised through partitions,
//! flapping links, and cascading gateway failures.

use catenet::sim::{Duration, LinkClass};
use catenet::stack::app::{BulkSender, SinkServer};
use catenet::stack::{Endpoint, Network, TcpConfig};

/// h1 — gA — gB — h2 with backup gA — gC — gB.
struct Redundant {
    net: Network,
    h1: usize,
    h2: usize,
    gb: usize,
    primary: usize,
    backup_a: usize,
    backup_b: usize,
}

fn redundant(seed: u64) -> Redundant {
    let mut net = Network::new(seed);
    let h1 = net.add_host("h1");
    let ga = net.add_gateway("gA");
    let gb = net.add_gateway("gB");
    let gc = net.add_gateway("gC");
    let h2 = net.add_host("h2");
    net.connect(h1, ga, LinkClass::EthernetLan);
    let primary = net.connect(ga, gb, LinkClass::T1Terrestrial);
    let backup_a = net.connect(ga, gc, LinkClass::T1Terrestrial);
    let backup_b = net.connect(gc, gb, LinkClass::T1Terrestrial);
    net.connect(gb, h2, LinkClass::EthernetLan);
    net.converge_routing(Duration::from_secs(90));
    Redundant {
        net,
        h1,
        h2,
        gb,
        primary,
        backup_a,
        backup_b,
    }
}

#[test]
fn tcp_survives_total_partition_shorter_than_its_patience() {
    // Sever EVERY path mid-transfer, hold the partition for 15 s, then
    // heal one. TCP (max RTO 60 s) must pick the transfer back up.
    let mut r = redundant(55);
    let dst = r.net.node(r.h2).primary_addr();
    let sink = SinkServer::new(80, TcpConfig::default());
    let received = std::sync::Arc::clone(&sink.received);
    r.net.attach_app(r.h2, Box::new(sink));
    let start = r.net.now();
    let sender = BulkSender::new(Endpoint::new(dst, 80), 300_000, TcpConfig::default(), start);
    let result = sender.result_handle();
    r.net.attach_app(r.h1, Box::new(sender));

    r.net.run_for(Duration::from_secs(1));
    // Total partition: both paths dead.
    r.net.set_link_up(r.primary, false);
    r.net.set_link_up(r.backup_a, false);
    r.net.set_link_up(r.backup_b, false);
    r.net.run_for(Duration::from_secs(15));
    assert!(
        result.lock().unwrap().completed_at.is_none(),
        "nothing crosses a total partition"
    );
    // Heal the backup path only.
    r.net.set_link_up(r.backup_a, true);
    r.net.set_link_up(r.backup_b, true);
    r.net.run_for(Duration::from_secs(180));
    assert!(
        result.lock().unwrap().completed_at.is_some(),
        "transfer resumed over the healed path: {:?}",
        result.lock().unwrap()
    );
    assert_eq!(*received.lock().unwrap(), 300_000);
}

#[test]
fn flapping_primary_link_does_not_kill_the_connection() {
    let mut r = redundant(56);
    let dst = r.net.node(r.h2).primary_addr();
    let sink = SinkServer::new(80, TcpConfig::default());
    r.net.attach_app(r.h2, Box::new(sink));
    let start = r.net.now();
    let sender = BulkSender::new(Endpoint::new(dst, 80), 400_000, TcpConfig::default(), start);
    let result = sender.result_handle();
    r.net.attach_app(r.h1, Box::new(sender));

    // Flap the primary every 5 seconds, four times.
    for i in 0..4 {
        r.net.run_for(Duration::from_secs(5));
        r.net.set_link_up(r.primary, i % 2 == 1);
    }
    r.net.set_link_up(r.primary, true);
    r.net.run_for(Duration::from_secs(240));
    assert!(
        result.lock().unwrap().completed_at.is_some(),
        "survived four flaps: {:?}",
        result.lock().unwrap()
    );
}

#[test]
fn double_failure_still_heals_if_any_path_remains() {
    // Crash gC (backup) first, then cut the primary anyway: unreachable.
    // Reboot gC: reachable again. The network's healing is monotone in
    // the surviving topology — no operator intervention, no state sync.
    let mut r = redundant(57);
    let gc_forwarded_before = r.net.node(r.gb).stats.ip_forwarded;
    let _ = gc_forwarded_before;
    let dst = r.net.node(r.h2).primary_addr();

    // gC is the third gateway added; find it by name.
    let gc = (0..r.net.node_count())
        .find(|&i| r.net.node(i).name == "gC")
        .expect("gC exists");
    r.net.crash_node(gc);
    r.net.set_link_up(r.backup_a, false);
    r.net.set_link_up(r.backup_b, false);
    r.net.set_link_up(r.primary, false);
    r.net.converge_routing(Duration::from_secs(120));

    let now = r.net.now();
    r.net.node_mut(r.h1).send_ping(dst, 1, 1, 16, now);
    r.net.kick(r.h1);
    r.net.run_for(Duration::from_secs(3));
    let replies = r
        .net
        .node_mut(r.h1)
        .take_icmp_events()
        .iter()
        .filter(|e| matches!(e.message, catenet::wire::Icmpv4Message::EchoReply { .. }))
        .count();
    assert_eq!(replies, 0, "fully partitioned");

    r.net.restart_node(gc);
    r.net.set_link_up(r.backup_a, true);
    r.net.set_link_up(r.backup_b, true);
    r.net.converge_routing(Duration::from_secs(120));
    let now = r.net.now();
    r.net.node_mut(r.h1).send_ping(dst, 1, 2, 16, now);
    r.net.kick(r.h1);
    r.net.run_for(Duration::from_secs(3));
    let replies = r
        .net
        .node_mut(r.h1)
        .take_icmp_events()
        .iter()
        .filter(|e| matches!(e.message, catenet::wire::Icmpv4Message::EchoReply { .. }))
        .count();
    assert_eq!(replies, 1, "healed through the rebooted gateway");
}

#[test]
fn tcp_aborts_with_explicit_error_under_permanent_partition() {
    // The flip side of survivability: when NO path ever comes back, the
    // connection must not hang forever — finite patience (RFC 1122 R2)
    // turns the silence into an explicit TimedOut abort, and everything
    // delivered before the cut is still intact.
    use catenet::sim::FaultPlan;
    use catenet::stack::{shared, StreamIntegrity};
    use std::sync::Arc;

    let mut r = redundant(59);
    let dst = r.net.node(r.h2).primary_addr();
    let config = TcpConfig {
        max_retries: Some(6),
        ..TcpConfig::default()
    };
    let integrity = shared(StreamIntegrity::new());
    let sink = SinkServer::new(80, config.clone()).with_integrity(Arc::clone(&integrity));
    r.net.attach_app(r.h2, Box::new(sink));
    let start = r.net.now();
    let sender = BulkSender::new(Endpoint::new(dst, 80), 400_000, config, start)
        .with_integrity(Arc::clone(&integrity));
    let result = sender.result_handle();
    r.net.attach_app(r.h1, Box::new(sender));

    // Partition h1's side from everything, scheduled declaratively and
    // never healed.
    let mut plan = FaultPlan::new();
    plan.partition(vec![r.h1, 1], start + Duration::from_secs(2), Duration::from_secs(10_000));
    r.net.attach_fault_plan(plan);

    r.net.run_for(Duration::from_secs(400));
    let result = result.lock().unwrap();
    assert!(
        result.completed_at.is_none(),
        "nothing completes across a permanent partition: {result:?}"
    );
    assert!(
        result.aborted,
        "the connection must die with an explicit error, not hang: {result:?}"
    );
    assert!(result.bytes_acked > 0, "some data flowed before the cut");
    let integrity = integrity.lock().unwrap();
    assert!(integrity.is_clean(), "partial delivery still a clean prefix");
}

#[test]
fn gateway_crash_loses_no_conversation_state_because_there_is_none() {
    // The cleanest statement of fate-sharing: inspect the gateway.
    let mut r = redundant(58);
    let dst = r.net.node(r.h2).primary_addr();
    r.net.node_mut(r.h2).tcp_listen(80, TcpConfig::default());
    let now = r.net.now();
    let handle = {
        let node = r.net.node_mut(r.h1);
        node.tcp_connect(Endpoint::new(dst, 80), TcpConfig::default(), now)
            .unwrap()
    };
    r.net.kick(r.h1);
    r.net.run_for(Duration::from_secs(3));
    assert_eq!(
        r.net.node(r.h1).tcp_sockets[handle].state(),
        catenet::tcp::State::Established
    );
    // The gateways carry the connection yet hold zero TCP sockets,
    // zero reassembly state, zero circuits.
    for i in 0..r.net.node_count() {
        let node = r.net.node(i);
        if node.name.starts_with('g') {
            assert!(node.tcp_sockets.is_empty(), "{} holds conversation state!", node.name);
            assert!(node.vc_table.is_none());
        }
    }
}
