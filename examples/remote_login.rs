//! Remote login: the workload that made small packets a problem.
//!
//! The paper's cost-effectiveness section (§7) concedes that "the
//! headers of Internet packets are fairly large ... for small packets
//! this overhead is apparent" — and nothing is smaller than a remote
//! terminal's keystrokes. This example types a line of text across a
//! 40 ms channel twice, with Nagle's coalescing on and off, and prints
//! what the wire carried each time.
//!
//! ```sh
//! cargo run --release --example remote_login
//! ```

use catenet_bench::channel::{run_tcp, ChannelParams};
use catenet::sim::Duration;

fn main() {
    let text = "ls -la /usr/spool/mail && cat motd | head -20 && who && uptime\n";
    // A burst of keystrokes every 10 ms — faster than the 40 ms RTT, so
    // coalescing has something to coalesce. (At human typing speed the
    // ACK returns between keystrokes and Nagle changes nothing — try
    // raising the interval to see.)
    let keystrokes: Vec<Vec<u8>> = text.bytes().map(|b| vec![b]).collect();
    let params = ChannelParams {
        write_interval: Duration::from_millis(10),
        ..ChannelParams::default()
    };

    println!("typing {} characters across a 40 ms-RTT path:\n", keystrokes.len());
    for (label, nagle) in [("Nagle ON ", true), ("Nagle OFF", false)] {
        let report = run_tcp(params, &keystrokes, nagle, 536);
        let payload: u64 = keystrokes.len() as u64;
        println!(
            "{label}  segments: {:>3}   wire bytes: {:>5}   header overhead: {:>5.1}%   done in {:.1}s",
            report.segs_sent,
            report.wire_bytes,
            100.0 * (report.wire_bytes - payload) as f64 / report.wire_bytes as f64,
            report.finished_at.secs_f64(),
        );
    }
    println!(
        "\nAt one segment per keystroke, 40 bytes of header carry 1 byte of user data \
         (the paper's ~97% overhead case). Coalescing trades a keystroke of latency \
         for an order of magnitude less wire traffic — the small-packet story of §7, \
         mechanized. (Ablation A3 reports the full table.)"
    );
}
