//! Packet voice: the application that forced the TCP/IP split.
//!
//! The 1988 paper (§4) recounts that real-time speech could not live
//! inside a reliable sequenced stream: "it is preferable to lose an
//! occasional packet than to wait for retransmission." This example
//! carries the same 64 kbit/s voice stream over UDP and over TCP across
//! a lossy T1 path and prints the latency distributions side by side.
//!
//! ```sh
//! cargo run --release --example packet_voice
//! ```

use catenet::sim::{Duration, Instant, LinkParams, Summary};
use catenet::stack::app::{CbrSink, CbrSource, TcpVoiceSink, TcpVoiceSource};
use catenet::stack::iface::Framing;
use catenet::stack::{Endpoint, Network, TcpConfig};
use std::sync::Arc;

const LOSS: f64 = 0.02;
const SECONDS: u64 = 30;

fn build_net(seed: u64) -> (Network, usize, usize) {
    let mut net = Network::new(seed);
    let talker = net.add_host("talker");
    let g1 = net.add_gateway("g1");
    let g2 = net.add_gateway("g2");
    let listener = net.add_host("listener");
    net.connect(talker, g1, catenet::sim::LinkClass::EthernetLan);
    net.connect_with(
        g1,
        g2,
        LinkParams {
            loss: LOSS,
            ..catenet::sim::LinkClass::T1Terrestrial.params()
        },
        Framing::RawIp,
    );
    net.connect(g2, listener, catenet::sim::LinkClass::EthernetLan);
    net.converge_routing(Duration::from_secs(30));
    (net, talker, listener)
}

fn print_report(label: &str, sent: u64, received: u64, latencies: &Summary) {
    println!(
        "{label:<14} frames: {received}/{sent} ({:.2}% lost)   latency ms: p50={:.1} p95={:.1} p99={:.1} max={:.1}",
        100.0 * (1.0 - received as f64 / sent.max(1) as f64),
        latencies.median(),
        latencies.percentile(0.95),
        latencies.percentile(0.99),
        latencies.max(),
    );
}

fn main() {
    println!(
        "64 kbit/s speech (160 B / 20 ms) across a T1 path with {:.0}% loss, {SECONDS} s of talk:\n",
        LOSS * 100.0
    );

    // --- Arm 1: UDP, the architecture's answer. ---
    {
        let (mut net, talker, listener) = build_net(7);
        let dst = net.node(listener).primary_addr();
        let start = net.now();
        let sink = CbrSink::new(5004);
        let (lat, rcv) = (Arc::clone(&sink.latencies_ms), Arc::clone(&sink.received));
        net.attach_app(listener, Box::new(sink));
        let source = CbrSource::new(
            Endpoint::new(dst, 5004),
            Duration::from_millis(20),
            160,
            start,
            start + Duration::from_secs(SECONDS),
        );
        let sent = Arc::clone(&source.sent);
        net.attach_app(talker, Box::new(source));
        net.run_until(start + Duration::from_secs(SECONDS + 3));
        print_report("UDP (IP+UDP):", *sent.lock().unwrap(), *rcv.lock().unwrap(), &lat.lock().unwrap());
    }

    // --- Arm 2: TCP, the rejected single-service world. ---
    {
        let (mut net, talker, listener) = build_net(7);
        let dst = net.node(listener).primary_addr();
        let start = net.now();
        let config = TcpConfig {
            nagle: false,
            delayed_ack: None,
            ..TcpConfig::default()
        };
        let sink = TcpVoiceSink::new(5005, 160, config.clone());
        let (lat, rcv) = (Arc::clone(&sink.latencies_ms), Arc::clone(&sink.received));
        net.attach_app(listener, Box::new(sink));
        let source = TcpVoiceSource::new(
            Endpoint::new(dst, 5005),
            Duration::from_millis(20),
            160,
            config,
            start,
            start + Duration::from_secs(SECONDS),
        );
        let sent = Arc::clone(&source.sent);
        net.attach_app(talker, Box::new(source));
        net.run_until(start + Duration::from_secs(SECONDS + 10));
        print_report("TCP stream:", *sent.lock().unwrap(), *rcv.lock().unwrap(), &lat.lock().unwrap());
    }

    println!(
        "\nTCP loses nothing — and that is exactly the problem: every loss stalls all \
         frames behind it (head-of-line blocking). This measurement is why UDP exists.\n\
         (Reproduced as experiment E2; see EXPERIMENTS.md.)"
    );
    let _ = Instant::ZERO;
}
