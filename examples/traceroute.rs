//! Traceroute: mapping an internetwork with nothing but TTL and ICMP.
//!
//! The gateway holds no map it can give you — it is a stateless datagram
//! forwarder. But the architecture's failure-reporting channel (ICMP
//! time-exceeded on TTL expiry) lets an endpoint *reconstruct* the path,
//! hop by hop. This example runs a textbook traceroute across a chain of
//! gateways, then severs a link and shows the route change.
//!
//! ```sh
//! cargo run --example traceroute
//! ```

use catenet::sim::{Duration, LinkClass};
use catenet::stack::{Network, NodeId};
use catenet::wire::{Icmpv4Message, Ipv4Address, TimeExceeded};

/// One traceroute probe pass: returns the responding hop addresses.
fn traceroute(net: &mut Network, src: NodeId, dst: Ipv4Address, max_ttl: u8) -> Vec<Option<Ipv4Address>> {
    let mut hops = Vec::new();
    for ttl in 1..=max_ttl {
        net.node_mut(src).default_ttl = ttl;
        let now = net.now();
        net.node_mut(src).send_ping(dst, 0x7777, u16::from(ttl), 16, now);
        net.kick(src);
        net.run_for(Duration::from_secs(2));
        let events = net.node_mut(src).take_icmp_events();
        let mut hop = None;
        let mut reached = false;
        for event in events {
            match event.message {
                Icmpv4Message::TimeExceeded(TimeExceeded::TtlExpired) => hop = Some(event.from),
                Icmpv4Message::EchoReply { .. } => {
                    hop = Some(event.from);
                    reached = true;
                }
                _ => {}
            }
        }
        hops.push(hop);
        if reached {
            break;
        }
    }
    net.node_mut(src).default_ttl = 64;
    hops
}

fn print_path(hops: &[Option<Ipv4Address>]) {
    for (i, hop) in hops.iter().enumerate() {
        match hop {
            Some(addr) => println!("  {:>2}  {addr}", i + 1),
            None => println!("  {:>2}  *", i + 1),
        }
    }
}

fn main() {
    // h1 — g1 — g2 — g3 — h2, with a shortcut g1 — g3 that is DOWN at
    // first (so the long path is used), brought up later.
    let mut net = Network::new(3);
    let h1 = net.add_host("h1");
    let g1 = net.add_gateway("g1");
    let g2 = net.add_gateway("g2");
    let g3 = net.add_gateway("g3");
    let h2 = net.add_host("h2");
    net.connect(h1, g1, LinkClass::EthernetLan);
    net.connect(g1, g2, LinkClass::T1Terrestrial);
    net.connect(g2, g3, LinkClass::T1Terrestrial);
    let shortcut = net.connect(g1, g3, LinkClass::T1Terrestrial);
    net.connect(g3, h2, LinkClass::EthernetLan);
    net.set_link_up(shortcut, false);
    net.converge_routing(Duration::from_secs(60));

    let dst = net.node(h2).primary_addr();
    println!("traceroute to {dst}, via the long path:");
    print_path(&traceroute(&mut net, h1, dst, 8));

    println!("\nbringing up the g1—g3 shortcut; waiting for routing to notice...");
    net.set_link_up(shortcut, true);
    net.converge_routing(Duration::from_secs(60));

    println!("traceroute to {dst}, after reconvergence:");
    print_path(&traceroute(&mut net, h1, dst, 8));

    println!(
        "\nNo gateway was asked for a map — none has one to give. The path was \
         reconstructed end-to-end from TTL expiry, the architecture's only \
         introspection mechanism."
    );
}
