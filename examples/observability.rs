//! Observability quickstart: the telemetry subsystem, live.
//!
//! Every `Network` carries a telemetry bundle: a metrics registry
//! (typed counters/gauges per node/link/socket), a virtual-time
//! sampler (goodput, queue depth, cwnd, routing-table versions at a
//! fixed cadence), a flight recorder (a bounded ring of structured
//! events — faults, route changes, RTO firings), and a convergence
//! tracer that pairs every heal with the instant routing went
//! quiescent again. All of it is deterministic: same seed, same dumps,
//! byte for byte.
//!
//! This example cuts the only T1 trunk under a TCP transfer, heals it,
//! and then asks the telemetry what happened.
//!
//! ```sh
//! cargo run --release --example observability
//! ```

use catenet::sim::{Duration, FaultAction, FaultPlan, LinkClass};
use catenet::stack::app::{BulkSender, SinkServer};
use catenet::stack::{Endpoint, Network, TcpConfig};
use catenet::telemetry::Scope;

fn main() {
    let mut net = Network::new(1988);
    let h1 = net.add_host("h1");
    let ga = net.add_gateway("gA");
    let gb = net.add_gateway("gB");
    let h2 = net.add_host("h2");
    net.connect(h1, ga, LinkClass::EthernetLan);
    let trunk = net.connect(ga, gb, LinkClass::T1Terrestrial);
    net.connect(gb, h2, LinkClass::EthernetLan);
    net.converge_routing(Duration::from_secs(60));

    // Cut the only trunk 2 s in, heal it 8 s later. No backup path:
    // the transfer must ride out the outage on endpoint state alone.
    let t0 = net.now();
    let mut plan = FaultPlan::new();
    plan.push(
        t0 + Duration::from_secs(2),
        FaultAction::LinkSet { link: trunk, up: false },
    );
    plan.push(
        t0 + Duration::from_secs(10),
        FaultAction::LinkSet { link: trunk, up: true },
    );
    net.attach_fault_plan(plan);

    let dst = net.node(h2).primary_addr();
    net.attach_app(h2, Box::new(SinkServer::new(80, TcpConfig::default())));
    let sender = BulkSender::new(Endpoint::new(dst, 80), 300_000, TcpConfig::default(), t0);
    let result = sender.result_handle();
    net.attach_app(h1, Box::new(sender));
    net.run_for(Duration::from_secs(60));
    assert!(result.lock().unwrap().completed_at.is_some());

    // 1. The registry: monotone counters, scoped and queryable.
    println!("== metrics registry (excerpt) ==");
    let reg = &net.telemetry().registry;
    println!("faults_applied{{global}} = {}", reg.get("faults_applied", Scope::Global));
    println!("tcp_rto_fired{{node{h1}}} = {}", reg.get("tcp_rto_fired", Scope::Node(h1)));
    println!("route_changes{{node{ga}}} = {}", reg.get("route_changes", Scope::Node(ga)));

    // 2. The sampler: time series at a fixed virtual-time cadence.
    let sampler = &net.telemetry().sampler;
    println!("\n== sampled series: cwnd around the cut (500 ms cadence) ==");
    for s in sampler.series("cwnd").take(8) {
        println!("{:>9}us cwnd{{{}}} {}", s.at.total_micros(), s.scope, s.value);
    }

    // 3. The convergence tracer: one measurement per heal.
    println!("\n== reconvergence ==");
    for r in net.telemetry().convergence.reconvergences(net.now()) {
        println!(
            "heal at {} settled after {} (settled: {})",
            r.healed_at.duration_since(t0),
            r.took,
            r.settled
        );
    }

    // 4. The flight recorder: trip an invariant, get the black box.
    net.record_invariant("demo-bound", false, "reconvergence exceeded demo bound");
    println!("\n== flight recorder (last 10 events) ==");
    let dump = net.flight_dump();
    for line in dump.lines().rev().take(10).collect::<Vec<_>>().iter().rev() {
        println!("{line}");
    }
}
