//! Capture: write a Wireshark-readable pcap of a whole internetwork.
//!
//! Attaches a frame tap to every link, runs a mixed workload (ping, UDP
//! echo, a TCP transfer with loss), and writes `catenet.pcap` — open it
//! in Wireshark and watch the 1988 architecture on the wire: handshake,
//! fragmentation, retransmission, ICMP errors, RIP chatter.
//!
//! ```sh
//! cargo run --example capture && wireshark catenet.pcap
//! ```

use catenet::sim::pcap::{LinkType, PcapWriter};
use catenet::sim::{Duration, LinkParams};
use catenet::stack::app::{BulkSender, SinkServer, UdpEchoServer};
use catenet::stack::iface::Framing;
use catenet::stack::{Endpoint, Network, TcpConfig};
use std::fs::File;
use std::sync::{Arc, Mutex};

fn main() -> std::io::Result<()> {
    let mut net = Network::new(2024);
    let h1 = net.add_host("h1");
    let g = net.add_gateway("g");
    let h2 = net.add_host("h2");
    // Raw-IP framing everywhere so the pcap uses LINKTYPE_RAW.
    net.connect_with(
        h1,
        g,
        catenet::sim::LinkClass::T1Terrestrial.params(),
        Framing::RawIp,
    );
    net.connect_with(
        g,
        h2,
        LinkParams {
            loss: 0.03, // make the retransmissions visible
            ..catenet::sim::LinkClass::SlipLine.params()
        },
        Framing::RawIp,
    );

    let writer = Arc::new(Mutex::new(PcapWriter::new(
        File::create("catenet.pcap")?,
        LinkType::RawIp,
    )?));
    let tap_writer = Arc::clone(&writer);
    net.set_tap(Box::new(move |at, frame| {
        let _ = tap_writer.lock().unwrap().record(at, frame);
    }));

    net.converge_routing(Duration::from_secs(30));
    let dst = net.node(h2).primary_addr();

    // Ping (watch ICMP echo + fragmentation of a big probe).
    let now = net.now();
    net.node_mut(h1).send_ping(dst, 7, 1, 600, now);
    net.kick(h1);

    // UDP echo.
    net.attach_app(h2, Box::new(UdpEchoServer::new(7)));
    let sock = net.node_mut(h1).udp_bind(40_000);
    net.node_mut(h1).udp_sockets[sock].send_to(Endpoint::new(dst, 7), b"echo across the catenet");
    net.kick(h1);

    // A lossy TCP transfer (watch SYN, slow start, retransmits, FIN).
    net.attach_app(h2, Box::new(SinkServer::new(80, TcpConfig::default())));
    let start = net.now();
    let sender = BulkSender::new(Endpoint::new(dst, 80), 20_000, TcpConfig::default(), start);
    let result = sender.result_handle();
    net.attach_app(h1, Box::new(sender));

    net.run_for(Duration::from_secs(120));

    let packets = writer.lock().unwrap().packets();
    drop(net); // release the tap's clone of the writer
    let Ok(writer) = Arc::try_unwrap(writer) else { panic!("tap released") };
    writer.into_inner().expect("writer lock clean").finish()?;
    let result = result.lock().unwrap();
    println!(
        "wrote catenet.pcap: {packets} frames (transfer {}, {} retransmits)",
        if result.completed_at.is_some() { "completed" } else { "incomplete" },
        result.retransmits,
    );
    Ok(())
}
