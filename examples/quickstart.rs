//! Quickstart: build a three-node internetwork, ping across it, then
//! run a TCP transfer — the architecture's two types of service in ~60
//! lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use catenet::sim::{Duration, LinkClass};
use catenet::stack::app::{BulkSender, SinkServer};
use catenet::stack::{Endpoint, Network, TcpConfig};

fn main() {
    // A deterministic universe: same seed, same packets, forever.
    let mut net = Network::new(42);

    // h1 --ethernet-- g --T1--> h2: one host each side of a gateway.
    let h1 = net.add_host("h1");
    let g = net.add_gateway("g");
    let h2 = net.add_host("h2");
    net.connect(h1, g, LinkClass::EthernetLan);
    net.connect(g, h2, LinkClass::T1Terrestrial);

    // Let the routing protocol find the world.
    net.converge_routing(Duration::from_secs(30));
    println!("topology up at t={}", net.now());

    // --- Type of service #1: the raw datagram (ICMP echo). ---
    let dst = net.node(h2).primary_addr();
    let now = net.now();
    net.node_mut(h1).send_ping(dst, 1, 1, 32, now);
    net.kick(h1);
    net.run_for(Duration::from_secs(1));
    for event in net.node_mut(h1).take_icmp_events() {
        println!("ping reply from {} at t={} ({:?})", event.from, event.at, event.message);
    }

    // --- Type of service #2: the reliable byte stream (TCP). ---
    let sink = SinkServer::new(80, TcpConfig::default());
    let received = std::sync::Arc::clone(&sink.received);
    net.attach_app(h2, Box::new(sink));

    let start = net.now();
    let sender = BulkSender::new(Endpoint::new(dst, 80), 100_000, TcpConfig::default(), start);
    let result = sender.result_handle();
    net.attach_app(h1, Box::new(sender));

    net.run_for(Duration::from_secs(60));

    let result = result.lock().unwrap();
    println!(
        "transferred {} bytes in {} ({:.0} kb/s), {} retransmits",
        *received.lock().unwrap(),
        result.duration().expect("completed"),
        result.goodput_bps(100_000).expect("completed") / 1000.0,
        result.retransmits,
    );
    println!(
        "gateway forwarded {} datagrams and holds no memory of any of them — \
         that is the design philosophy.",
        net.node(g).stats.ip_forwarded
    );
}
