//! Chaos engine quickstart: declarative fault injection, live.
//!
//! Build the outage-drill topology, but instead of imperatively
//! crashing one gateway, hand the network a `FaultPlan` — a
//! seed-deterministic *schedule* of link flaps and gateway crashes —
//! and let the event loop replay it at exact virtual-time instants
//! while a 1 MB transfer fights its way through. A `StreamIntegrity`
//! checker rides the connection end-to-end: every delivered byte must
//! be the right byte at the right offset.
//!
//! ```sh
//! cargo run --release --example chaos
//! ```

use catenet::sim::{Duration, FaultPlan, LinkClass, Rng};
use catenet::stack::app::{BulkSender, SinkServer};
use catenet::stack::{shared, Endpoint, Network, StreamIntegrity, TcpConfig};
use std::sync::Arc;

fn main() {
    let mut net = Network::new(1988);
    let h1 = net.add_host("h1");
    let ga = net.add_gateway("gA");
    let gd = net.add_gateway("gD");
    let gb = net.add_gateway("gB");
    let gc1 = net.add_gateway("gC1");
    let gc2 = net.add_gateway("gC2");
    let h2 = net.add_host("h2");
    net.connect(h1, ga, LinkClass::EthernetLan);
    let primary = net.connect(ga, gd, LinkClass::T1Terrestrial);
    net.connect(gd, gb, LinkClass::T1Terrestrial);
    net.connect(ga, gc1, LinkClass::T1Terrestrial);
    net.connect(gc1, gc2, LinkClass::T1Terrestrial);
    net.connect(gc2, gb, LinkClass::T1Terrestrial);
    net.connect(gb, h2, LinkClass::EthernetLan);
    net.converge_routing(Duration::from_secs(60));

    // The chaos schedule: pure data, built up-front from one seed.
    let t0 = net.now();
    let mut rng = Rng::from_seed(7);
    let mut plan = FaultPlan::new();
    plan.link_flap(
        primary,
        t0 + Duration::from_secs(2),
        t0 + Duration::from_secs(22),
        Duration::from_secs(2),
        Duration::from_secs(1),
        &mut rng,
    );
    plan.crash_storm(
        &[gd],
        t0 + Duration::from_secs(4),
        t0 + Duration::from_secs(20),
        3,
        (Duration::from_secs(2), Duration::from_secs(6)),
        &mut rng,
    );
    let scheduled = plan.len();
    net.attach_fault_plan(plan);

    // A 1 MB transfer with an end-to-end integrity checker attached.
    let integrity = shared(StreamIntegrity::new());
    let dst = net.node(h2).primary_addr();
    let sink = SinkServer::new(80, TcpConfig::default()).with_integrity(Arc::clone(&integrity));
    let received = Arc::clone(&sink.received);
    net.attach_app(h2, Box::new(sink));
    let sender = BulkSender::new(Endpoint::new(dst, 80), 1_000_000, TcpConfig::default(), t0)
        .with_integrity(Arc::clone(&integrity));
    let result = sender.result_handle();
    net.attach_app(h1, Box::new(sender));

    net.run_for(Duration::from_secs(180));

    let result = result.lock().unwrap();
    let elapsed = result
        .completed_at
        .map(|at| at.duration_since(t0).secs_f64());
    println!(
        "chaos: {scheduled} scheduled fault events replayed against a 1 MB transfer"
    );
    match elapsed {
        Some(secs) => println!(
            "transfer COMPLETED in {secs:.3}s with {} retransmits and {} RTO events",
            result.retransmits, result.timeouts
        ),
        None => println!("transfer did NOT complete: {result:?}"),
    }
    let integrity = integrity.lock().unwrap();
    println!(
        "delivered {} B — integrity checker: {} ({} violations)",
        received.lock().unwrap(),
        if integrity.is_clean() { "CLEAN" } else { "VIOLATED" },
        integrity.violations().len()
    );
    assert!(result.completed_at.is_some(), "chaos must cost time, not the transfer");
    assert!(integrity.is_clean(), "every byte the right byte at the right offset");
    println!("chaos cost time, never correctness — the paper's survivability goal, mechanized.");
}
