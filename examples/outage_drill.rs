//! Outage drill: the survivability goal, live.
//!
//! A TCP file transfer crosses the primary path `h1—gA—gD—gB—h2` while a
//! backup path `gA—gC1—gC2—gB` sits idle. Mid-transfer we crash gD — the
//! 1988 war-game scenario the architecture was bought for — and watch
//! the distance-vector protocol reroute underneath the connection
//! without the endpoints losing a byte.
//!
//! ```sh
//! cargo run --example outage_drill
//! ```

use catenet::sim::{Duration, LinkClass};
use catenet::stack::app::{BulkSender, SinkServer};
use catenet::stack::{Endpoint, Network, TcpConfig};
use std::sync::Arc;

fn main() {
    let mut net = Network::new(1988);
    let h1 = net.add_host("h1");
    let ga = net.add_gateway("gA");
    let gd = net.add_gateway("gD");
    let gb = net.add_gateway("gB");
    let gc1 = net.add_gateway("gC1");
    let gc2 = net.add_gateway("gC2");
    let h2 = net.add_host("h2");
    net.connect(h1, ga, LinkClass::EthernetLan);
    let l1 = net.connect(ga, gd, LinkClass::T1Terrestrial);
    let l2 = net.connect(gd, gb, LinkClass::T1Terrestrial);
    net.connect(ga, gc1, LinkClass::T1Terrestrial);
    net.connect(gc1, gc2, LinkClass::T1Terrestrial);
    net.connect(gc2, gb, LinkClass::T1Terrestrial);
    net.connect(gb, h2, LinkClass::EthernetLan);
    net.converge_routing(Duration::from_secs(60));
    println!("[{}] routing converged; primary path via gD", net.now());

    let dst = net.node(h2).primary_addr();
    let sink = SinkServer::new(80, TcpConfig::default());
    let received = Arc::clone(&sink.received);
    net.attach_app(h2, Box::new(sink));
    let start = net.now();
    let sender = BulkSender::new(Endpoint::new(dst, 80), 600_000, TcpConfig::default(), start);
    let result = sender.result_handle();
    net.attach_app(h1, Box::new(sender));

    // Progress snapshots around the outage.
    let mut crash_done = false;
    let mut restart_done = false;
    for step in 0..40 {
        net.run_for(Duration::from_secs(2));
        let t = net.now();
        let bytes = *received.lock().unwrap();
        let via_gd = net.node(gd).stats.ip_forwarded;
        let via_gc = net.node(gc1).stats.ip_forwarded;
        println!(
            "[{t}] delivered {bytes:>6} B | forwarded: gD={via_gd:>4} gC1={via_gc:>4}{}",
            if !net.node(gd).alive { "  (gD is DOWN)" } else { "" }
        );
        if step == 2 && !crash_done {
            println!("[{t}] *** CRASHING gD — its links lose carrier ***");
            net.crash_node(gd);
            net.set_link_up(l1, false);
            net.set_link_up(l2, false);
            crash_done = true;
        }
        if step == 12 && !restart_done {
            println!("[{t}] *** gD reboots with empty tables ***");
            net.restart_node(gd);
            net.set_link_up(l1, true);
            net.set_link_up(l2, true);
            restart_done = true;
        }
        if result.lock().unwrap().completed_at.is_some() {
            break;
        }
    }

    let result = result.lock().unwrap();
    match result.duration() {
        Some(duration) => println!(
            "\ntransfer COMPLETED in {duration} with {} retransmits and {} RTO events.\n\
             The connection never knew which gateways carried it — state lived only at \
             the endpoints (fate-sharing), so no gateway death could kill it.",
            result.retransmits, result.timeouts
        ),
        None => println!("\ntransfer did not complete (unexpected — see EXPERIMENTS.md E1)"),
    }
}
