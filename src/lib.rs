//! # catenet
//!
//! A userspace TCP/IP stack and deterministic internetwork simulator that
//! reproduces the architecture described in David D. Clark's
//! *"The Design Philosophy of the DARPA Internet Protocols"* (SIGCOMM 1988).
//!
//! This root crate re-exports the workspace members under stable names:
//!
//! - [`accounting`] — per-flow soft state, gateway ledgers, usage reconciliation
//! - [`sim`] — discrete-event simulator substrate (virtual time, links, faults)
//! - [`wire`] — zero-copy wire formats (Ethernet, ARP, IPv4, ICMPv4, UDP, TCP)
//! - [`ip`] — IP forwarding, fragmentation/reassembly, routing tables
//! - [`tcp`] — the TCP state machine with 1988-era congestion control
//! - [`routing`] — distance-vector routing with multi-AS policy
//! - [`telemetry`] — metrics registry, time-series sampler, flight recorder
//! - [`stack`] — hosts, stateless gateways, sockets, realizations, baselines
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! per-claim experiment index.

pub use catenet_accounting as accounting;
pub use catenet_core as stack;
pub use catenet_ip as ip;
pub use catenet_routing as routing;
pub use catenet_sim as sim;
pub use catenet_tcp as tcp;
pub use catenet_telemetry as telemetry;
pub use catenet_wire as wire;
